"""The job runner: worker threads mapping queued jobs onto one Executor.

The runner owns the glue between the durable registry, the in-memory
scheduler and the execution engine:

* **One shared executor.**  Every tenant's jobs run against a single
  :class:`~repro.execution.Executor` (opened with the configured
  ``cache_dir``), so the in-memory expectation cache and the persistent disk
  tier are warm across jobs *and* across clients.
* **Cross-client dedup.**  Submissions carry a content job key
  (:mod:`repro.service.jobs`).  While a keyed job is in flight, an identical
  submission — from any client, any tenant — returns the *same* job id with
  ``deduped=True`` instead of a second execution; the registry records a
  ``dedup`` event on the surviving job.
* **Streaming partials.**  A running job's ``emit`` callback persists each
  partial to the registry's event log (crash-proof) and fans it out to live
  subscribers (low latency).  Attach = replay-then-follow with ``seq``
  dedup, so a reattaching client sees every event exactly once.
* **Per-job cache accounting.**  Expectation-cache hit/miss deltas are
  measured around each job and stored on its row plus a ``cache`` event.
  With concurrent workers the attribution is approximate (deltas of shared
  counters); totals across jobs remain exact.
* **Graceful shutdown.**  ``shutdown(drain=True)`` stops intake, cancels
  queued jobs, lets running jobs finish, then retires the executor's
  process pool.  ``drain=False`` additionally sets every running job's
  cancel flag.
"""

from __future__ import annotations

import queue as queue_module
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from .jobs import JobCancelled, JobContext, PreparedJob, prepare_job
from .protocol import TERMINAL_STATES
from .queue import QueueFullError, QuotaExceededError, TenantQueues
from .registry import RunRegistry

#: Sentinel pushed to subscribers when a job reaches a terminal state.
STREAM_END = None


class UnknownJobError(KeyError):
    """No job with that id exists in the registry."""


class JobRunner:
    """Schedules, executes and streams jobs (thread-safe).

    The runner is transport-agnostic: the socket/HTTP front door calls
    :meth:`submit`, :meth:`subscribe`/:meth:`unsubscribe`,
    :meth:`wait_result` and :meth:`cancel`; tests may drive it directly
    without any server at all.
    """

    def __init__(self, executor, registry: RunRegistry,
                 queues: TenantQueues, workers: int = 2):
        self.executor = executor
        self.registry = registry
        self.queues = queues
        self._prepared: Dict[str, PreparedJob] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._inflight: Dict[str, str] = {}  # job key -> live job id
        self._submit_lock = threading.Lock()
        self._subscribers: Dict[str, List[queue_module.SimpleQueue]] = {}
        self._subscriber_lock = threading.Lock()
        self._done = threading.Condition()
        self._stopping = False
        self._recover_stale()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{index}",
                             daemon=True)
            for index in range(max(1, int(workers)))
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ---------------------------------------------------------
    def submit(self, kind: str, payload: Dict[str, Any],
               tenant: str = "default",
               priority: int = 0) -> Tuple[str, bool, Optional[int]]:
        """Validate, dedup and enqueue a job.

        Returns ``(job_id, deduped, position)``.  Raises
        :class:`~repro.service.protocol.ProtocolError` on a malformed
        payload and :class:`QueueFullError` / :class:`QuotaExceededError`
        on backpressure — nothing is persisted for a rejected submission.
        """
        prepared = prepare_job(kind, payload)
        with self._submit_lock:
            if self._stopping:
                raise QueueFullError("the server is shutting down")
            if prepared.key is not None:
                existing = self._inflight.get(prepared.key)
                if existing is not None:
                    self._emit(existing, "dedup", {"tenant": tenant})
                    return existing, True, None
            job_id = uuid.uuid4().hex[:12]
            self.registry.create_job(job_id, tenant, kind, prepared.key,
                                     priority, payload)
            self._prepared[job_id] = prepared
            self._cancel_flags[job_id] = threading.Event()
            if prepared.key is not None:
                self._inflight[prepared.key] = job_id
            try:
                position = self.queues.submit(tenant, priority, job_id)
            except (QueueFullError, QuotaExceededError):
                self._forget(job_id, prepared.key)
                self.registry.transition(job_id, ("queued",), "cancelled")
                self.registry.record_error(
                    job_id, "rejected: queue full or quota exceeded")
                raise
        self._emit(job_id, "state", {"state": "queued"})
        return job_id, False, position

    # -- queries ------------------------------------------------------------
    def job(self, job_id: str) -> Dict[str, Any]:
        entry = self.registry.get_job(job_id)
        if entry is None:
            raise UnknownJobError(job_id)
        return entry

    def wait_result(self, job_id: str,
                    timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; returns its registry row."""
        entry = self.job(job_id)
        with self._done:
            while entry["state"] not in TERMINAL_STATES:
                if not self._done.wait(timeout=timeout):
                    break
                entry = self.job(job_id)
        return entry

    def stats(self) -> Dict[str, Any]:
        cache = self.executor.cache_stats
        stats = {
            "jobs": self.registry.counts(),
            "queue": self.queues.snapshot(),
            "cache": {"hits": cache.hits, "misses": cache.misses},
            "workers": len(self._workers),
        }
        disk = self.executor.disk_cache_stats
        if disk is not None:
            stats["disk_cache"] = {"hits": disk.hits, "misses": disk.misses,
                                   "writes": disk.writes}
        return stats

    # -- event streaming ----------------------------------------------------
    def subscribe(self, job_id: str) -> "queue_module.SimpleQueue":
        """A live event feed for one job; pair with :meth:`unsubscribe`.

        Subscribe **before** replaying :meth:`RunRegistry.events_since` and
        drop live events with ``seq`` ≤ the replay horizon — that ordering
        guarantees exactly-once delivery with no gap between replay and
        follow.  :data:`STREAM_END` marks a terminal state.
        """
        feed: queue_module.SimpleQueue = queue_module.SimpleQueue()
        with self._subscriber_lock:
            self._subscribers.setdefault(job_id, []).append(feed)
        return feed

    def unsubscribe(self, job_id: str,
                    feed: "queue_module.SimpleQueue") -> None:
        with self._subscriber_lock:
            feeds = self._subscribers.get(job_id)
            if feeds and feed in feeds:
                feeds.remove(feed)
                if not feeds:
                    del self._subscribers[job_id]

    # -- cancellation -------------------------------------------------------
    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's (possibly new) state."""
        entry = self.job(job_id)
        tenant = entry["tenant"]
        if entry["state"] == "queued" and self.queues.remove(tenant, job_id):
            if self.registry.transition(job_id, ("queued",), "cancelled"):
                with self._submit_lock:
                    self._forget(job_id, entry["job_key"])
                self._emit(job_id, "state", {"state": "cancelled"})
                self._notify_done()
                return "cancelled"
        flag = self._cancel_flags.get(job_id)
        if flag is not None:
            flag.set()
        return self.job(job_id)["state"]

    # -- shutdown -----------------------------------------------------------
    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Stop intake, cancel queued jobs, finish (or cancel) running ones,
        then retire the executor's worker-process pool."""
        with self._submit_lock:
            if self._stopping:
                return
            self._stopping = True
        for tenant, job_id in self.queues.drain():
            if self.registry.transition(job_id, ("queued",), "cancelled"):
                entry = self.registry.get_job(job_id)
                with self._submit_lock:
                    self._forget(job_id, entry["job_key"] if entry else None)
                self._emit(job_id, "state", {"state": "cancelled"})
        if not drain:
            for flag in list(self._cancel_flags.values()):
                flag.set()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._notify_done()
        self.executor.shutdown(wait=drain)

    # -- internals ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self.queues.next_job(timeout=0.2)
            if item is None:
                if self._stopping:
                    return
                continue
            tenant, job_id = item
            try:
                self._run_job(job_id)
            finally:
                self.queues.task_done(tenant)

    def _run_job(self, job_id: str) -> None:
        prepared = self._prepared.get(job_id)
        flag = self._cancel_flags.get(job_id)
        if prepared is None or flag is None:
            return  # cancelled between pop and claim
        if not self.registry.transition(job_id, ("queued",), "running"):
            return  # a racing cancel won
        self._emit(job_id, "state", {"state": "running"})
        cache = self.executor.cache_stats
        hits_before, misses_before = cache.hits, cache.misses
        context = JobContext(
            executor=self.executor,
            emit=lambda kind, data: self._emit(job_id, kind, data),
            cancelled=flag)
        try:
            result = prepared.run(context)
        except JobCancelled:
            self.registry.transition(job_id, ("running",), "cancelled")
            self._finish(job_id, prepared.key, "cancelled")
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            self.registry.record_error(job_id, f"{type(error).__name__}: "
                                               f"{error}")
            self.registry.transition(job_id, ("running",), "failed")
            self._finish(job_id, prepared.key, "failed",
                         {"error": str(error)})
        else:
            cache = self.executor.cache_stats
            hits = cache.hits - hits_before
            misses = cache.misses - misses_before
            self.registry.record_result(job_id, result, hits, misses)
            self._emit(job_id, "cache", {"hits": hits, "misses": misses})
            self.registry.transition(job_id, ("running",), "done")
            self._finish(job_id, prepared.key, "done")

    def _finish(self, job_id: str, key: Optional[str], state: str,
                extra: Optional[Dict[str, Any]] = None) -> None:
        data = {"state": state}
        if extra:
            data.update(extra)
        with self._submit_lock:
            self._forget(job_id, key)
        self._emit(job_id, "state", data)
        self._notify_done()

    def _forget(self, job_id: str, key: Optional[str]) -> None:
        """Drop in-memory tracking for a job (submit lock must be held)."""
        self._prepared.pop(job_id, None)
        self._cancel_flags.pop(job_id, None)
        if key is not None and self._inflight.get(key) == job_id:
            del self._inflight[key]

    def _emit(self, job_id: str, kind: str, data: Dict[str, Any]) -> None:
        """Persist one event, then fan it out to live subscribers."""
        seq = self.registry.append_event(job_id, kind, data)
        event = {"job_id": job_id, "seq": seq, "kind": kind, "data": data}
        terminal = kind == "state" and data.get("state") in TERMINAL_STATES
        with self._subscriber_lock:
            feeds = list(self._subscribers.get(job_id, ()))
        for feed in feeds:
            feed.put(event)
            if terminal:
                feed.put(STREAM_END)

    def _notify_done(self) -> None:
        with self._done:
            self._done.notify_all()

    def _recover_stale(self) -> None:
        """Fail over jobs a previous server process left non-terminal.

        A persistent registry reopened after a crash may hold ``queued`` /
        ``running`` rows whose work died with the old process; their results
        will never arrive, so mark them failed (their already-persisted
        events stay replayable for reattaching clients).
        """
        for entry in self.registry.list_jobs(limit=10_000):
            if entry["state"] in TERMINAL_STATES:
                continue
            if self.registry.transition(
                    entry["id"], ("queued", "running"), "failed"):
                self.registry.record_error(
                    entry["id"], "orphaned: the serving process restarted")
                self.registry.append_event(
                    entry["id"], "state",
                    {"state": "failed", "error": "orphaned"})
