"""The job runner: worker threads mapping queued jobs onto one Executor.

The runner owns the glue between the durable registry, the in-memory
scheduler and the execution engine:

* **One shared executor.**  Every tenant's jobs run against a single
  :class:`~repro.execution.Executor` (opened with the configured
  ``cache_dir``), so the in-memory expectation cache and the persistent disk
  tier are warm across jobs *and* across clients.
* **Cross-client dedup.**  Submissions carry a content job key
  (:mod:`repro.service.jobs`).  While a keyed job is in flight, an identical
  submission — from any client, any tenant — returns the *same* job id with
  ``deduped=True`` instead of a second execution; the registry records a
  ``dedup`` event on the surviving job.
* **Streaming partials.**  A running job's ``emit`` callback persists each
  partial to the registry's event log (crash-proof) and fans it out to live
  subscribers (low latency).  Attach = replay-then-follow with ``seq``
  dedup, so a reattaching client sees every event exactly once.
* **Per-job cache accounting.**  Expectation-cache hit/miss deltas are
  measured around each job and stored on its row plus a ``cache`` event.
  With concurrent workers the attribution is approximate (deltas of shared
  counters); totals across jobs remain exact.
* **Leases, retries & recovery.**  Claiming a job spends one attempt from
  its budget and grants a time-bounded lease the monitor thread heartbeats.
  A failed attempt with budget left is requeued after exponential backoff
  (a delayed heap holds it until ``next_eligible_at``); the budget's last
  failure dead-letters the job as ``failed``.  Per-job deadlines are
  enforced through the cancellation flag — a deadline-cancelled attempt
  re-enters the retry path instead of the cancelled state.  On startup
  :meth:`_recover_stale` requeues ``queued`` rows from a dead process
  (consuming no attempt — they never ran) and reclaims ``running`` rows
  whose lease is missing or expired; rows with a live lease belong to
  another healthy server sharing the registry and are left alone.  Work
  recovered this way re-decodes its persisted payload lazily in the worker;
  checkpointed partials (disk-cache chunk entries) make the re-run cheap.
* **Graceful shutdown.**  ``shutdown(drain=True)`` stops intake, cancels
  queued jobs, lets running jobs finish, then retires the executor's
  process pool.  ``drain=False`` additionally sets every running job's
  cancel flag.
"""

from __future__ import annotations

import heapq
import queue as queue_module
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Set, Tuple

from .jobs import JobCancelled, JobContext, PreparedJob, prepare_job
from .protocol import TERMINAL_STATES
from .queue import QueueFullError, QuotaExceededError, TenantQueues
from .registry import RunRegistry

#: Sentinel pushed to subscribers when a job reaches a terminal state.
STREAM_END = None

#: Upper bound on the exponential retry backoff between job attempts.
MAX_RETRY_BACKOFF = 30.0

#: Monitor tick: delayed-job release and deadline enforcement granularity.
_MONITOR_TICK = 0.05


class UnknownJobError(KeyError):
    """No job with that id exists in the registry."""


class JobRunner:
    """Schedules, executes and streams jobs (thread-safe).

    The runner is transport-agnostic: the socket/HTTP front door calls
    :meth:`submit`, :meth:`subscribe`/:meth:`unsubscribe`,
    :meth:`wait_result` and :meth:`cancel`; tests may drive it directly
    without any server at all.

    ``max_attempts`` is the default per-job attempt budget (``1`` — the
    historical fail-on-first-error behavior — unless a submission overrides
    it), ``lease_seconds`` the lease granted on claim and renewed by the
    monitor thread, ``retry_backoff`` the base of the exponential delay
    between attempts.
    """

    def __init__(self, executor, registry: RunRegistry,
                 queues: TenantQueues, workers: int = 2, *,
                 max_attempts: int = 1, lease_seconds: float = 15.0,
                 retry_backoff: float = 0.2):
        self.executor = executor
        self.registry = registry
        self.queues = queues
        self.instance_id = uuid.uuid4().hex[:8]
        self._max_attempts = max(1, int(max_attempts))
        self._lease_seconds = float(lease_seconds)
        self._retry_backoff = float(retry_backoff)
        self._prepared: Dict[str, PreparedJob] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._inflight: Dict[str, str] = {}  # job key -> live job id
        self._submit_lock = threading.Lock()
        self._subscribers: Dict[str, List[queue_module.SimpleQueue]] = {}
        self._subscriber_lock = threading.Lock()
        self._done = threading.Condition()
        self._stopping = False
        # Jobs waiting out a retry backoff: (eligible_at, tenant, priority,
        # job_id) min-heap, released into the tenant queues by the monitor.
        self._delayed: List[Tuple[float, str, int, str]] = []
        self._delayed_lock = threading.Lock()
        # job id -> (claimed_at, deadline_seconds) for attempts running in
        # THIS process; drives heartbeats and deadline enforcement.
        self._local_running: Dict[str, Tuple[float, Optional[float]]] = {}
        # Jobs whose cancel flag was set by the deadline enforcer, not a
        # client — their JobCancelled re-enters the retry path.
        self._deadline_hit: Set[str] = set()
        self._stop_event = threading.Event()
        self._recover_stale()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{index}",
                             daemon=True)
            for index in range(max(1, int(workers)))
        ]
        for worker in self._workers:
            worker.start()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="repro-service-monitor",
                                         daemon=True)
        self._monitor.start()

    # -- submission ---------------------------------------------------------
    def submit(self, kind: str, payload: Dict[str, Any],
               tenant: str = "default", priority: int = 0,
               deadline: Optional[float] = None,
               max_attempts: Optional[int] = None
               ) -> Tuple[str, bool, Optional[int]]:
        """Validate, dedup and enqueue a job.

        Returns ``(job_id, deduped, position)``.  Raises
        :class:`~repro.service.protocol.ProtocolError` on a malformed
        payload and :class:`QueueFullError` / :class:`QuotaExceededError`
        on backpressure — nothing is persisted for a rejected submission.
        ``deadline`` / ``max_attempts`` override the runner defaults for
        this job only.
        """
        prepared = prepare_job(kind, payload)
        attempts_budget = self._max_attempts if max_attempts is None \
            else max(1, int(max_attempts))
        with self._submit_lock:
            if self._stopping:
                raise QueueFullError("the server is shutting down")
            if prepared.key is not None:
                existing = self._inflight.get(prepared.key)
                if existing is not None:
                    self._emit(existing, "dedup", {"tenant": tenant})
                    return existing, True, None
            job_id = uuid.uuid4().hex[:12]
            self.registry.create_job(job_id, tenant, kind, prepared.key,
                                     priority, payload,
                                     max_attempts=attempts_budget,
                                     deadline_seconds=deadline)
            self._prepared[job_id] = prepared
            self._cancel_flags[job_id] = threading.Event()
            if prepared.key is not None:
                self._inflight[prepared.key] = job_id
            try:
                position = self.queues.submit(tenant, priority, job_id)
            except (QueueFullError, QuotaExceededError):
                self._forget(job_id, prepared.key)
                self.registry.transition(job_id, ("queued",), "cancelled")
                self.registry.record_error(
                    job_id, "rejected: queue full or quota exceeded")
                raise
        self._emit(job_id, "state", {"state": "queued"})
        return job_id, False, position

    # -- queries ------------------------------------------------------------
    def job(self, job_id: str) -> Dict[str, Any]:
        entry = self.registry.get_job(job_id)
        if entry is None:
            raise UnknownJobError(job_id)
        return entry

    def wait_result(self, job_id: str,
                    timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; returns its registry row."""
        entry = self.job(job_id)
        with self._done:
            while entry["state"] not in TERMINAL_STATES:
                if not self._done.wait(timeout=timeout):
                    break
                entry = self.job(job_id)
        return entry

    def stats(self) -> Dict[str, Any]:
        cache = self.executor.cache_stats
        stats = {
            "jobs": self.registry.counts(),
            "queue": self.queues.snapshot(),
            "cache": {"hits": cache.hits, "misses": cache.misses},
            "workers": len(self._workers),
            "instance": self.instance_id,
        }
        with self._delayed_lock:
            stats["delayed"] = len(self._delayed)
        census = getattr(self.executor, "broker_workers", None)
        if census is not None:
            try:
                stats["shard_workers"] = census()
            except Exception:  # noqa: BLE001 - census is best-effort
                stats["shard_workers"] = []
        executor_stats = getattr(self.executor, "stats", None)
        if executor_stats is not None:
            stats["faults"] = {
                "shard_retries": executor_stats.shard_retries,
                "shard_timeouts": executor_stats.shard_timeouts,
                "pool_respawns": executor_stats.pool_respawns,
                "degraded_shards": executor_stats.degraded_shards,
            }
        disk = self.executor.disk_cache_stats
        if disk is not None:
            stats["disk_cache"] = {"hits": disk.hits, "misses": disk.misses,
                                   "writes": disk.writes}
        return stats

    # -- event streaming ----------------------------------------------------
    def subscribe(self, job_id: str) -> "queue_module.SimpleQueue":
        """A live event feed for one job; pair with :meth:`unsubscribe`.

        Subscribe **before** replaying :meth:`RunRegistry.events_since` and
        drop live events with ``seq`` ≤ the replay horizon — that ordering
        guarantees exactly-once delivery with no gap between replay and
        follow.  :data:`STREAM_END` marks a terminal state.
        """
        feed: queue_module.SimpleQueue = queue_module.SimpleQueue()
        with self._subscriber_lock:
            self._subscribers.setdefault(job_id, []).append(feed)
        return feed

    def unsubscribe(self, job_id: str,
                    feed: "queue_module.SimpleQueue") -> None:
        with self._subscriber_lock:
            feeds = self._subscribers.get(job_id)
            if feeds and feed in feeds:
                feeds.remove(feed)
                if not feeds:
                    del self._subscribers[job_id]

    # -- cancellation -------------------------------------------------------
    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's (possibly new) state."""
        entry = self.job(job_id)
        tenant = entry["tenant"]
        if entry["state"] == "queued" and (
                self.queues.remove(tenant, job_id)
                or self._remove_delayed(job_id)):
            if self.registry.transition(job_id, ("queued",), "cancelled"):
                with self._submit_lock:
                    self._forget(job_id, entry["job_key"])
                self._emit(job_id, "state", {"state": "cancelled"})
                self._notify_done()
                return "cancelled"
        flag = self._cancel_flags.get(job_id)
        if flag is not None:
            flag.set()
        return self.job(job_id)["state"]

    # -- shutdown -----------------------------------------------------------
    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Stop intake, cancel queued jobs, finish (or cancel) running ones,
        then retire the executor's worker-process pool."""
        with self._submit_lock:
            if self._stopping:
                return
            self._stopping = True
        self._stop_event.set()
        for tenant, job_id in self.queues.drain():
            if self.registry.transition(job_id, ("queued",), "cancelled"):
                entry = self.registry.get_job(job_id)
                with self._submit_lock:
                    self._forget(job_id, entry["job_key"] if entry else None)
                self._emit(job_id, "state", {"state": "cancelled"})
        with self._delayed_lock:
            delayed = list(self._delayed)
            self._delayed.clear()
        for _, _, _, job_id in delayed:
            if self.registry.transition(job_id, ("queued",), "cancelled"):
                entry = self.registry.get_job(job_id)
                with self._submit_lock:
                    self._forget(job_id, entry["job_key"] if entry else None)
                self._emit(job_id, "state", {"state": "cancelled"})
        if not drain:
            for flag in list(self._cancel_flags.values()):
                flag.set()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._monitor.join(timeout=timeout)
        self._notify_done()
        self.executor.shutdown(wait=drain)

    # -- internals ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self.queues.next_job(timeout=0.2)
            if item is None:
                if self._stopping:
                    return
                continue
            tenant, job_id = item
            try:
                self._run_job(job_id)
            finally:
                self.queues.task_done(tenant)

    def _run_job(self, job_id: str) -> None:
        entry = self.registry.get_job(job_id)
        flag = self._cancel_flags.get(job_id)
        if entry is None or flag is None:
            return  # cancelled between pop and claim
        prepared = self._prepared.get(job_id)
        if prepared is None:
            # A job recovered from a dead server process: its PreparedJob
            # died with that process, so re-decode the persisted payload.
            try:
                prepared = prepare_job(entry["kind"], entry["payload"])
            except Exception as error:  # noqa: BLE001 - isolation boundary
                self.registry.record_error(
                    job_id, f"recovered payload failed to prepare: {error}")
                self.registry.transition(job_id, ("queued", "running"),
                                         "failed")
                self._finish(job_id, entry["job_key"], "failed",
                             {"error": str(error)})
                return
            with self._submit_lock:
                self._prepared[job_id] = prepared
        attempt = self.registry.claim(job_id, self.instance_id,
                                      self._lease_seconds)
        if attempt is None:
            return  # a racing cancel won
        running: Dict[str, Any] = {"state": "running"}
        if attempt > 1:
            running["attempt"] = attempt
        self._emit(job_id, "state", running)
        deadline = entry["deadline_seconds"]
        self._local_running[job_id] = (
            time.time(), float(deadline) if deadline is not None else None)
        cache = self.executor.cache_stats
        hits_before, misses_before = cache.hits, cache.misses
        context = JobContext(
            executor=self.executor,
            emit=lambda kind, data: self._emit(job_id, kind, data),
            cancelled=flag)
        try:
            result = prepared.run(context)
        except JobCancelled:
            with self._submit_lock:
                deadline_hit = job_id in self._deadline_hit
            if deadline_hit:
                self._retry_or_fail(
                    entry, attempt, "deadline",
                    f"deadline exceeded ({deadline}s)")
            else:
                self.registry.transition(job_id, ("running",), "cancelled")
                self._finish(job_id, prepared.key, "cancelled")
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            self._retry_or_fail(entry, attempt, type(error).__name__,
                                f"{type(error).__name__}: {error}",
                                event_error=str(error))
        else:
            cache = self.executor.cache_stats
            hits = cache.hits - hits_before
            misses = cache.misses - misses_before
            self.registry.record_result(job_id, result, hits, misses)
            self._emit(job_id, "cache", {"hits": hits, "misses": misses})
            self.registry.transition(job_id, ("running",), "done")
            self._finish(job_id, prepared.key, "done")
        finally:
            self._local_running.pop(job_id, None)
            with self._submit_lock:
                self._deadline_hit.discard(job_id)

    def _retry_or_fail(self, entry: Dict[str, Any], attempt: int,
                       cause: str, error_text: str,
                       event_error: Optional[str] = None) -> None:
        """After a failed attempt: requeue with backoff, or dead-letter."""
        job_id = entry["id"]
        limit = max(1, int(entry["max_attempts"] or 1))
        if attempt >= limit:
            self.registry.record_error(job_id, error_text)
            self.registry.transition(job_id, ("running",), "failed")
            self._finish(job_id, entry["job_key"], "failed",
                         {"error": event_error if event_error is not None
                          else error_text})
            return
        delay = min(MAX_RETRY_BACKOFF,
                    self._retry_backoff * (2.0 ** (attempt - 1)))
        eligible_at = time.time() + delay
        self.registry.requeue(job_id, next_eligible_at=eligible_at)
        with self._submit_lock:
            # A fresh flag: a deadline cancellation must not poison the
            # next attempt.
            self._cancel_flags[job_id] = threading.Event()
        self._emit(job_id, "state", {"state": "queued", "retry": attempt,
                                     "cause": cause,
                                     "backoff": round(delay, 4)})
        with self._delayed_lock:
            heapq.heappush(self._delayed,
                           (eligible_at, entry["tenant"],
                            int(entry["priority"]), job_id))

    def _finish(self, job_id: str, key: Optional[str], state: str,
                extra: Optional[Dict[str, Any]] = None) -> None:
        data = {"state": state}
        if extra:
            data.update(extra)
        with self._submit_lock:
            self._forget(job_id, key)
        self._emit(job_id, "state", data)
        self._notify_done()

    def _forget(self, job_id: str, key: Optional[str]) -> None:
        """Drop in-memory tracking for a job (submit lock must be held)."""
        self._prepared.pop(job_id, None)
        self._cancel_flags.pop(job_id, None)
        if key is not None and self._inflight.get(key) == job_id:
            del self._inflight[key]

    def _emit(self, job_id: str, kind: str, data: Dict[str, Any]) -> None:
        """Persist one event, then fan it out to live subscribers."""
        seq = self.registry.append_event(job_id, kind, data)
        event = {"job_id": job_id, "seq": seq, "kind": kind, "data": data}
        terminal = kind == "state" and data.get("state") in TERMINAL_STATES
        with self._subscriber_lock:
            feeds = list(self._subscribers.get(job_id, ()))
        for feed in feeds:
            feed.put(event)
            if terminal:
                feed.put(STREAM_END)

    def _notify_done(self) -> None:
        with self._done:
            self._done.notify_all()

    # -- the monitor thread -------------------------------------------------
    def _monitor_loop(self) -> None:
        """Release backed-off retries, heartbeat leases, enforce deadlines,
        reclaim work whose owning server died mid-run."""
        sweep_every = max(_MONITOR_TICK, self._lease_seconds / 3.0)
        last_sweep = 0.0
        while not self._stop_event.wait(_MONITOR_TICK):
            now = time.time()
            self._release_due(now)
            self._enforce_deadlines(now)
            if now - last_sweep >= sweep_every:
                last_sweep = now
                try:
                    self._heartbeat_running()
                    self._reclaim_foreign(now)
                except Exception:  # noqa: BLE001 - registry may be closing
                    if self._stopping:
                        return

    def _release_due(self, now: float) -> None:
        ready = []
        with self._delayed_lock:
            while self._delayed and self._delayed[0][0] <= now:
                ready.append(heapq.heappop(self._delayed))
        for _, tenant, priority, job_id in ready:
            with self._submit_lock:
                if job_id not in self._cancel_flags:
                    continue  # cancelled/forgotten while waiting
            try:
                self.queues.submit(tenant, priority, job_id)
            except (QueueFullError, QuotaExceededError):
                with self._delayed_lock:
                    heapq.heappush(self._delayed,
                                   (now + 1.0, tenant, priority, job_id))

    def _enforce_deadlines(self, now: float) -> None:
        for job_id, (claimed_at, deadline) in list(
                self._local_running.items()):
            if deadline is None or now - claimed_at <= deadline:
                continue
            with self._submit_lock:
                already = job_id in self._deadline_hit
                self._deadline_hit.add(job_id)
            if not already:
                flag = self._cancel_flags.get(job_id)
                if flag is not None:
                    flag.set()

    def _heartbeat_running(self) -> None:
        for job_id in list(self._local_running):
            self.registry.heartbeat(job_id, self.instance_id,
                                    self._lease_seconds)

    def _reclaim_foreign(self, now: float) -> None:
        """Retry/dead-letter running jobs whose owner stopped heartbeating
        (a peer server sharing this registry died mid-run)."""
        for entry in self.registry.expired_running(now):
            if entry["lease_owner"] == self.instance_id \
                    or entry["id"] in self._local_running:
                continue  # ours; the heartbeat will catch up
            self._reclaim_expired(entry)

    def _remove_delayed(self, job_id: str) -> bool:
        with self._delayed_lock:
            for index, item in enumerate(self._delayed):
                if item[3] == job_id:
                    self._delayed[index] = self._delayed[-1]
                    self._delayed.pop()
                    heapq.heapify(self._delayed)
                    return True
        return False

    # -- crash recovery -----------------------------------------------------
    def _recover_stale(self) -> None:
        """Re-admit jobs a previous server process left non-terminal.

        ``queued`` rows never ran — they are requeued as-is, consuming no
        retry attempt.  ``running`` rows whose lease is missing or expired
        belonged to a dead process: they are retried if their attempt budget
        has room, dead-lettered as ``failed`` otherwise.  Rows holding a
        live lease belong to another healthy server sharing the registry
        and are left untouched.  Event logs are append-only throughout, so
        reattaching clients replay one consistent history.
        """
        now = time.time()
        for entry in self.registry.list_jobs(limit=10_000):
            state = entry["state"]
            if state in TERMINAL_STATES:
                continue
            if state == "queued":
                self._readmit(entry, {"state": "queued",
                                      "cause": "recovered"})
            elif state == "running":
                lease = entry["lease_expires_at"]
                if lease is None or float(lease) < now:
                    self._reclaim_expired(entry)

    def _reclaim_expired(self, entry: Dict[str, Any]) -> None:
        """A running job whose lease lapsed: retry or dead-letter."""
        job_id = entry["id"]
        attempts = int(entry["attempts"] or 0)
        limit = max(1, int(entry["max_attempts"] or 1))
        if attempts >= limit:
            if self.registry.transition(job_id, ("running",), "failed"):
                self.registry.record_error(
                    job_id, "orphaned: lease expired with no attempts left")
                with self._submit_lock:
                    self._forget(job_id, entry["job_key"])
                self._emit(job_id, "state",
                           {"state": "failed", "error": "lease-expired"})
                self._notify_done()
        elif self.registry.requeue(job_id, from_states=("running",)):
            self._readmit(entry, {"state": "queued", "retry": attempts,
                                  "cause": "lease-expired"})

    def _readmit(self, entry: Dict[str, Any],
                 data: Dict[str, Any]) -> None:
        """Put a recovered/reclaimed job back into the in-memory scheduler
        (its PreparedJob is rebuilt lazily by the worker that claims it)."""
        job_id = entry["id"]
        with self._submit_lock:
            self._cancel_flags[job_id] = threading.Event()
            if entry["job_key"] is not None:
                self._inflight[entry["job_key"]] = job_id
        self._emit(job_id, "state", data)
        now = time.time()
        eligible_at = entry.get("next_eligible_at")
        if eligible_at is not None and float(eligible_at) > now:
            with self._delayed_lock:
                heapq.heappush(self._delayed,
                               (float(eligible_at), entry["tenant"],
                                int(entry["priority"]), job_id))
            return
        try:
            self.queues.submit(entry["tenant"], int(entry["priority"]),
                               job_id)
        except (QueueFullError, QuotaExceededError):
            # No capacity right now — the monitor retries shortly.
            with self._delayed_lock:
                heapq.heappush(self._delayed,
                               (now + 1.0, entry["tenant"],
                                int(entry["priority"]), job_id))
