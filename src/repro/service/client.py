"""A thin blocking client for the execution job server.

:class:`ServiceClient` speaks the newline-delimited-JSON protocol over the
server's unix socket — one dataclass message per line in each direction
(:mod:`repro.service.protocol`).  It is deliberately synchronous: tests,
scripts and the ``python -m repro.service`` CLI call it directly, and a
streamed job is just a loop over ``event`` lines ending in a result line.

The client carries no job state.  A client that crashes mid-stream loses
nothing — a new client (or any other process) calls :meth:`attach` with the
job id and the last event ``seq`` it saw, and the server replays the
persisted tail from the run registry before following live events.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .protocol import (AttachRequest, CancelRequest, ErrorResponse,
                       EventResponse, JobListResponse, JobResponse,
                       ListJobsRequest, OkResponse, PingRequest,
                       PongResponse, ResultRequest, ResultResponse,
                       ShutdownRequest, StatsRequest, StatsResponse,
                       StatusRequest, SubmitRequest, SubmittedResponse,
                       decode_line, encode_line, expectation_payload,
                       qec_memory_payload, qec_rare_event_payload,
                       sweep_payload)

#: Signature of a streaming callback: one persisted event dict at a time.
EventCallback = Callable[[Dict[str, Any]], None]


class ServiceError(RuntimeError):
    """An error response from the server (``status`` mirrors HTTP)."""

    def __init__(self, code: str, message: str, status: int = 400):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.status = status

    @classmethod
    def from_response(cls, response: ErrorResponse) -> "ServiceError":
        return cls(response.code, response.message, response.status)


class JobFailedError(ServiceError):
    """A waited-on job finished in ``failed`` or ``cancelled`` state."""

    def __init__(self, job_id: str, state: str, error: Optional[str]):
        super().__init__("job-" + state, error or f"job {job_id} {state}",
                         status=500)
        self.job_id = job_id
        self.state = state


class ServiceClient:
    """One blocking NDJSON connection to a :class:`ServiceServer`.

    Not thread-safe — it is one ordered request/response stream; use one
    client per thread.  Usable as a context manager.
    """

    def __init__(self, socket_path: str,
                 timeout: Optional[float] = None):
        self.socket_path = str(socket_path)
        self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._socket.settimeout(timeout)
        self._socket.connect(self.socket_path)
        self._reader = self._socket.makefile("rb")

    # -- plumbing -----------------------------------------------------------
    def close(self) -> None:
        self._reader.close()
        self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _send(self, request) -> None:
        self._socket.sendall(encode_line(request).encode("utf-8"))

    def _read(self):
        line = self._reader.readline()
        if not line:
            raise ServiceError("disconnected",
                               "the server closed the connection",
                               status=503)
        response = decode_line(line.decode("utf-8"))
        if isinstance(response, ErrorResponse):
            raise ServiceError.from_response(response)
        return response

    def _round_trip(self, request, expected: type):
        self._send(request)
        response = self._read()
        if not isinstance(response, expected):
            raise ServiceError(
                "protocol", f"expected {expected.__name__}, got "
                            f"{type(response).__name__}")
        return response

    def _read_stream(self, on_event: Optional[EventCallback]
                     ) -> ResultResponse:
        """Consume ``event`` lines until the terminating result line."""
        while True:
            response = self._read()
            if isinstance(response, ResultResponse):
                return response
            if isinstance(response, EventResponse):
                if on_event is not None:
                    on_event({"job_id": response.job_id,
                              "seq": response.seq,
                              "kind": response.kind,
                              "data": response.data})
                continue
            raise ServiceError(
                "protocol",
                f"unexpected {type(response).__name__} mid-stream")

    # -- requests -----------------------------------------------------------
    def ping(self) -> PongResponse:
        return self._round_trip(PingRequest(), PongResponse)

    def stats(self) -> Dict[str, Any]:
        return self._round_trip(StatsRequest(), StatsResponse).stats

    def submit(self, kind: str, payload: Dict[str, Any],
               tenant: str = "default", priority: int = 0,
               deadline: Optional[float] = None,
               max_attempts: Optional[int] = None) -> SubmittedResponse:
        """Submit a job and return immediately (no streaming).

        ``response.deduped`` is True when an identical job was already in
        flight and ``response.job_id`` names that job.  ``deadline`` (a
        per-attempt wall-clock budget in seconds) and ``max_attempts`` (the
        retry budget, ``1`` = fail on first error) override the server's
        defaults for this job.
        """
        return self._round_trip(
            SubmitRequest(kind=kind, payload=payload, tenant=tenant,
                          priority=priority, deadline=deadline,
                          max_attempts=max_attempts), SubmittedResponse)

    def submit_and_stream(
            self, kind: str, payload: Dict[str, Any],
            tenant: str = "default", priority: int = 0,
            on_event: Optional[EventCallback] = None,
            deadline: Optional[float] = None,
            max_attempts: Optional[int] = None
    ) -> Tuple[SubmittedResponse, ResultResponse]:
        """Submit with streaming: block until the job is terminal, invoking
        ``on_event`` for every persisted event along the way."""
        submitted = self._round_trip(
            SubmitRequest(kind=kind, payload=payload, tenant=tenant,
                          priority=priority, stream=True, deadline=deadline,
                          max_attempts=max_attempts),
            SubmittedResponse)
        return submitted, self._read_stream(on_event)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._round_trip(StatusRequest(job_id), JobResponse).job

    def result(self, job_id: str, wait: bool = True) -> ResultResponse:
        """The job's final result (blocks server-side when ``wait``)."""
        return self._round_trip(ResultRequest(job_id, wait=wait),
                                ResultResponse)

    def attach(self, job_id: str, after_seq: int = 0,
               on_event: Optional[EventCallback] = None) -> ResultResponse:
        """Reattach to a job: replay persisted events after ``after_seq``,
        follow live ones, return the final result.  This is the recovery
        path for a client that crashed mid-stream."""
        self._send(AttachRequest(job_id, after_seq=after_seq))
        return self._read_stream(on_event)

    def iter_events(self, job_id: str,
                    after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Generator form of :meth:`attach`; yields event dicts and ends
        when the job is terminal (final result discarded)."""
        self._send(AttachRequest(job_id, after_seq=after_seq))
        while True:
            response = self._read()
            if isinstance(response, ResultResponse):
                return
            if isinstance(response, EventResponse):
                yield {"job_id": response.job_id, "seq": response.seq,
                       "kind": response.kind, "data": response.data}
                continue
            raise ServiceError(
                "protocol",
                f"unexpected {type(response).__name__} mid-stream")

    def cancel(self, job_id: str) -> str:
        return self._round_trip(CancelRequest(job_id), OkResponse).detail

    def list_jobs(self, tenant: Optional[str] = None,
                  limit: int = 50) -> List[Dict[str, Any]]:
        return self._round_trip(ListJobsRequest(tenant=tenant, limit=limit),
                                JobListResponse).jobs

    def shutdown_server(self, drain: bool = True) -> str:
        return self._round_trip(ShutdownRequest(drain=drain),
                                OkResponse).detail

    # -- job sugar ----------------------------------------------------------
    def submit_expectation(self, circuits, observable, *, tenant="default",
                           priority=0, **options) -> str:
        """Submit an ``expectation`` job from in-memory objects; returns the
        job id.  Options mirror :func:`expectation_payload`."""
        payload = expectation_payload(circuits, observable, **options)
        return self.submit("expectation", payload, tenant=tenant,
                           priority=priority).job_id

    def submit_sweep(self, template, parameter_sets, observable, *,
                     tenant="default", priority=0, **options) -> str:
        """Submit a ``sweep`` job; options mirror :func:`sweep_payload`."""
        payload = sweep_payload(template, parameter_sets, observable,
                                **options)
        return self.submit("sweep", payload, tenant=tenant,
                           priority=priority).job_id

    def submit_qec_memory(self, *, tenant="default", priority=0,
                          **options) -> str:
        """Submit a ``qec_memory`` job; options mirror
        :func:`qec_memory_payload`."""
        payload = qec_memory_payload(**options)
        return self.submit("qec_memory", payload, tenant=tenant,
                           priority=priority).job_id

    def submit_qec_rare_event(self, *, tenant="default", priority=0,
                              **options) -> str:
        """Submit a ``qec_rare_event`` job (variance-reduced low-``p``
        logical-error-rate estimation); options mirror
        :func:`qec_rare_event_payload`."""
        payload = qec_rare_event_payload(**options)
        return self.submit("qec_rare_event", payload, tenant=tenant,
                           priority=priority).job_id

    def fetch(self, job_id: str) -> Dict[str, Any]:
        """Wait for a job and return its result payload, raising
        :class:`JobFailedError` if it did not finish in ``done`` state."""
        response = self.result(job_id, wait=True)
        if response.state != "done":
            raise JobFailedError(job_id, response.state, response.error)
        return response.result
