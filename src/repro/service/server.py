"""The asyncio front door of the execution job server.

One :class:`ServiceServer` owns the whole service stack: the SQLite
:class:`~repro.service.registry.RunRegistry`, the per-tenant
:class:`~repro.service.queue.TenantQueues`, a single shared
:class:`~repro.execution.Executor` (opened with the configured cache
directory, so every tenant rides one warm expectation cache) and the
:class:`~repro.service.runner.JobRunner` worker threads.

Two transports expose the same :mod:`repro.service.protocol` messages:

* **NDJSON over a unix socket** — one JSON object per line in both
  directions; streaming responses (``submit(stream=True)``, ``attach``) are
  a run of ``event`` lines terminated by a ``result-data`` line.
* **HTTP/1.1 on localhost** — ``POST /v1/jobs``, ``GET /v1/jobs/{id}``,
  ``GET /v1/jobs/{id}/result``, ``GET /v1/jobs/{id}/events``
  (server-sent events), ``POST /v1/jobs/{id}/cancel``, ``GET /v1/stats``,
  ``GET /v1/ping``, ``POST /v1/shutdown``.  Backpressure rejections map to
  real ``429`` status lines.

The asyncio loop never runs engine code: submissions, blocking waits and
event-feed reads hop onto threads (``asyncio.to_thread``), while worker
threads push events back through thread-safe queues.  Graceful shutdown
(``POST /v1/shutdown`` or a ``shutdown`` message) stops intake, drains
running jobs into the registry, retires the executor's process pool, then
closes the listeners.

:func:`start_in_thread` runs a server on a background thread for tests,
notebooks and the README quickstart.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import queue as queue_module
import threading
import urllib.parse
from typing import Any, Awaitable, Callable, Dict, Optional

from ..execution.executor import Executor
from ..execution.policy import ExecutionPolicy
from .config import ServiceConfig
from .protocol import (PROTOCOL_VERSION, TERMINAL_STATES, AttachRequest,
                       CancelRequest, ErrorResponse, EventResponse,
                       JobListResponse, JobResponse, ListJobsRequest,
                       OkResponse, PingRequest, PongResponse, ProtocolError,
                       ResultRequest, ResultResponse, ShutdownRequest,
                       StatsRequest, StatsResponse, StatusRequest,
                       SubmitRequest, SubmittedResponse, decode_line,
                       encode_line)
from .queue import QueueFullError, QuotaExceededError, TenantQueues
from .registry import RunRegistry
from .runner import STREAM_END, JobRunner, UnknownJobError

_HTTP_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
                 404: "Not Found", 405: "Method Not Allowed",
                 429: "Too Many Requests", 503: "Service Unavailable"}

#: Poll interval for live event feeds — bounds how long a dead connection
#: can pin a feeder thread.
_FEED_POLL = 0.5

_FEED_IDLE = object()


class ServiceServer:
    """The job server: registry + queues + executor + runner + listeners."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else \
            ServiceConfig.from_env()
        if not self.config.socket_path and not self.config.http_port:
            raise ValueError(
                "ServiceConfig needs a socket_path and/or an http_port")
        self.registry = RunRegistry(self.config.db_path)
        self.queues = TenantQueues(
            max_pending=self.config.max_pending,
            max_pending_per_tenant=self.config.max_pending_per_tenant,
            max_running_per_tenant=self.config.max_running_per_tenant)
        policy = ExecutionPolicy(broker=self.config.spool) \
            if self.config.spool else None
        self.executor = Executor(cache_dir=self.config.cache_dir,
                                 policy=policy)
        self.runner = JobRunner(self.executor, self.registry, self.queues,
                                workers=self.config.workers,
                                max_attempts=self.config.max_attempts,
                                lease_seconds=self.config.lease_seconds,
                                retry_backoff=self.config.retry_backoff)
        self.http_port: Optional[int] = None
        self._stop: Optional[asyncio.Event] = None
        self._drain = True
        self._servers: list = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Bind the configured listeners (call from the serving loop)."""
        self._stop = asyncio.Event()
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
            self._servers.append(await asyncio.start_unix_server(
                self._handle_socket, path=self.config.socket_path))
        if self.config.http_port is not None:
            server = await asyncio.start_server(
                self._handle_http, host=self.config.host,
                port=self.config.http_port)
            # port 0 lets the OS pick — publish the real one.
            self.http_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def serve_until_shutdown(self) -> None:
        """Serve until a shutdown request arrives, then close gracefully."""
        await self._stop.wait()
        await self.aclose()

    def request_shutdown(self, drain: bool = True) -> None:
        """Signal the serving loop to stop (thread-unsafe: loop-side only;
        cross-thread callers go through ``loop.call_soon_threadsafe``)."""
        self._drain = drain
        if self._stop is not None:
            self._stop.set()

    async def aclose(self) -> None:
        """Close listeners, drain the runner, release every resource."""
        if self._closed:
            return
        self._closed = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        await asyncio.to_thread(self.runner.shutdown, self._drain)
        self.registry.close()
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)

    # -- NDJSON transport ---------------------------------------------------
    async def _handle_socket(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while self._stop is not None and not self._stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line.decode("utf-8"))
                except ProtocolError as error:
                    await self._write(writer, ErrorResponse(
                        "bad-request", str(error), 400))
                    continue
                await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write(self, writer: asyncio.StreamWriter, response) -> None:
        writer.write(encode_line(response).encode("utf-8"))
        await writer.drain()

    async def _dispatch(self, request,
                        writer: asyncio.StreamWriter) -> None:
        if isinstance(request, PingRequest):
            await self._write(writer, PongResponse())
        elif isinstance(request, StatsRequest):
            await self._write(writer, StatsResponse(self.runner.stats()))
        elif isinstance(request, SubmitRequest):
            await self._dispatch_submit(request, writer)
        elif isinstance(request, StatusRequest):
            try:
                entry = self.runner.job(request.job_id)
            except UnknownJobError:
                await self._write(writer, ErrorResponse(
                    "unknown-job", f"no job {request.job_id!r}", 404))
            else:
                await self._write(writer, JobResponse(entry))
        elif isinstance(request, ResultRequest):
            try:
                if request.wait:
                    entry = await asyncio.to_thread(
                        self.runner.wait_result, request.job_id)
                else:
                    entry = self.runner.job(request.job_id)
            except UnknownJobError:
                await self._write(writer, ErrorResponse(
                    "unknown-job", f"no job {request.job_id!r}", 404))
            else:
                await self._write(writer, _result_response(entry))
        elif isinstance(request, AttachRequest):
            try:
                self.runner.job(request.job_id)
            except UnknownJobError:
                await self._write(writer, ErrorResponse(
                    "unknown-job", f"no job {request.job_id!r}", 404))
                return
            entry = await self._pump_events(
                request.job_id, request.after_seq,
                lambda event: self._write(writer, EventResponse(**event)),
                writer)
            await self._write(writer, _result_response(entry))
        elif isinstance(request, CancelRequest):
            try:
                state = self.runner.cancel(request.job_id)
            except UnknownJobError:
                await self._write(writer, ErrorResponse(
                    "unknown-job", f"no job {request.job_id!r}", 404))
            else:
                await self._write(writer, OkResponse(detail=state))
        elif isinstance(request, ListJobsRequest):
            await self._write(writer, JobListResponse(
                self.registry.list_jobs(request.tenant, request.limit)))
        elif isinstance(request, ShutdownRequest):
            await self._write(writer, OkResponse(detail="shutting down"))
            self.request_shutdown(drain=request.drain)
        else:  # a response type sent as a request
            await self._write(writer, ErrorResponse(
                "bad-request",
                f"{type(request).__name__} is not a request", 400))

    async def _dispatch_submit(self, request: SubmitRequest,
                               writer: asyncio.StreamWriter) -> None:
        try:
            request.validate()
            job_id, deduped, position = await asyncio.to_thread(
                self.runner.submit, request.kind, request.payload,
                request.tenant, request.priority, request.deadline,
                request.max_attempts)
        except ProtocolError as error:
            await self._write(writer, ErrorResponse(
                "bad-request", str(error), 400))
            return
        except QuotaExceededError as error:
            await self._write(writer, ErrorResponse(
                "quota-exceeded", str(error), 429))
            return
        except QueueFullError as error:
            await self._write(writer, ErrorResponse(
                "queue-full", str(error), 429))
            return
        state = self.runner.job(job_id)["state"]
        await self._write(writer, SubmittedResponse(
            job_id=job_id, state=state, deduped=deduped, position=position))
        if request.stream:
            entry = await self._pump_events(
                job_id, 0,
                lambda event: self._write(writer, EventResponse(**event)),
                writer)
            await self._write(writer, _result_response(entry))

    # -- event pump (shared by NDJSON streaming and HTTP SSE) ---------------
    async def _pump_events(
            self, job_id: str, after_seq: int,
            send: Callable[[Dict[str, Any]], Awaitable[None]],
            writer: asyncio.StreamWriter) -> Dict[str, Any]:
        """Replay persisted events after ``after_seq``, then follow live
        ones until the job is terminal; returns the final registry row.

        Subscribes *before* replaying and drops live events at or below the
        replay horizon, so a reattaching client sees every event exactly
        once regardless of timing.
        """
        feed = self.runner.subscribe(job_id)
        try:
            horizon = int(after_seq)
            for event in self.registry.events_since(job_id, horizon):
                horizon = max(horizon, event["seq"])
                await send(event)
            entry = self.runner.job(job_id)
            if entry["state"] in TERMINAL_STATES:
                return entry
            while True:
                event = await asyncio.to_thread(_poll_feed, feed)
                if event is _FEED_IDLE:
                    if writer.is_closing():
                        break
                    continue
                if event is STREAM_END:
                    break
                if event["seq"] <= horizon:
                    continue
                await send(event)
            return self.runner.job(job_id)
        finally:
            self.runner.unsubscribe(job_id, feed)

    # -- HTTP transport -----------------------------------------------------
    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = await reader.readexactly(length) if length else b""
            await self._route_http(method, target, body, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _route_http(self, method: str, target: str, body: bytes,
                          writer: asyncio.StreamWriter) -> None:
        path, _, query_string = target.partition("?")
        query = urllib.parse.parse_qs(query_string)
        if path == "/v1/ping" and method == "GET":
            await self._http_json(writer, 200, {
                "server": "repro.service", "version": PROTOCOL_VERSION})
        elif path == "/v1/stats" and method == "GET":
            await self._http_json(writer, 200, self.runner.stats())
        elif path == "/v1/jobs" and method == "POST":
            await self._http_submit(body, writer)
        elif path == "/v1/shutdown" and method == "POST":
            drain = query.get("drain", ["1"])[0] not in ("0", "false")
            await self._http_json(writer, 200, {"detail": "shutting down"})
            self.request_shutdown(drain=drain)
        elif path.startswith("/v1/jobs/"):
            await self._http_job(method, path[len("/v1/jobs/"):], query,
                                 writer)
        else:
            await self._http_json(writer, 404, {
                "code": "not-found", "message": f"no route {path!r}"})

    async def _http_submit(self, body: bytes,
                           writer: asyncio.StreamWriter) -> None:
        try:
            document = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(document, dict):
                raise ProtocolError("the request body must be a JSON object")
            request = SubmitRequest(
                kind=document.get("kind", ""),
                payload=document.get("payload", {}),
                tenant=document.get("tenant",
                                    self.config.default_tenant),
                priority=int(document.get("priority", 0)),
                deadline=document.get("deadline"),
                max_attempts=document.get("max_attempts")).validate()
            job_id, deduped, position = await asyncio.to_thread(
                self.runner.submit, request.kind, request.payload,
                request.tenant, request.priority, request.deadline,
                request.max_attempts)
        except (json.JSONDecodeError, ProtocolError, ValueError) as error:
            await self._http_json(writer, 400, {
                "code": "bad-request", "message": str(error)})
            return
        except QuotaExceededError as error:
            await self._http_json(writer, 429, {
                "code": "quota-exceeded", "message": str(error)})
            return
        except QueueFullError as error:
            await self._http_json(writer, 429, {
                "code": "queue-full", "message": str(error)})
            return
        await self._http_json(writer, 202, {
            "job_id": job_id, "deduped": deduped, "position": position,
            "state": self.runner.job(job_id)["state"]})

    async def _http_job(self, method: str, rest: str, query,
                        writer: asyncio.StreamWriter) -> None:
        segments = [segment for segment in rest.split("/") if segment]
        if not segments:
            await self._http_json(writer, 404, {
                "code": "not-found", "message": "missing job id"})
            return
        job_id = segments[0]
        action = segments[1] if len(segments) > 1 else None
        try:
            if action is None and method == "GET":
                await self._http_json(writer, 200, self.runner.job(job_id))
            elif action == "result" and method == "GET":
                wait = query.get("wait", ["1"])[0] not in ("0", "false")
                entry = await asyncio.to_thread(
                    self.runner.wait_result, job_id) if wait else \
                    self.runner.job(job_id)
                await self._http_json(writer, 200, {
                    "job_id": job_id, "state": entry["state"],
                    "result": entry["result"], "error": entry["error"]})
            elif action == "events" and method == "GET":
                after_seq = int(query.get("after", ["0"])[0])
                await self._http_events(job_id, after_seq, writer)
            elif action == "cancel" and method == "POST":
                state = self.runner.cancel(job_id)
                await self._http_json(writer, 200, {"job_id": job_id,
                                                    "state": state})
            else:
                await self._http_json(writer, 405, {
                    "code": "method-not-allowed",
                    "message": f"{method} not supported here"})
        except UnknownJobError:
            await self._http_json(writer, 404, {
                "code": "unknown-job", "message": f"no job {job_id!r}"})

    async def _http_events(self, job_id: str, after_seq: int,
                           writer: asyncio.StreamWriter) -> None:
        """Stream a job's events as server-sent events until terminal."""
        self.runner.job(job_id)  # 404 via caller if unknown
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()

        async def send(event: Dict[str, Any]) -> None:
            data = json.dumps(event, separators=(",", ":"), sort_keys=True)
            writer.write(f"event: {event['kind']}\n"
                         f"data: {data}\n\n".encode("utf-8"))
            await writer.drain()

        entry = await self._pump_events(job_id, after_seq, send, writer)
        final = json.dumps({
            "job_id": job_id, "state": entry["state"],
            "result": entry["result"], "error": entry["error"],
        }, separators=(",", ":"), sort_keys=True)
        writer.write(f"event: result\ndata: {final}\n\n".encode("utf-8"))
        await writer.drain()

    async def _http_json(self, writer: asyncio.StreamWriter, status: int,
                         document: Dict[str, Any]) -> None:
        body = json.dumps(document, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
        reason = _HTTP_REASONS.get(status, "OK")
        writer.write((f"HTTP/1.1 {status} {reason}\r\n"
                      f"Content-Type: application/json\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"Connection: close\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


def _poll_feed(feed: "queue_module.SimpleQueue"):
    """One bounded blocking read of a subscriber feed (runs on a thread)."""
    try:
        return feed.get(timeout=_FEED_POLL)
    except queue_module.Empty:
        return _FEED_IDLE


def _result_response(entry: Dict[str, Any]) -> ResultResponse:
    return ResultResponse(job_id=entry["id"], state=entry["state"],
                          result=entry["result"], error=entry["error"])


# ---------------------------------------------------------------------------
# In-thread embedding (tests, notebooks, the README quickstart)
# ---------------------------------------------------------------------------


class ServiceHandle:
    """A running server on a background thread; ``stop()`` shuts it down."""

    def __init__(self, server: ServiceServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.server = server
        self.thread = thread
        self._loop = loop

    @property
    def socket_path(self) -> Optional[str]:
        return self.server.config.socket_path

    @property
    def http_port(self) -> Optional[int]:
        return self.server.http_port

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Request a graceful shutdown and wait for the serving thread."""
        if self.thread.is_alive():
            with contextlib.suppress(RuntimeError):  # loop already gone
                self._loop.call_soon_threadsafe(
                    self.server.request_shutdown, drain)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()


def start_in_thread(config: ServiceConfig,
                    timeout: float = 10.0) -> ServiceHandle:
    """Start a :class:`ServiceServer` on a daemon thread and wait until its
    listeners are bound; returns a :class:`ServiceHandle`."""
    started = threading.Event()
    holder: Dict[str, Any] = {}

    async def main() -> None:
        server = ServiceServer(config)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_shutdown()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as error:  # pragma: no cover - startup diagnostics
            holder["error"] = error
            started.set()

    thread = threading.Thread(target=run, name="repro-service",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=timeout):
        raise RuntimeError("the service server did not start in time")
    if "error" in holder:
        raise holder["error"]
    return ServiceHandle(holder["server"], thread, holder["loop"])
