"""``python -m repro.service`` / ``repro-service`` — the service CLI.

``serve`` runs the job server in the foreground until a shutdown request
(or SIGINT/SIGTERM) arrives; the remaining subcommands are thin wrappers
over :class:`~repro.service.client.ServiceClient` for shell-side health
checks and job management against a running server.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from typing import List, Optional

from .client import ServiceClient, ServiceError
from .config import ServiceConfig
from .server import ServiceServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Long-running multi-tenant execution job server")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run the job server in the foreground")
    serve.add_argument("--socket", default=None,
                       help="unix-socket path of the NDJSON front door")
    serve.add_argument("--http-port", type=int, default=None,
                       help="TCP port of the HTTP front door (0 = any)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind host for HTTP (default 127.0.0.1)")
    serve.add_argument("--db", default=None,
                       help="SQLite run-registry path (default :memory:)")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent expectation-cache directory shared "
                            "by every tenant job")
    serve.add_argument("--spool", default=None,
                       help="filesystem-broker spool directory: hand "
                            "process shards to elastic repro-worker "
                            "processes instead of the local fork pool")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker threads (default 2)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="server-wide queued-job bound")
    serve.add_argument("--max-pending-per-tenant", type=int, default=None,
                       help="per-tenant queued-job quota")
    serve.add_argument("--max-running-per-tenant", type=int, default=None,
                       help="per-tenant concurrent-job quota")

    for name, help_text in (
            ("ping", "health-check a running server"),
            ("stats", "print queue/registry/cache statistics"),
            ("jobs", "list recent jobs")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--socket", required=True)
        if name == "jobs":
            sub.add_argument("--tenant", default=None)
            sub.add_argument("--limit", type=int, default=50)

    for name, help_text in (
            ("status", "print one job's registry row"),
            ("result", "wait for a job and print its result"),
            ("cancel", "cancel a job")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--socket", required=True)
        sub.add_argument("job_id")

    shutdown = commands.add_parser(
        "shutdown", help="ask a running server to shut down gracefully")
    shutdown.add_argument("--socket", required=True)
    shutdown.add_argument("--no-drain", action="store_true",
                          help="cancel running jobs instead of draining")
    return parser


def _serve_config(options: argparse.Namespace) -> ServiceConfig:
    overrides = {}
    if options.socket is not None:
        overrides["socket_path"] = options.socket
    if options.http_port is not None:
        overrides["http_port"] = options.http_port
    if options.host != "127.0.0.1":
        overrides["host"] = options.host
    if options.db is not None:
        overrides["db_path"] = options.db
    if options.cache_dir is not None:
        overrides["cache_dir"] = options.cache_dir
    if options.spool is not None:
        overrides["spool"] = options.spool
    if options.workers is not None:
        overrides["workers"] = options.workers
    if options.max_pending is not None:
        overrides["max_pending"] = options.max_pending
    if options.max_pending_per_tenant is not None:
        overrides["max_pending_per_tenant"] = \
            options.max_pending_per_tenant
    if options.max_running_per_tenant is not None:
        overrides["max_running_per_tenant"] = \
            options.max_running_per_tenant
    return ServiceConfig.from_env(**overrides)


async def _serve(config: ServiceConfig) -> None:
    server = ServiceServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signal_number in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signal_number, server.request_shutdown)
    where = []
    if config.socket_path:
        where.append(f"socket {config.socket_path}")
    if server.http_port is not None:
        where.append(f"http://{config.host}:{server.http_port}")
    print(f"repro.service listening on {' and '.join(where)} "
          f"(registry {config.db_path})", flush=True)
    await server.serve_until_shutdown()
    print("repro.service stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    options = _build_parser().parse_args(argv)
    if options.command == "serve":
        asyncio.run(_serve(_serve_config(options)))
        return 0
    try:
        with ServiceClient(options.socket) as client:
            if options.command == "ping":
                pong = client.ping()
                print(f"{pong.server} protocol v{pong.version}")
            elif options.command == "stats":
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            elif options.command == "jobs":
                print(json.dumps(
                    client.list_jobs(options.tenant, options.limit),
                    indent=2, sort_keys=True))
            elif options.command == "status":
                print(json.dumps(client.status(options.job_id), indent=2,
                                 sort_keys=True))
            elif options.command == "result":
                response = client.result(options.job_id, wait=True)
                print(json.dumps({"state": response.state,
                                  "result": response.result,
                                  "error": response.error},
                                 indent=2, sort_keys=True))
                if response.state != "done":
                    return 1
            elif options.command == "cancel":
                print(client.cancel(options.job_id))
            elif options.command == "shutdown":
                print(client.shutdown_server(
                    drain=not options.no_drain))
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ConnectionRefusedError, FileNotFoundError) as error:
        print(f"error: cannot reach server at {options.socket}: {error}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
