"""Rare-event logical-error-rate estimation for the low-``p`` tail.

The paper's EFT-era claims live where logical failures are rare: a direct
Monte-Carlo estimate of a logical error rate of ~1e-6 at ``p`` ≈ 1e-4 needs
~1e8 decoded shots before the confidence interval says anything.  This
module attacks the exponent instead of the constant with two
variance-reduction estimators over the same edge-Bernoulli error model the
direct sampler (:mod:`repro.qec.sampling`) draws from:

**Exponentially tilted importance sampling** (``method="importance"``) —
errors are drawn from a per-edge *tilted* distribution ``q`` instead of the
physical ``p``, and every shot is reweighted by its likelihood ratio

.. code-block:: text

    log w(e) = Σ_i  e_i · (log p_i − log q_i)
             + (1 − e_i) · (log(1 − p_i) − log(1 − q_i))

computed in log space as one matvec over the ``(shots, n_edges)`` error
matrix, so the weights stay finite at any ``p``/``q`` in ``(0, 1)``.  The
estimate ``p̂ = Σ w_i·fail_i / shots`` is unbiased; the effective sample
size ``(Σw)² / Σw²`` diagnoses tilt quality, and the interval is an
**effective-n Wilson interval** (the Wilson score formula evaluated at the
direct-sample count that would match the estimator's variance).  With
``q == p`` every weight is *identically* ``1.0`` — the log-ratio is an
exact zero — and the path consumes the very same ``rng.random((S, N))``
stream as :func:`~repro.qec.sampling.run_memory_sampling`, so it reproduces
the direct sampler **bitwise**.  That is the determinism anchor the tests
hold the implementation to.

**Weight-stratified subset sampling** (``method="stratified"``) — shots are
conditioned on the total error weight ``w`` (number of flipped edges).
Each stratum's probability ``P(W = w)`` is *exact*: a binomial when every
edge shares one rate, a Poisson-binomial dynamic program otherwise.  Strata
below the code's minimum fault weight — a minimum-weight decoder cannot
fail on fewer than ``⌈d/2⌉`` errors — are skipped as exact zeros, and the
decode budget is spent adaptively where the variance is: a pilot round
measures each stratum's conditional failure rate, the remainder allocates
by Neyman weights ``P_w · √(f_w(1 − f_w))``.  Conditional fixed-weight
samples are drawn exactly (no rejection) with the suffix-probability table
of the same dynamic program, so heterogeneous edge rates are handled
without approximation.

Both estimators ride the existing engine end to end: the per-graph
:class:`~repro.qec.sampling.SamplingArrays`, the bit-packed syndrome
kernels, per-block ``SeedSequence.spawn`` seeding (blocks — never workers —
are the determinism unit), executor shard dispatch through any
:class:`~repro.execution.broker.ShardBroker`, and expectation-cache
checkpointing (full-run keys here, per-chunk keys in
:func:`stream_rare_event_sampling`).  Floating-point aggregates are folded
with :func:`math.fsum` over *per-block* partial sums — ``fsum`` is
correctly rounded regardless of summand order, so how blocks are grouped
onto workers or brokers can never move a bit of the estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..execution.broker import make_broker
from ..execution.sharding import run_sharded, split_evenly
from .bitops import popcount
from .decoders.base import (absorb_batch_decode_delta, batch_decode,
                            batch_decode_delta, batch_decode_packed,
                            batch_decode_stats,
                            apply_decoder_counter_delta,
                            decoder_cache_token,
                            decoder_counter_delta, decoder_counter_snapshot)
from .decoders.graph import DecodingGraph
from .sampling import (SHOT_BLOCK, SamplingArrays, SeedLike, _note_experiment,
                       _shot_blocks, as_seed_sequence,
                       packed_syndromes_and_flips, resolve_kernel,
                       sampling_arrays, syndromes_and_flips, wilson_interval)

__all__ = [
    "RareEventResult", "StratumResult", "effective_wilson_interval",
    "minimum_fault_weight", "run_rare_event_sampling",
    "stream_rare_event_sampling", "stratum_probabilities",
    "tilt_for_mean_weight", "tilted_probabilities",
]

#: Tilt spec accepted by ``run_rare_event_sampling``: ``None`` (auto —
#: tilt the mean error weight onto the minimum fault weight), a scalar
#: exponential-tilt parameter θ, or an explicit per-edge ``q`` array.
TiltLike = Union[None, float, Sequence[float], np.ndarray]


# ---------------------------------------------------------------------------
# Tilting and stratum probabilities (pure math, no sampling)
# ---------------------------------------------------------------------------


def tilted_probabilities(probabilities: np.ndarray,
                         theta: float) -> np.ndarray:
    """Exponentially tilted Bernoulli rates ``q_i = p_i e^θ / (1 − p_i + p_i e^θ)``.

    ``θ > 0`` pushes mass toward more errors per shot, ``θ < 0`` toward
    fewer; ``θ = 0`` returns ``probabilities`` itself (bit-for-bit — the
    identity tilt must preserve the ``q == p`` determinism anchor, and a
    float round-trip through odds space would not).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if theta == 0.0:
        return probabilities.copy()
    # Work in log-odds so extreme θ cannot overflow: the tilted odds are
    # exp(logit(p) + θ) and the sigmoid maps them back into (0, 1).
    logits = np.log(probabilities) - np.log1p(-probabilities)
    tilted = logits + float(theta)
    with np.errstate(over="ignore"):
        return 1.0 / (1.0 + np.exp(-tilted))


def tilt_for_mean_weight(probabilities: np.ndarray,
                         target_weight: float) -> float:
    """The tilt θ making the *expected* error weight ``Σ q_i(θ)`` hit
    ``target_weight``.

    ``Σ q_i(θ)`` is strictly increasing in θ, so a fixed-iteration
    bisection (deterministic — the value participates in cache keys via
    the tilted ``q``) converges to machine precision.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    target = float(target_weight)
    if not 0.0 < target < probabilities.size:
        raise ValueError(
            f"target mean weight must lie in (0, {probabilities.size}), "
            f"got {target}")
    low, high = -60.0, 60.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if float(tilted_probabilities(probabilities, mid).sum()) < target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def stratum_probabilities(probabilities: np.ndarray,
                          max_weight: int) -> Tuple[np.ndarray, float]:
    """``(P, tail)``: exact ``P[w] = P(total weight = w)`` for
    ``w = 0..max_weight`` plus the truncated tail mass ``P(W > max_weight)``.

    One Poisson-binomial dynamic program over the edges (``O(n·max_weight)``)
    — with homogeneous rates it reduces to the exact binomial.  Truncation
    is exact for the kept bins: in the forward recurrence probability only
    flows *upward* in weight, so dropping bins above ``max_weight`` cannot
    perturb the bins below.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    max_weight = int(max_weight)
    if max_weight < 0:
        raise ValueError("max_weight must be >= 0")
    dist = np.zeros(max_weight + 1, dtype=np.float64)
    dist[0] = 1.0
    for rate in probabilities:
        keep = dist * (1.0 - rate)
        keep[1:] += dist[:-1] * rate
        dist = keep
    tail = max(0.0, 1.0 - math.fsum(dist.tolist()))
    return dist, tail


def minimum_fault_weight(graph: DecodingGraph) -> int:
    """The smallest error weight that can defeat a minimum-weight decoder.

    Any failing shot satisfies ``|error| + |correction| ≥ d`` (the error
    plus the correction close a logical-class cycle, whose weight is at
    least the code distance) and a minimum-weight correction never weighs
    more than the error that produced its syndrome, so ``|error| ≥ ⌈d/2⌉``.
    The bound assumes uniform edge weights and a minimum-weight (or better)
    decoder — pass ``min_fault_weight=1`` to ``run_rare_event_sampling``
    to disable the skip for decoders outside that contract.
    """
    return (int(graph.distance) + 1) // 2


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def effective_wilson_interval(estimate: float, variance: float,
                              z: float = 1.96,
                              tail: float = 0.0) -> Tuple[float, float]:
    """Wilson score interval at the *effective* sample count.

    ``n_eff = p̂(1 − p̂) / Var[p̂]`` is the direct-sample shot count whose
    binomial estimator would match this estimator's variance; evaluating
    the Wilson formula at ``(p̂·n_eff, n_eff)`` keeps the interval inside
    ``[0, 1]`` and honest near zero, exactly like the direct sampler's
    :func:`~repro.qec.sampling.wilson_interval`.  ``tail`` (an upper bound
    on truncation bias, e.g. the skipped stratum mass) widens the upper
    edge only.
    """
    estimate = float(estimate)
    if variance <= 0.0:
        return (max(0.0, estimate), min(1.0, estimate + tail))
    clipped = min(max(estimate, 1e-300), 1.0 - 1e-12)
    n_eff = clipped * (1.0 - clipped) / float(variance)
    low, high = wilson_interval(estimate * n_eff, n_eff, z=z)
    return (low, min(1.0, high + float(tail)))


@dataclass(frozen=True)
class StratumResult:
    """One weight stratum of a stratified run: its exact probability mass
    and the conditional Monte-Carlo evidence collected in it."""

    weight: int
    probability: float
    shots: int
    failures: int

    @property
    def conditional_failure_rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def contribution(self) -> float:
        """This stratum's share of the logical-error-rate estimate."""
        return self.probability * self.conditional_failure_rate


@dataclass(frozen=True)
class RareEventResult:
    """Outcome of a rare-event estimation run.

    ``shots`` counts *decoded* shots (the cost the estimator is judged
    by); ``estimate`` is the unbiased logical-error-rate estimate with
    estimator ``variance`` and effective sample size ``ess``;
    ``raw_failures`` counts the unweighted decoder disagreements actually
    observed (diagnostics — under a tilt they are *not* an error-rate
    numerator).  ``strata`` carries the per-stratum breakdown
    (stratified method only) and ``tail_probability`` bounds the bias of
    skipping strata above the truncation weight.
    """

    method: str
    shots: int
    estimate: float
    variance: float
    ess: float
    raw_failures: int
    total_defects: int
    from_cache: bool
    strata: Tuple[StratumResult, ...] = ()
    tail_probability: float = 0.0
    fault_report: Optional[object] = None

    @property
    def logical_error_rate(self) -> float:
        """Alias for :attr:`estimate` (mirrors ``SamplingRun``)."""
        return self.estimate

    @property
    def standard_error(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Effective-n Wilson interval (truncation tail widens the top)."""
        return effective_wilson_interval(self.estimate, self.variance, z=z,
                                         tail=self.tail_probability)


# ---------------------------------------------------------------------------
# The resolved run specification (shared by batch + streaming paths)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RareEventSpec:
    """Everything derived from the arguments before any sampling happens.

    The spec is a pure function of (graph, method, knobs) — building it
    twice yields identical values, which is what lets the cache keys and
    the resumed streaming path agree with the original run.
    """

    method: str
    q: Optional[np.ndarray]              # importance only
    strata: Tuple[int, ...]              # stratified only
    stratum_probability: Dict[int, float]
    tail: float
    pilot_shots: int
    method_token: tuple


def _digest_array(values: np.ndarray) -> str:
    import hashlib
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(np.ascontiguousarray(values, dtype=np.float64).tobytes())
    return hasher.hexdigest()


def _resolve_spec(graph: DecodingGraph, arrays: SamplingArrays, method: str,
                  shots: int, tilt: TiltLike, min_fault_weight_arg,
                  max_weight_arg, pilot_shots: int,
                  tail_rtol: float) -> _RareEventSpec:
    if method == "importance":
        probabilities = arrays.probabilities
        if tilt is None:
            target = float(minimum_fault_weight(graph))
            theta = tilt_for_mean_weight(probabilities, target)
            q = tilted_probabilities(probabilities, theta)
        elif np.isscalar(tilt):
            q = tilted_probabilities(probabilities, float(tilt))
        else:
            q = np.asarray(tilt, dtype=np.float64)
            if q.shape != probabilities.shape:
                raise ValueError(
                    f"tilt array must have one rate per edge "
                    f"({probabilities.size}), got shape {q.shape}")
        if q.size and (float(q.min()) <= 0.0 or float(q.max()) >= 1.0):
            raise ValueError("tilted probabilities must lie strictly in "
                             "(0, 1) — the likelihood ratio is undefined "
                             "at 0 and 1")
        return _RareEventSpec(method="importance", q=q, strata=(),
                              stratum_probability={}, tail=0.0,
                              pilot_shots=0,
                              method_token=("importance", _digest_array(q)))

    if method != "stratified":
        raise ValueError(f"unknown rare-event method {method!r} "
                         f"(expected 'importance' or 'stratified')")
    n_edges = arrays.num_edges
    min_fault = (minimum_fault_weight(graph) if min_fault_weight_arg is None
                 else int(min_fault_weight_arg))
    if not 1 <= min_fault <= n_edges:
        raise ValueError(f"min_fault_weight must lie in [1, {n_edges}], "
                         f"got {min_fault}")
    if max_weight_arg is None:
        # Extend the truncation weight until the dropped tail is a
        # negligible fraction of the covered stratum mass (deterministic:
        # depends only on the edge rates).
        max_weight = min_fault
        ceiling = min(n_edges, min_fault + 16)
        while max_weight < ceiling:
            dist, tail = stratum_probabilities(arrays.probabilities,
                                               max_weight)
            covered = math.fsum(dist[min_fault:].tolist())
            if tail <= tail_rtol * covered:
                break
            max_weight += 1
    else:
        max_weight = int(max_weight_arg)
        if max_weight < min_fault:
            raise ValueError(
                f"max_weight ({max_weight}) must be >= the minimum fault "
                f"weight ({min_fault})")
        max_weight = min(max_weight, n_edges)
    dist, tail = stratum_probabilities(arrays.probabilities, max_weight)
    strata = tuple(w for w in range(min_fault, max_weight + 1)
                   if dist[w] > 0.0)
    if not strata:
        raise ValueError(
            f"no stratum in [{min_fault}, {max_weight}] has positive "
            f"probability — the error model cannot reach the fault weight")
    pilot = max(1, min(int(pilot_shots), int(shots) // (2 * len(strata))))
    return _RareEventSpec(
        method="stratified", q=None, strata=strata,
        stratum_probability={w: float(dist[w]) for w in strata}, tail=tail,
        pilot_shots=pilot,
        method_token=("stratified", min_fault, max_weight, pilot))


# ---------------------------------------------------------------------------
# Conditional fixed-weight sampling (exact, DP-based — no rejection)
# ---------------------------------------------------------------------------


def _conditional_include_table(probabilities: np.ndarray,
                               weight: int) -> np.ndarray:
    """``(n_edges, weight + 1)`` inclusion probabilities for exact
    fixed-weight sampling.

    Entry ``[i, k]`` is ``P(edge i flips | k errors remain among edges
    i..n−1)`` — ``p_i · T[i+1, k−1] / T[i, k]`` with the suffix table
    ``T[i, k] = P(edges i.. carry exactly k errors)``.  Sampling edges in
    order with these probabilities draws a subset of size exactly
    ``weight`` from the true conditional distribution (uniform over
    subsets when the rates are homogeneous, the tilted conditional
    otherwise), with no rejection loop.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    n = probabilities.size
    weight = int(weight)
    table = np.zeros((n + 1, weight + 1), dtype=np.float64)
    table[n, 0] = 1.0
    for i in range(n - 1, -1, -1):
        rate = probabilities[i]
        table[i] = table[i + 1] * (1.0 - rate)
        table[i, 1:] += table[i + 1, :-1] * rate
    include = np.zeros((n, weight + 1), dtype=np.float64)
    for i in range(n):
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(table[i, 1:] > 0.0,
                             probabilities[i] * table[i + 1, :-1]
                             / table[i, 1:], 0.0)
        include[i, 1:] = np.clip(ratio, 0.0, 1.0)
        # Forced inclusions: as many errors left as edges — float division
        # may land a hair under 1.0, which would strand a shot above
        # weight 0 at the end.
        forced = np.arange(weight + 1) >= (n - i)
        include[i, forced & (np.arange(weight + 1) > 0)] = 1.0
    return include


def _sample_fixed_weight(arrays: SamplingArrays, weight: int, shots: int,
                         rng: np.random.Generator,
                         include: np.ndarray) -> np.ndarray:
    """``(shots, n_edges)`` error matrix with exactly ``weight`` flips/row.

    Consumes one ``rng.random((shots, n_edges))`` draw — the same stream
    shape as the direct sampler — and walks the edges once, vectorized
    over shots.
    """
    n = arrays.num_edges
    draws = rng.random((int(shots), n))
    remaining = np.full(int(shots), int(weight), dtype=np.int64)
    errors = np.zeros((int(shots), n), dtype=np.uint8)
    for i in range(n):
        flip = draws[:, i] < include[i, remaining]
        errors[:, i] = flip
        remaining -= flip
    return errors


# ---------------------------------------------------------------------------
# The shard payload (module-level: pickles by reference into workers)
# ---------------------------------------------------------------------------


def _log_weight_terms(p: np.ndarray, q: np.ndarray
                      ) -> Tuple[float, np.ndarray]:
    """``(base_log, log_ratio)`` such that a shot with error vector ``e``
    carries likelihood-ratio log-weight ``base_log + e @ log_ratio``.

    ``base_log`` is the all-zeros weight (every edge kept clean under both
    measures) and ``log_ratio`` the per-edge swing of flipping one edge.
    Both terms are exact zeros when ``q == p`` (identical arrays subtract
    to 0.0), which is what makes the identity-tilt anchor bitwise; and
    both stay finite for any rates strictly inside (0, 1) because each
    factor goes through ``log``/``log1p`` before any ratio is formed.
    """
    keep = np.log1p(-p) - np.log1p(-q)
    log_ratio = (np.log(p) - np.log(q)) - keep
    return float(keep.sum()), log_ratio


def _decode_failures(arrays: SamplingArrays, errors: np.ndarray, decoder,
                     detectors, kernel: str
                     ) -> Tuple[np.ndarray, np.ndarray, int]:
    """``(per-shot failure bools, error flips, total defects)`` for one
    block of errors, through either syndrome kernel."""
    if kernel == "dense":
        syndromes, flips = syndromes_and_flips(arrays, errors)
        decoder_flips = batch_decode(decoder, syndromes, detectors)
        defects = int(syndromes.sum(dtype=np.int64))
    else:
        words, flips = packed_syndromes_and_flips(arrays, errors)
        decoder_flips = batch_decode_packed(decoder, words, detectors)
        defects = int(popcount(words))
    return decoder_flips != flips.astype(bool), flips, defects


def _rare_event_shard(graph: DecodingGraph, decoder, q: Optional[np.ndarray],
                      units: Sequence[Tuple[Optional[int],
                                            np.random.SeedSequence, int]],
                      kernel: str = "packed") -> Dict:
    """Sample + decode one worker's slice of rare-event blocks.

    Each unit is ``(stratum weight | None, block seed, block shots)``:
    ``None`` means an importance-sampling block drawn from the tilted
    rates ``q``; an integer means a stratified block conditioned on that
    exact error weight.  Returns **per-block** partial sums (never folded
    inside the shard) so the parent can reduce them with ``math.fsum`` in
    a grouping-independent way, plus the decode/decoder counter deltas
    accumulated in this process.
    """
    arrays = sampling_arrays(graph)
    detectors = graph.detector_order()
    decode_before = batch_decode_stats()
    counters_before = decoder_counter_snapshot(decoder)

    log_ratio = base_log = None
    if q is not None:
        base_log, log_ratio = _log_weight_terms(arrays.probabilities, q)

    include_tables: Dict[int, np.ndarray] = {}
    blocks: List[Dict] = []
    for weight, seed_child, block_shots in units:
        rng = np.random.default_rng(seed_child)
        if weight is None:
            draws = rng.random((int(block_shots), arrays.num_edges))
            errors = (draws < q).view(np.uint8)
            failures, _, defects = _decode_failures(arrays, errors, decoder,
                                                    detectors, kernel)
            log_weights = base_log + errors @ log_ratio
            weights = np.exp(log_weights)
            weighted = weights * failures
            blocks.append({
                "shots": int(block_shots),
                "raw_failures": int(failures.sum()),
                "defects": defects,
                "wf": float(weighted.sum()),
                "wf2": float((weighted * weighted).sum()),
                "w": float(weights.sum()),
                "w2": float((weights * weights).sum()),
            })
        else:
            include = include_tables.get(int(weight))
            if include is None:
                include = _conditional_include_table(arrays.probabilities,
                                                     int(weight))
                include_tables[int(weight)] = include
            errors = _sample_fixed_weight(arrays, int(weight), block_shots,
                                          rng, include)
            failures, _, defects = _decode_failures(arrays, errors, decoder,
                                                    detectors, kernel)
            blocks.append({
                "weight": int(weight),
                "shots": int(block_shots),
                "failures": int(failures.sum()),
                "defects": defects,
            })
    return {
        "blocks": blocks,
        "decode_delta": batch_decode_delta(decode_before,
                                           batch_decode_stats()),
        "decoder_delta": decoder_counter_delta(
            counters_before, decoder_counter_snapshot(decoder)),
    }


# ---------------------------------------------------------------------------
# Folding per-block results (fsum: grouping-independent to the last bit)
# ---------------------------------------------------------------------------


def _fold_importance(blocks: Sequence[Dict], shots: int
                     ) -> Tuple[float, float, float, int, int]:
    """``(estimate, variance, ess, raw failures, defects)`` from per-block
    importance partial sums."""
    wf = math.fsum(block["wf"] for block in blocks)
    wf2 = math.fsum(block["wf2"] for block in blocks)
    w = math.fsum(block["w"] for block in blocks)
    w2 = math.fsum(block["w2"] for block in blocks)
    raw = sum(block["raw_failures"] for block in blocks)
    defects = sum(block["defects"] for block in blocks)
    shots = int(shots)
    estimate = wf / shots
    if shots > 1:
        # Sample variance of x_i = w_i·fail_i over the S draws, then /S
        # for the variance of the mean.
        sample_var = max(wf2 - shots * estimate * estimate, 0.0) / (shots - 1)
        variance = sample_var / shots
    else:
        variance = 0.0
    ess = (w * w / w2) if w2 > 0.0 else 0.0
    return estimate, variance, ess, raw, defects


def _fold_strata(blocks: Sequence[Dict], spec: _RareEventSpec
                 ) -> Tuple[float, float, float, int, int,
                            Tuple[StratumResult, ...]]:
    """``(estimate, variance, ess, raw failures, defects, strata)`` from
    per-block stratified counts (all integers — order cannot matter)."""
    shots_by = {w: 0 for w in spec.strata}
    failures_by = {w: 0 for w in spec.strata}
    defects = 0
    for block in blocks:
        weight = block["weight"]
        shots_by[weight] += block["shots"]
        failures_by[weight] += block["failures"]
        defects += block["defects"]
    strata = tuple(StratumResult(weight=w,
                                 probability=spec.stratum_probability[w],
                                 shots=shots_by[w], failures=failures_by[w])
                   for w in spec.strata)
    estimate = math.fsum(s.contribution for s in strata)
    # Laplace-smoothed conditional rates for the variance only: a stratum
    # with zero observed failures still carries nonzero uncertainty.
    variance = math.fsum(
        s.probability * s.probability
        * ((s.failures + 1) / (s.shots + 2))
        * (1.0 - (s.failures + 1) / (s.shots + 2)) / s.shots
        for s in strata if s.shots > 0)
    clipped = min(max(estimate, 1e-300), 1.0 - 1e-12)
    ess = clipped * (1.0 - clipped) / variance if variance > 0.0 else 0.0
    raw = sum(s.failures for s in strata)
    return estimate, variance, ess, raw, defects, strata


def _allocate_main_shots(spec: _RareEventSpec,
                         pilot: Dict[int, Tuple[int, int]],
                         budget: int) -> Dict[int, int]:
    """Neyman allocation of the post-pilot budget.

    ``score_w = P_w · √(f̃_w (1 − f̃_w))`` with Laplace-smoothed pilot
    rates ``f̃ = (failures + 1)/(shots + 2)`` (a zero-failure pilot must
    not zero a stratum out — its rate is merely *small*).  Largest-
    remainder rounding keeps the total exactly ``budget`` and is a pure
    function of integers, so every worker layout allocates identically.
    """
    scores = {}
    for weight in spec.strata:
        shots, failures = pilot[weight]
        smoothed = (failures + 1) / (shots + 2)
        scores[weight] = (spec.stratum_probability[weight]
                          * math.sqrt(smoothed * (1.0 - smoothed)))
    total = math.fsum(scores.values())
    if total <= 0.0 or budget <= 0:
        return {weight: 0 for weight in spec.strata}
    raw = {weight: budget * scores[weight] / total for weight in spec.strata}
    allocation = {weight: int(raw[weight]) for weight in spec.strata}
    shortfall = budget - sum(allocation.values())
    remainders = sorted(spec.strata,
                        key=lambda w: (raw[w] - allocation[w], -w),
                        reverse=True)
    for weight in remainders[:shortfall]:
        allocation[weight] += 1
    return allocation


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def _rare_cache_base(graph: DecodingGraph, decoder_token: tuple,
                     spec: _RareEventSpec, shots: int, seed_key: tuple
                     ) -> tuple:
    return ("qec-rare", graph.fingerprint(), decoder_token,
            spec.method_token, int(shots), int(SHOT_BLOCK), seed_key)


_SCALAR_COMPONENTS = ("estimate", "variance", "ess", "raw", "defects")


def _load_cached_result(executor, base: tuple, spec: _RareEventSpec,
                        shots: int) -> Optional[RareEventResult]:
    values = {}
    for component in _SCALAR_COMPONENTS:
        hit = executor.cache.get(base + (component,))
        if hit is None:
            return None
        values[component] = hit
    strata: List[StratumResult] = []
    for weight in spec.strata:
        stratum_shots = executor.cache.get(base + ("stratum", weight,
                                                   "shots"))
        stratum_failures = executor.cache.get(base + ("stratum", weight,
                                                      "failures"))
        if stratum_shots is None or stratum_failures is None:
            return None
        strata.append(StratumResult(
            weight=weight, probability=spec.stratum_probability[weight],
            shots=int(round(stratum_shots)),
            failures=int(round(stratum_failures))))
    return RareEventResult(
        method=spec.method, shots=int(shots),
        estimate=float(values["estimate"]),
        variance=float(values["variance"]), ess=float(values["ess"]),
        raw_failures=int(round(values["raw"])),
        total_defects=int(round(values["defects"])), from_cache=True,
        strata=tuple(strata), tail_probability=spec.tail)


def _store_result(executor, base: tuple, result: RareEventResult) -> None:
    executor.cache.put(base + ("estimate",), float(result.estimate))
    executor.cache.put(base + ("variance",), float(result.variance))
    executor.cache.put(base + ("ess",), float(result.ess))
    executor.cache.put(base + ("raw",), float(result.raw_failures))
    executor.cache.put(base + ("defects",), float(result.total_defects))
    for stratum in result.strata:
        executor.cache.put(base + ("stratum", stratum.weight, "shots"),
                           float(stratum.shots))
        executor.cache.put(base + ("stratum", stratum.weight, "failures"),
                           float(stratum.failures))


def _chunk_keys(base: tuple, phase: str, weight: Optional[int], start: int,
                count: int, components: Sequence[str]) -> Dict[str, tuple]:
    prefix = ("qec-rare-chunk",) + base[1:] + (
        phase, -1 if weight is None else int(weight), int(start), int(count))
    return {component: prefix + (component,) for component in components}


# ---------------------------------------------------------------------------
# Work-unit construction (the seed-spawning contract)
# ---------------------------------------------------------------------------


def _stratum_blocks(child: np.random.SeedSequence, shots: int
                    ) -> List[Tuple[np.random.SeedSequence, int]]:
    """Deterministic per-stratum blocks (same shape as ``_shot_blocks``)."""
    return _shot_blocks(child, shots) if shots > 0 else []


def _stratum_children(seed_sequence: np.random.SeedSequence,
                      spec: _RareEventSpec) -> Dict[int, tuple]:
    """Per-stratum ``(pilot child, main child)`` seed pairs.

    The spawn layout depends only on the stratum list, which is resolved
    from the graph and the knobs before any sampling — so pilot draws are
    unchanged by how the main budget ends up allocated.
    """
    children = seed_sequence.spawn(2 * len(spec.strata))
    return {weight: (children[2 * index], children[2 * index + 1])
            for index, weight in enumerate(spec.strata)}


# ---------------------------------------------------------------------------
# Shard dispatch shared by both phases
# ---------------------------------------------------------------------------


def _dispatch_units(executor, effective, graph, decoder, spec, units, kernel,
                    fault_reports: list) -> Tuple[List[Dict], int]:
    """Run ``units`` through the planner / broker seam; returns the
    per-block results **in unit order** plus the process-shard count."""
    if not units:
        return [], 0
    plan = executor.planner.plan(num_items=len(units), hints=("process",),
                                 parallel=effective.parallel,
                                 max_workers=effective.max_workers)
    if plan.is_parallel:
        chunks = split_evenly(list(units), plan.workers)
    else:
        chunks = [list(units)]
    payloads = [(graph, decoder, spec.q, chunk, kernel) for chunk in chunks]
    crosses_processes = (plan.mode == "process" and plan.is_parallel
                         and len(payloads) > 1)

    def _on_fault(report) -> None:
        fault_reports.append(report)
        note = getattr(executor, "note_fault_report", None)
        if note is not None:
            note(report)

    broker = None
    if plan.mode == "process":
        broker = make_broker(effective.broker, plan.workers)
    shard_results = run_sharded(plan, _rare_event_shard, payloads,
                                policy=effective.retry, broker=broker,
                                on_fault=_on_fault)
    if crosses_processes:
        inline_shards = {index for report in fault_reports
                         for index in getattr(report, "inline_indices", ())}
        for index, result in enumerate(shard_results):
            if index in inline_shards:
                continue
            absorb_batch_decode_delta(result["decode_delta"])
            apply_decoder_counter_delta(decoder, result["decoder_delta"])
        executor.note_process_shards(len(payloads))
    blocks: List[Dict] = []
    for result in shard_results:
        blocks.extend(result["blocks"])
    return blocks, (len(payloads) if crosses_processes else 0)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_rare_event_sampling(graph: DecodingGraph, decoder, shots: int, *,
                            method: str = "stratified",
                            seed: SeedLike = None,
                            executor=None,
                            parallel: Optional[str] = None,
                            max_workers: Optional[int] = None,
                            use_cache: Optional[bool] = None,
                            kernel: Optional[str] = None,
                            policy=None,
                            tilt: TiltLike = None,
                            min_fault_weight: Optional[int] = None,
                            max_weight: Optional[int] = None,
                            pilot_shots: int = SHOT_BLOCK,
                            tail_rtol: float = 1e-3) -> RareEventResult:
    """Estimate the logical error rate with a rare-event estimator.

    ``shots`` is the **decode budget** — every method decodes exactly this
    many shots, which is the axis the benchmark gate compares against
    direct sampling.  ``method="importance"`` draws from exponentially
    tilted edge rates (``tilt``: ``None`` auto-solves the tilt that puts
    the mean error weight on the code's minimum fault weight, a float is
    the tilt parameter θ itself, an array is an explicit per-edge ``q``;
    ``tilt=0.0`` reproduces :func:`~repro.qec.sampling.run_memory_sampling`
    bitwise).  ``method="stratified"`` conditions on total error weight:
    strata below ``min_fault_weight`` (default ``⌈d/2⌉``) are exact zeros
    and never decoded, ``max_weight`` truncates the scored range (default:
    extend until the dropped tail is below ``tail_rtol`` of the covered
    mass), and the budget is spent pilot-then-Neyman across strata.

    Execution mirrors :func:`~repro.qec.sampling.run_memory_sampling`:
    blocks of :data:`~repro.qec.sampling.SHOT_BLOCK` shots seeded by
    ``SeedSequence.spawn`` children are the determinism unit, shards run
    through the executor's planner and any configured
    :class:`~repro.execution.broker.ShardBroker`, and seeded runs cache
    their aggregates in the executor's expectation cache (memory + disk
    tiers) under keys that encode none of the fan-out choices.  Results
    are **bitwise identical** for any ``max_workers``, any
    inline/thread/process path and any broker: integer counts fold
    exactly, and floating-point aggregates fold with ``math.fsum`` over
    per-block partial sums, whose correctly-rounded total is independent
    of how blocks were grouped.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    kernel = resolve_kernel(kernel)
    from ..execution.executor import default_executor
    if executor is None:
        executor = default_executor()
    if use_cache is None:
        use_cache = executor.use_cache

    arrays = sampling_arrays(graph)
    spec = _resolve_spec(graph, arrays, method, shots, tilt,
                         min_fault_weight, max_weight, pilot_shots,
                         tail_rtol)
    seed_sequence, seed_key = as_seed_sequence(seed)
    decoder_token = decoder_cache_token(decoder)
    cacheable = (use_cache and seed_key is not None
                 and decoder_token is not None)
    base = None
    if cacheable:
        base = _rare_cache_base(graph, decoder_token, spec, shots, seed_key)
        cached = _load_cached_result(executor, base, spec, shots)
        if cached is not None:
            _note_experiment(shots, cached=True, process_shards=0)
            return cached

    effective = executor._resolve_policy(policy, parallel=parallel,
                                         max_workers=max_workers)
    fault_reports: list = []
    if spec.method == "importance":
        units = [(None, child, block_shots)
                 for child, block_shots in _shot_blocks(seed_sequence, shots)]
        blocks, process_shards = _dispatch_units(
            executor, effective, graph, decoder, spec, units, kernel,
            fault_reports)
        estimate, variance, ess, raw, defects = _fold_importance(blocks,
                                                                 shots)
        strata: Tuple[StratumResult, ...] = ()
    else:
        children = _stratum_children(seed_sequence, spec)
        pilot_units = [(weight, child, block_shots)
                       for weight in spec.strata
                       for child, block_shots in _stratum_blocks(
                           children[weight][0], spec.pilot_shots)]
        pilot_blocks, pilot_shards = _dispatch_units(
            executor, effective, graph, decoder, spec, pilot_units, kernel,
            fault_reports)
        pilot: Dict[int, Tuple[int, int]] = {w: (0, 0) for w in spec.strata}
        for block in pilot_blocks:
            shots_so_far, failures_so_far = pilot[block["weight"]]
            pilot[block["weight"]] = (shots_so_far + block["shots"],
                                      failures_so_far + block["failures"])
        budget = int(shots) - sum(count for count, _ in pilot.values())
        allocation = _allocate_main_shots(spec, pilot, budget)
        main_units = [(weight, child, block_shots)
                      for weight in spec.strata
                      for child, block_shots in _stratum_blocks(
                          children[weight][1], allocation[weight])]
        main_blocks, main_shards = _dispatch_units(
            executor, effective, graph, decoder, spec, main_units, kernel,
            fault_reports)
        process_shards = pilot_shards + main_shards
        estimate, variance, ess, raw, defects, strata = _fold_strata(
            pilot_blocks + main_blocks, spec)
    _note_experiment(shots, cached=False, process_shards=process_shards)

    result = RareEventResult(
        method=spec.method, shots=int(shots), estimate=estimate,
        variance=variance, ess=ess, raw_failures=raw, total_defects=defects,
        from_cache=False, strata=strata, tail_probability=spec.tail,
        fault_report=fault_reports[0] if fault_reports else None)
    if cacheable:
        _store_result(executor, base, result)
    return result


def stream_rare_event_sampling(graph: DecodingGraph, decoder, shots: int, *,
                               method: str = "stratified",
                               seed: SeedLike = None,
                               executor=None,
                               chunk_blocks: int = 4,
                               use_cache: Optional[bool] = None,
                               kernel: Optional[str] = None,
                               tilt: TiltLike = None,
                               min_fault_weight: Optional[int] = None,
                               max_weight: Optional[int] = None,
                               pilot_shots: int = SHOT_BLOCK,
                               tail_rtol: float = 1e-3):
    """Generator variant of :func:`run_rare_event_sampling` with partials.

    Yields cumulative :class:`RareEventResult` snapshots after every
    ``chunk_blocks`` sampling blocks — the service layer streams
    per-stratum partials and running effective-n Wilson intervals from
    these.  Sampling happens inline (streaming is about latency, not
    throughput), and seeded runs **checkpoint every chunk** through the
    executor's expectation cache exactly like
    :func:`~repro.qec.sampling.stream_memory_sampling`: a resumed run — a
    retried service job, a restarted server, a new process over the same
    cache directory — replays flushed chunks without sampling or decoding
    and produces snapshots bitwise identical to an uninterrupted run
    (chunk aggregates are folded the same way whether they come from the
    cache or from fresh decoding).

    The final snapshot writes the same full-run cache entries
    :func:`run_rare_event_sampling` uses, so batch and streaming runs warm
    each other.  Integer aggregates (the whole stratified method) match
    the batch path bitwise; importance-sampling float aggregates fold
    per-chunk here versus per-block there, so they agree to ``fsum``
    rounding of the partial sums (exactly equal whenever the weights are
    exact — e.g. the ``q == p`` anchor).
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    if chunk_blocks < 1:
        raise ValueError("chunk_blocks must be a positive integer")
    kernel = resolve_kernel(kernel)
    from ..execution.executor import default_executor
    if executor is None:
        executor = default_executor()
    if use_cache is None:
        use_cache = executor.use_cache

    arrays = sampling_arrays(graph)
    spec = _resolve_spec(graph, arrays, method, shots, tilt,
                         min_fault_weight, max_weight, pilot_shots,
                         tail_rtol)
    seed_sequence, seed_key = as_seed_sequence(seed)
    decoder_token = decoder_cache_token(decoder)
    cacheable = (use_cache and seed_key is not None
                 and decoder_token is not None)
    base = None
    if cacheable:
        base = _rare_cache_base(graph, decoder_token, spec, shots, seed_key)
        cached = _load_cached_result(executor, base, spec, shots)
        if cached is not None:
            _note_experiment(shots, cached=True, process_shards=0)
            yield cached
            return

    importance_components = ("wf", "wf2", "w", "w2", "raw", "defects",
                             "shots")
    stratified_components = ("failures", "defects", "shots")

    def _run_chunks(phase: str, weight: Optional[int], block_seeds):
        """Yield per-chunk aggregate dicts (cache-served or computed)."""
        for start in range(0, len(block_seeds), int(chunk_blocks)):
            chunk = block_seeds[start:start + int(chunk_blocks)]
            components = (importance_components if weight is None
                          else stratified_components)
            keys = None
            if cacheable:
                keys = _chunk_keys(base, phase, weight, start, len(chunk),
                                   components)
                hits = {component: executor.cache.get(key)
                        for component, key in keys.items()}
                if all(value is not None for value in hits.values()):
                    yield {component: hits[component]
                           for component in components}
                    continue
            units = [(weight, child, block_shots)
                     for child, block_shots in chunk]
            shard = _rare_event_shard(graph, decoder, spec.q, units, kernel)
            if weight is None:
                aggregate = {
                    "wf": math.fsum(b["wf"] for b in shard["blocks"]),
                    "wf2": math.fsum(b["wf2"] for b in shard["blocks"]),
                    "w": math.fsum(b["w"] for b in shard["blocks"]),
                    "w2": math.fsum(b["w2"] for b in shard["blocks"]),
                    "raw": float(sum(b["raw_failures"]
                                     for b in shard["blocks"])),
                    "defects": float(sum(b["defects"]
                                         for b in shard["blocks"])),
                    "shots": float(sum(b["shots"] for b in shard["blocks"])),
                }
            else:
                aggregate = {
                    "failures": float(sum(b["failures"]
                                          for b in shard["blocks"])),
                    "defects": float(sum(b["defects"]
                                         for b in shard["blocks"])),
                    "shots": float(sum(b["shots"] for b in shard["blocks"])),
                }
            if keys is not None:
                for component, key in keys.items():
                    executor.cache.put(key, float(aggregate[component]))
            yield aggregate

    if spec.method == "importance":
        chunks: List[Dict] = []
        done_shots = 0
        block_seeds = _shot_blocks(seed_sequence, shots)
        final = None
        for aggregate in _run_chunks("is", None, block_seeds):
            chunks.append(aggregate)
            done_shots += int(round(aggregate["shots"]))
            wf = math.fsum(c["wf"] for c in chunks)
            wf2 = math.fsum(c["wf2"] for c in chunks)
            w = math.fsum(c["w"] for c in chunks)
            w2 = math.fsum(c["w2"] for c in chunks)
            raw = int(round(math.fsum(c["raw"] for c in chunks)))
            defects = int(round(math.fsum(c["defects"] for c in chunks)))
            estimate = wf / done_shots
            if done_shots > 1:
                sample_var = max(wf2 - done_shots * estimate * estimate,
                                 0.0) / (done_shots - 1)
                variance = sample_var / done_shots
            else:
                variance = 0.0
            ess = (w * w / w2) if w2 > 0.0 else 0.0
            final = RareEventResult(
                method="importance", shots=done_shots, estimate=estimate,
                variance=variance, ess=ess, raw_failures=raw,
                total_defects=defects, from_cache=False)
            yield final
    else:
        children = _stratum_children(seed_sequence, spec)
        counts: Dict[int, Tuple[int, int]] = {w: (0, 0) for w in spec.strata}
        defects = 0

        def _snapshot() -> RareEventResult:
            strata = tuple(StratumResult(
                weight=w, probability=spec.stratum_probability[w],
                shots=counts[w][0], failures=counts[w][1])
                for w in spec.strata)
            estimate = math.fsum(s.contribution for s in strata)
            variance = math.fsum(
                s.probability * s.probability
                * ((s.failures + 1) / (s.shots + 2))
                * (1.0 - (s.failures + 1) / (s.shots + 2)) / s.shots
                for s in strata if s.shots > 0)
            clipped = min(max(estimate, 1e-300), 1.0 - 1e-12)
            ess = (clipped * (1.0 - clipped) / variance
                   if variance > 0.0 else 0.0)
            return RareEventResult(
                method="stratified",
                shots=sum(s.shots for s in strata), estimate=estimate,
                variance=variance, ess=ess,
                raw_failures=sum(s.failures for s in strata),
                total_defects=defects, from_cache=False, strata=strata,
                tail_probability=spec.tail)

        for phase in ("pilot", "main"):
            if phase == "main":
                budget = int(shots) - sum(count
                                          for count, _ in counts.values())
                allocation = _allocate_main_shots(spec, counts, budget)
            for weight in spec.strata:
                if phase == "pilot":
                    block_seeds = _stratum_blocks(children[weight][0],
                                                  spec.pilot_shots)
                else:
                    block_seeds = _stratum_blocks(children[weight][1],
                                                  allocation[weight])
                for aggregate in _run_chunks(phase, weight, block_seeds):
                    old_shots, old_failures = counts[weight]
                    counts[weight] = (
                        old_shots + int(round(aggregate["shots"])),
                        old_failures + int(round(aggregate["failures"])))
                    defects += int(round(aggregate["defects"]))
                    yield _snapshot()
        final = _snapshot()

    _note_experiment(shots, cached=False, process_shards=0)
    if cacheable and final is not None:
        _store_result(executor, base, final)
