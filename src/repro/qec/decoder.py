"""Minimum-weight matching decoding of detector defects.

The paper extracts error-corrected operation fidelities from Stim simulations
decoded with matching-based decoders.  This module provides the matching
machinery used by :mod:`repro.qec.memory_experiment`: defects (flipped
detectors) living on a space–time lattice are paired up with minimum total
weight, where each defect may alternatively be matched to its nearest code
boundary.

The implementation reduces minimum-weight perfect matching with boundaries to
``networkx.min_weight_matching`` by adding one virtual boundary node per
defect (boundary–boundary edges are free), which is the standard construction
used by practical surface-code decoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import networkx as nx

Coordinate = Tuple[float, ...]


@dataclass(frozen=True)
class MatchedPair:
    """A matched pair of defects, or a defect matched to the boundary."""

    first: Coordinate
    second: Optional[Coordinate]  # None means "matched to boundary"
    weight: float

    @property
    def to_boundary(self) -> bool:
        return self.second is None


def manhattan_distance(a: Coordinate, b: Coordinate) -> float:
    """L1 distance between two defect coordinates."""
    if len(a) != len(b):
        raise ValueError("coordinates must have equal dimension")
    return float(sum(abs(x - y) for x, y in zip(a, b)))


class MatchingDecoder:
    """Pairs defects with minimum total weight, allowing boundary matches.

    Parameters
    ----------
    distance_fn:
        Weight of matching two defects together (defaults to Manhattan
        distance on their coordinates).
    boundary_fn:
        Weight of matching a defect to the nearest boundary; ``None`` forbids
        boundary matches (then the number of defects must be even).
    """

    def __init__(self,
                 distance_fn: Callable[[Coordinate, Coordinate], float] = manhattan_distance,
                 boundary_fn: Optional[Callable[[Coordinate], float]] = None):
        self._distance_fn = distance_fn
        self._boundary_fn = boundary_fn

    def decode(self, defects: Sequence[Coordinate]) -> List[MatchedPair]:
        """Return a minimum-weight pairing of the given defects."""
        defects = [tuple(d) for d in defects]
        if not defects:
            return []
        if self._boundary_fn is None and len(defects) % 2 == 1:
            raise ValueError("odd number of defects with no boundary available")

        graph = nx.Graph()
        for index, defect in enumerate(defects):
            graph.add_node(("defect", index))
        # Defect–defect edges.
        for i in range(len(defects)):
            for j in range(i + 1, len(defects)):
                weight = self._distance_fn(defects[i], defects[j])
                graph.add_edge(("defect", i), ("defect", j), weight=weight)
        # Boundary nodes: one per defect; boundary–boundary edges are free so
        # unused boundary nodes pair among themselves at zero cost.
        if self._boundary_fn is not None:
            for index, defect in enumerate(defects):
                graph.add_node(("boundary", index))
                graph.add_edge(("defect", index), ("boundary", index),
                               weight=self._boundary_fn(defect))
            boundary_nodes = [("boundary", i) for i in range(len(defects))]
            for i in range(len(boundary_nodes)):
                for j in range(i + 1, len(boundary_nodes)):
                    graph.add_edge(boundary_nodes[i], boundary_nodes[j], weight=0.0)
        if self._boundary_fn is None and len(defects) == 1:
            raise ValueError("cannot match a single defect without a boundary")

        matching = nx.min_weight_matching(graph)
        pairs: List[MatchedPair] = []
        for node_a, node_b in matching:
            kinds = {node_a[0], node_b[0]}
            if kinds == {"boundary"}:
                continue
            if kinds == {"defect"}:
                first = defects[node_a[1]]
                second = defects[node_b[1]]
                pairs.append(MatchedPair(first, second,
                                         self._distance_fn(first, second)))
            else:
                defect_node = node_a if node_a[0] == "defect" else node_b
                defect = defects[defect_node[1]]
                pairs.append(MatchedPair(defect, None, self._boundary_fn(defect)))
        return pairs

    def total_weight(self, defects: Sequence[Coordinate]) -> float:
        return float(sum(pair.weight for pair in self.decode(defects)))


def repetition_code_decoder(distance: int,
                            time_weight: float = 1.0) -> MatchingDecoder:
    """Decoder for a distance-``d`` repetition-code memory experiment.

    Defect coordinates are ``(position, round)`` with ``position`` the
    boundary index between data qubits (0 … d−2).  Space-like separation costs
    1 per step, time-like separation costs ``time_weight`` per round, and a
    defect may terminate on either chain end.
    """

    def distance_fn(a: Coordinate, b: Coordinate) -> float:
        return abs(a[0] - b[0]) + time_weight * abs(a[1] - b[1])

    def boundary_fn(defect: Coordinate) -> float:
        position = defect[0]
        return float(min(position + 1, distance - 1 - position))

    return MatchingDecoder(distance_fn=distance_fn, boundary_fn=boundary_fn)
