"""Clifford+T synthesis of Z rotations (the ``qec-conventional`` front end).

The paper's qec-conventional baseline synthesizes each VQA rotation into a
Clifford+T sequence with Gridsynth (Ross–Selinger).  Gridsynth itself is a
number-theoretic algorithm that is not reimplemented here; what the
evaluation consumes is

* the T-count / sequence-length / depth blow-up as a function of the target
  precision ε (Sec. 2.5 quotes ×7 depth and ×20 gate count at ε = 1e-6 for a
  20-qubit VQE), and
* the resulting number of T gates per rotation that must be fed by magic
  state factories.

``t_count_for_precision`` implements the published Ross–Selinger scaling
``T(ε) ≈ 3·log2(1/ε) + O(1)``.  For tests and small demonstrations an actual
synthesizer is also provided (:func:`synthesize_rz`): a breadth-first search
over ⟨H, T⟩ words that returns the best approximation within a T-budget
together with its true operator-norm error.  It is exact about the error it
reports but cannot reach 1e-6 precision in reasonable time — DESIGN.md
documents this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import H_MATRIX, S_MATRIX, T_MATRIX, rz_matrix

#: Ross–Selinger leading coefficient: T-count ≈ RS_COEFFICIENT·log2(1/ε) + RS_OFFSET.
RS_COEFFICIENT = 3.0
RS_OFFSET = 4.0

#: Average number of Clifford gates interleaved per T gate in a Gridsynth
#: sequence (H/S between consecutive T's, plus a terminal Clifford).
CLIFFORDS_PER_T = 1.5


def t_count_for_precision(epsilon: float) -> int:
    """Expected T-count of a Gridsynth decomposition of one Rz at precision ε."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError("precision must lie in (0, 1)")
    return int(math.ceil(RS_COEFFICIENT * math.log2(1.0 / epsilon) + RS_OFFSET))


def sequence_length_for_precision(epsilon: float) -> int:
    """Total gate count (T plus interleaved Cliffords) of one decomposition."""
    t_count = t_count_for_precision(epsilon)
    return int(math.ceil(t_count * (1.0 + CLIFFORDS_PER_T)))


def depth_inflation_for_precision(epsilon: float) -> int:
    """Depth contributed by one synthesized rotation (the sequence is serial)."""
    return sequence_length_for_precision(epsilon)


@dataclass(frozen=True)
class SynthesisOverhead:
    """Circuit-level blow-up of replacing native rotations by Clifford+T."""

    precision: float
    rotations: int
    t_count_per_rotation: int
    total_t_count: int
    gate_count_multiplier: float
    depth_multiplier: float


def synthesis_overhead(num_rotations: int, original_gate_count: int,
                       original_depth: int,
                       precision: float = 1e-6) -> SynthesisOverhead:
    """Estimate the Clifford+T blow-up for a circuit with ``num_rotations`` Rz gates.

    Reproduces the Sec. 2.5 observation that a 20-qubit VQE at ε = 1e-6
    inflates depth ≈7× and gate count ≈20×.
    """
    if num_rotations < 0 or original_gate_count <= 0 or original_depth <= 0:
        raise ValueError("counts must be positive")
    t_per_rotation = t_count_for_precision(precision)
    sequence = sequence_length_for_precision(precision)
    new_gate_count = original_gate_count - num_rotations + num_rotations * sequence
    # Only rotations on the depth-critical path inflate the depth; in a
    # hardware-efficient ansatz roughly one rotation layer per entangling
    # layer sits on the critical path.
    rotation_depth_fraction = min(1.0, num_rotations / max(original_gate_count, 1))
    new_depth = original_depth * (1.0 - rotation_depth_fraction) \
        + original_depth * rotation_depth_fraction * sequence / 10.0
    new_depth = max(new_depth, original_depth)
    return SynthesisOverhead(
        precision=precision,
        rotations=num_rotations,
        t_count_per_rotation=t_per_rotation,
        total_t_count=num_rotations * t_per_rotation,
        gate_count_multiplier=new_gate_count / original_gate_count,
        depth_multiplier=new_depth / original_depth,
    )


# --------------------------------------------------------------------------
# Enumerative ⟨H, T⟩ synthesis (used by tests / demonstrations)
# --------------------------------------------------------------------------

def _operator_distance(unitary: np.ndarray, target: np.ndarray) -> float:
    """Global-phase-invariant operator distance between 2x2 unitaries."""
    overlap = abs(np.trace(target.conj().T @ unitary)) / 2.0
    overlap = min(overlap, 1.0)
    return math.sqrt(max(0.0, 1.0 - overlap ** 2))


def _canonical_key(unitary: np.ndarray, digits: int = 7) -> tuple:
    """Hashable global-phase-normalized key for deduplication."""
    flat = unitary.ravel()
    anchor_index = int(np.argmax(np.abs(flat)))
    anchor = flat[anchor_index]
    normalized = flat * (abs(anchor) / anchor)
    return tuple(np.round(normalized, digits))


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of an enumerative Clifford+T approximation of Rz(θ)."""

    angle: float
    gate_sequence: Tuple[str, ...]
    t_count: int
    error: float

    def to_circuit(self, qubit: int = 0, num_qubits: int = 1) -> QuantumCircuit:
        circuit = QuantumCircuit(num_qubits, name=f"rz_synth({self.angle:.4f})")
        for gate_name in self.gate_sequence:
            getattr(circuit, gate_name)(qubit)
        return circuit


def synthesize_rz(theta: float, max_t_count: int = 8,
                  max_states: int = 20000) -> SynthesisResult:
    """Best ⟨H, T, S⟩ approximation of Rz(θ) within a T-gate budget.

    Breadth-first search over words in H and T (S = T², so S appears
    implicitly), deduplicating unitaries up to global phase.  Returns the
    sequence with the smallest phase-invariant operator distance to Rz(θ).
    The reported ``error`` is the true distance of the returned unitary, so
    tests can verify monotone improvement with the T budget.
    """
    if max_t_count < 0:
        raise ValueError("max_t_count must be non-negative")
    target = rz_matrix(theta)
    identity = np.eye(2, dtype=complex)
    # Each frontier entry: (unitary, sequence, t_count)
    frontier: List[Tuple[np.ndarray, Tuple[str, ...], int]] = [(identity, (), 0)]
    seen = {_canonical_key(identity)}
    best = SynthesisResult(theta, (), 0, _operator_distance(identity, target))
    generators = (("h", H_MATRIX, 0), ("t", T_MATRIX, 1), ("s", S_MATRIX, 0))
    explored = 0
    while frontier and explored < max_states:
        unitary, sequence, t_used = frontier.pop(0)
        for name, matrix, t_cost in generators:
            if t_used + t_cost > max_t_count:
                continue
            new_unitary = matrix @ unitary
            key = _canonical_key(new_unitary)
            if key in seen:
                continue
            seen.add(key)
            explored += 1
            new_sequence = sequence + (name,)
            error = _operator_distance(new_unitary, target)
            if error < best.error:
                best = SynthesisResult(theta, new_sequence, t_used + t_cost, error)
            frontier.append((new_unitary, new_sequence, t_used + t_cost))
            if explored >= max_states:
                break
    return best


def synthesized_circuit(theta: float, qubit: int, num_qubits: int,
                        max_t_count: int = 8) -> QuantumCircuit:
    """A Clifford+T circuit approximating Rz(θ) on ``qubit``."""
    result = synthesize_rz(theta, max_t_count=max_t_count)
    circuit = QuantumCircuit(num_qubits, name=f"rz_synth({theta:.4f})")
    for gate_name in result.gate_sequence:
        getattr(circuit, gate_name)(qubit)
    return circuit
