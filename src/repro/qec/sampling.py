"""Batched, executor-routed Monte-Carlo sampling for QEC memory experiments.

The paper's QEC headline numbers (logical error rates behind Figs. 4–6 and
the decoder ablations) come from Monte-Carlo memory experiments.  Before this
module they were sampled one shot at a time in pure Python; now a whole
experiment is three NumPy operations plus one batched decode:

1. **Bernoulli matrix** — every elementary error mechanism is one column, so
   all shots draw as a single ``(shots, n_edges)`` comparison against the
   per-edge probabilities (recovered from the decoding-graph weights).
2. **Syndrome matmul** — a precomputed edge→detector incidence matrix turns
   the error matrix into all detector syndromes with one mod-2 matmul; the
   logical-mask vector yields every shot's true logical flip the same way.
   The default ``"packed"`` kernel (:mod:`repro.qec.bitops`) does this in
   bit-packed uint64 words via a precompiled gather-table plan — exact
   integer mod-2 math at any size; the legacy ``"dense"`` float32-GEMM
   kernel remains selectable (``kernel=`` / ``REPRO_QEC_KERNEL``) and both
   produce bitwise-identical failure counts.
3. **Batched decode** — the decoder's ``decode_batch``
   (:mod:`repro.qec.decoders.base`) deduplicates shots to unique syndromes
   and decodes each once.

Execution-layer contract (mirrors :mod:`repro.execution.sharding`):

* Shots are partitioned into fixed-size **blocks** of :data:`SHOT_BLOCK`;
  each block is seeded by its own ``SeedSequence.spawn`` child.  Blocks — not
  workers — are the determinism unit, so failure counts are **bitwise
  identical** for any ``max_workers`` and for the inline/thread/process
  paths (workers only change how blocks are *grouped*).
* Process shards are planned by the executor's
  :class:`~repro.execution.sharding.ShardPlanner` and run on the shared
  persistent pool; decoder diagnostic counters mutated in workers are
  shipped home as deltas and folded into the caller's decoder.
* Seeded experiments cache their ``(failures, total defects)`` in the
  executor's expectation cache (in-memory LRU, plus the on-disk L2 when
  ``REPRO_CACHE_DIR`` / ``cache_dir=`` is configured), keyed on the graph's
  content :meth:`~repro.qec.decoders.graph.DecodingGraph.fingerprint`, the
  decoder's cache token, shots, block size and seed — so a warm figure-suite
  re-run decodes nothing (provable via :func:`sampling_stats`).
"""

from __future__ import annotations

import math
import os
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..execution.broker import make_broker
from ..execution.sharding import run_sharded, split_evenly
from .bitops import Mod2GatherPlan, mod2_matvec_packed, pack_rows, popcount
from .decoders.base import (absorb_batch_decode_delta, batch_decode,
                            batch_decode_delta, batch_decode_packed,
                            batch_decode_stats,
                            decoder_cache_token,
                            apply_decoder_counter_delta,
                            decoder_counter_delta, decoder_counter_snapshot,
                            reset_batch_decode_stats)
from .decoders.graph import BOUNDARY, DecodingGraph

#: Shots per deterministic sampling block.  Each block draws from its own
#: ``SeedSequence.spawn`` child, so results never depend on how blocks are
#: distributed over workers.  Changing this constant changes which child
#: seeds a given shot — it is folded into the cache key for that reason.
SHOT_BLOCK = 256

SeedLike = Union[None, int, np.random.SeedSequence]


# ---------------------------------------------------------------------------
# Sampling kernel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SamplingArrays:
    """Precomputed per-graph arrays driving the vectorized sampler.

    ``incidence`` is the ``(n_edges, n_detectors)`` edge→detector matrix
    (columns follow :meth:`DecodingGraph.detector_order`), ``probabilities``
    the per-edge Bernoulli rates recovered from the edge weights, and
    ``logical_mask`` the 0/1 vector marking edges that cross the logical
    operator representative.
    """

    probabilities: np.ndarray
    incidence: np.ndarray
    logical_mask: np.ndarray
    # float32 copies drive the legacy dense kernel: integer matmuls bypass
    # BLAS, so its mod-2 reductions run over small-count float32 GEMMs
    # (exact only while detector degrees stay below float32's 2^24 integer
    # ceiling — the limit the packed kernel removes).
    incidence_f32: np.ndarray
    logical_mask_f32: np.ndarray
    # Bit-packed kernel state (repro.qec.bitops): the gather-table matmul
    # plan for the fixed incidence matrix and the packed logical mask.
    incidence_plan: Mod2GatherPlan
    logical_mask_words: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.incidence.shape[0]

    @property
    def num_detectors(self) -> int:
        return self.incidence.shape[1]


#: Per-graph memo for the precomputed arrays; weak keys so a dropped graph
#: frees its arrays, and the memo never mutates the graph object itself.
_arrays_cache: "weakref.WeakKeyDictionary[DecodingGraph, Tuple[tuple, SamplingArrays]]" = \
    weakref.WeakKeyDictionary()


def sampling_arrays(graph: DecodingGraph) -> SamplingArrays:
    """The (memoized) :class:`SamplingArrays` for ``graph``."""
    token = graph._shape_token()
    cached = _arrays_cache.get(graph)
    if cached is not None and cached[0] == token:
        return cached[1]
    detectors = graph.detector_order()
    index = {detector: i for i, detector in enumerate(detectors)}
    edges = graph.edges
    incidence = np.zeros((len(edges), len(detectors)), dtype=np.uint8)
    logical_mask = np.zeros(len(edges), dtype=np.uint8)
    probabilities = np.empty(len(edges), dtype=np.float64)
    for position, edge in enumerate(edges):
        probabilities[position] = 1.0 / (1.0 + math.exp(edge.weight))
        logical_mask[position] = 1 if edge.flips_logical else 0
        for node in (edge.node_a, edge.node_b):
            if node != BOUNDARY:
                incidence[position, index[node]] ^= 1
    arrays = SamplingArrays(probabilities=probabilities, incidence=incidence,
                            logical_mask=logical_mask,
                            incidence_f32=incidence.astype(np.float32),
                            logical_mask_f32=logical_mask.astype(np.float32),
                            incidence_plan=Mod2GatherPlan(incidence),
                            logical_mask_words=pack_rows(logical_mask))
    _arrays_cache[graph] = (token, arrays)
    return arrays


def sample_errors(arrays: SamplingArrays, shots: int,
                  rng: np.random.Generator) -> np.ndarray:
    """All shots' elementary-error indicators as one Bernoulli matrix.

    Row ``i`` of the returned ``(shots, n_edges)`` uint8 matrix is bitwise
    identical to what ``i`` sequential ``rng.random(n_edges)`` draws against
    the same probabilities would produce — the legacy per-shot sampler and
    this kernel consume the generator identically.
    """
    draws = rng.random((int(shots), arrays.num_edges))
    return (draws < arrays.probabilities).view(np.uint8)


def syndromes_of_errors(arrays: SamplingArrays,
                        errors: np.ndarray) -> np.ndarray:
    """All shots' detector syndromes via one mod-2 matmul.

    The count matmul runs in float32 (BLAS; exact — per-detector counts are
    bounded by the detector degree) and the ``& 1`` recovers the XOR of
    incident error edges per detector.
    """
    counts = errors.astype(np.float32) @ arrays.incidence_f32
    return counts.astype(np.uint8) & 1


def logical_flips_of_errors(arrays: SamplingArrays,
                            errors: np.ndarray) -> np.ndarray:
    """Each shot's true logical-flip parity (uint8 vector of 0/1)."""
    counts = errors.astype(np.float32) @ arrays.logical_mask_f32
    return counts.astype(np.uint8) & 1


def syndromes_and_flips(arrays: SamplingArrays, errors: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """``(syndromes, logical flips)`` sharing one float32 error conversion."""
    errors_f32 = errors.astype(np.float32)
    syndromes = (errors_f32 @ arrays.incidence_f32).astype(np.uint8) & 1
    flips = (errors_f32 @ arrays.logical_mask_f32).astype(np.uint8) & 1
    return syndromes, flips


def packed_syndromes_and_flips(arrays: SamplingArrays, errors: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """``(packed syndrome words, logical flips)`` via the bit-packed kernel.

    The error matrix is packed once
    (:func:`repro.qec.bitops.pack_rows`); syndromes come from the
    precompiled incidence :class:`~repro.qec.bitops.Mod2GatherPlan` as
    ``(shots, packed_words(n_detectors))`` uint64 words, and the logical
    flips from one packed mod-2 matvec against the logical mask.  Exact
    mod-2 arithmetic at any size — no float32 ceiling — and bit-for-bit
    equal to :func:`syndromes_and_flips` after
    :func:`~repro.qec.bitops.unpack_rows`.
    """
    error_words = pack_rows(errors, arrays.num_edges)
    syndrome_words = arrays.incidence_plan.matmul_packed(error_words)
    flips = mod2_matvec_packed(error_words, arrays.logical_mask_words)
    return syndrome_words, flips


#: Environment knob selecting the default syndrome kernel
#: (``"packed"`` | ``"dense"``); per-call ``kernel=`` overrides win.
_KERNEL_ENV = "REPRO_QEC_KERNEL"
_KERNELS = ("packed", "dense")


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The effective syndrome kernel: argument > ``REPRO_QEC_KERNEL`` > packed.

    Both kernels produce bitwise-identical failure counts (the property
    suite holds them to it), so the choice never enters a cache key — a
    result cached under one kernel is valid for the other.
    """
    choice = kernel or os.environ.get(_KERNEL_ENV) or "packed"
    if choice not in _KERNELS:
        raise ValueError(
            f"unknown QEC kernel {choice!r}; expected one of {_KERNELS}")
    return choice


# ---------------------------------------------------------------------------
# Statistics (what "a warm cache decodes nothing" is proven with)
# ---------------------------------------------------------------------------


@dataclass
class QECSamplingStats:
    """Process-wide counters for the batched QEC sampling pipeline.

    ``experiments``/``cached_experiments`` count :func:`run_memory_sampling`
    calls (and how many were served entirely from the expectation cache
    without sampling or decoding); ``shots_sampled`` counts freshly sampled
    shots; ``process_shards`` counts shard payloads submitted to the worker
    pool.  ``syndromes_decoded``/``shots_decoded``/``batch_calls`` mirror
    :func:`repro.qec.decoders.batch_decode_stats` — unique syndromes that
    actually reached a decoder versus shots served by dedup.
    """

    experiments: int = 0
    cached_experiments: int = 0
    shots_sampled: int = 0
    process_shards: int = 0
    batch_calls: int = 0
    shots_decoded: int = 0
    syndromes_decoded: int = 0


_counters_lock = threading.Lock()
_experiments = 0
_cached_experiments = 0
_shots_sampled = 0
_process_shards = 0


def sampling_stats() -> QECSamplingStats:
    """A snapshot of the process-wide QEC sampling counters."""
    decode = batch_decode_stats()
    with _counters_lock:
        return QECSamplingStats(
            experiments=_experiments,
            cached_experiments=_cached_experiments,
            shots_sampled=_shots_sampled,
            process_shards=_process_shards,
            batch_calls=decode.batch_calls,
            shots_decoded=decode.shots_decoded,
            syndromes_decoded=decode.syndromes_decoded)


def reset_sampling_stats() -> None:
    """Zero the QEC sampling counters (tests and benchmarks)."""
    global _experiments, _cached_experiments, _shots_sampled, _process_shards
    with _counters_lock:
        _experiments = 0
        _cached_experiments = 0
        _shots_sampled = 0
        _process_shards = 0
    reset_batch_decode_stats()


def _note_experiment(shots: int, cached: bool, process_shards: int) -> None:
    global _experiments, _cached_experiments, _shots_sampled, _process_shards
    with _counters_lock:
        _experiments += 1
        if cached:
            _cached_experiments += 1
        else:
            _shots_sampled += int(shots)
        _process_shards += int(process_shards)


# ---------------------------------------------------------------------------
# Binomial uncertainty helpers (shared by both result dataclasses)
# ---------------------------------------------------------------------------


def binomial_standard_error(failures: int, shots: int) -> float:
    """Plain binomial standard error of an empirical failure rate."""
    if shots <= 0:
        return 0.0
    rate = failures / shots
    return math.sqrt(max(rate * (1.0 - rate), 0.0) / shots)


def wilson_interval(failures: int, shots: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Unlike the normal approximation it stays inside ``[0, 1]`` and remains
    honest at the extreme rates QEC sweeps produce (zero observed failures
    at low ``p``, near-certain failure above threshold).
    """
    if shots <= 0:
        return (0.0, 1.0)
    rate = failures / shots
    denominator = 1.0 + z * z / shots
    center = (rate + z * z / (2.0 * shots)) / denominator
    half = (z / denominator) * math.sqrt(
        rate * (1.0 - rate) / shots + z * z / (4.0 * shots * shots))
    return (max(0.0, center - half), min(1.0, center + half))


# ---------------------------------------------------------------------------
# Seeds and blocks
# ---------------------------------------------------------------------------


def as_seed_sequence(seed: SeedLike
                     ) -> Tuple[np.random.SeedSequence, Optional[tuple]]:
    """``(SeedSequence, cache-key component)`` for a user-facing seed.

    ``None`` yields fresh OS entropy and no key (the run is not cacheable);
    an integer and a :class:`numpy.random.SeedSequence` (e.g. a sweep's
    spawned child) both yield stable, encodable key components.

    A provided ``SeedSequence`` is **rebuilt** from its ``(entropy,
    spawn_key)`` identity rather than used directly: ``spawn()`` advances a
    stateful child counter on the original object, so spawning from the
    caller's instance would make repeat runs draw different blocks (and
    diverge from the cache key, which only encodes the identity).
    """
    if seed is None:
        return np.random.SeedSequence(), None
    if isinstance(seed, np.random.SeedSequence):
        key = ("seedseq", str(seed.entropy),
               tuple(int(k) for k in seed.spawn_key))
        fresh = np.random.SeedSequence(entropy=seed.entropy,
                                       spawn_key=seed.spawn_key)
        return fresh, key
    return np.random.SeedSequence(int(seed)), ("seed", int(seed))


def _shot_blocks(seed_sequence: np.random.SeedSequence, shots: int
                 ) -> List[Tuple[np.random.SeedSequence, int]]:
    """Deterministic ``(child seed, block size)`` pairs covering ``shots``."""
    num_blocks = max(1, -(-int(shots) // SHOT_BLOCK))
    children = seed_sequence.spawn(num_blocks)
    sizes = [SHOT_BLOCK] * (num_blocks - 1)
    sizes.append(int(shots) - SHOT_BLOCK * (num_blocks - 1))
    return list(zip(children, sizes))


# ---------------------------------------------------------------------------
# Shard payload (module-level: pickles by reference into worker processes)
# ---------------------------------------------------------------------------


def _memory_sampling_shard(graph: DecodingGraph, decoder,
                           blocks: Sequence[Tuple[np.random.SeedSequence,
                                                  int]],
                           kernel: str = "packed",
                           streaming: bool = False) -> Dict:
    """Sample + decode one worker's slice of blocks.

    ``kernel`` picks the syndrome-extraction math: ``"packed"`` (bit-packed
    uint64 words, :mod:`repro.qec.bitops`) or ``"dense"`` (the legacy
    float32 GEMM).  Both sample the identical Bernoulli stream and produce
    bitwise-identical failure counts.  ``streaming`` (packed kernel only)
    decodes and folds each :data:`SHOT_BLOCK`-shot block as it is sampled —
    constant memory in the shot count; neither the ``(shots, n_edges)``
    error matrix nor any per-shard syndrome accumulation is ever
    materialized.  Decoding is deterministic, so folding per block instead
    of deduplicating across the shard cannot change any verdict.

    Returns plain ints plus the decode/decoder counter deltas accumulated
    inside this call, so the parent process can fold worker-side accounting
    back into its own counters (process mode only; inline/thread mode
    mutates the caller's objects directly and ignores the deltas).
    """
    arrays = sampling_arrays(graph)
    detectors = graph.detector_order()
    decode_before = batch_decode_stats()
    counters_before = decoder_counter_snapshot(decoder)

    shots = 0
    failures = 0
    total_defects = 0
    if kernel == "dense":
        syndrome_rows: List[np.ndarray] = []
        flip_rows: List[np.ndarray] = []
        for seed_sequence, block_shots in blocks:
            rng = np.random.default_rng(seed_sequence)
            errors = sample_errors(arrays, block_shots, rng)
            block_syndromes, block_flips = syndromes_and_flips(arrays, errors)
            syndrome_rows.append(block_syndromes)
            flip_rows.append(block_flips)
        syndromes = np.concatenate(syndrome_rows, axis=0)
        error_flips = np.concatenate(flip_rows, axis=0).astype(bool)
        decoder_flips = batch_decode(decoder, syndromes, detectors)
        shots = int(syndromes.shape[0])
        failures = int(np.sum(decoder_flips != error_flips))
        total_defects = int(syndromes.sum(dtype=np.int64))
    elif streaming:
        # sample → pack → decode → fold, one block at a time.
        for seed_sequence, block_shots in blocks:
            rng = np.random.default_rng(seed_sequence)
            errors = sample_errors(arrays, block_shots, rng)
            syndrome_words, block_flips = \
                packed_syndromes_and_flips(arrays, errors)
            decoder_flips = batch_decode_packed(decoder, syndrome_words,
                                                detectors)
            shots += int(block_shots)
            failures += int(np.sum(decoder_flips
                                   != block_flips.astype(bool)))
            total_defects += int(popcount(syndrome_words))
    else:
        # Packed batch path: only the 8×-smaller packed syndrome words are
        # accumulated across blocks (the error matrix stays per-block), and
        # dedup spans the whole shard for maximum decode sharing.
        word_rows: List[np.ndarray] = []
        flip_blocks: List[np.ndarray] = []
        for seed_sequence, block_shots in blocks:
            rng = np.random.default_rng(seed_sequence)
            errors = sample_errors(arrays, block_shots, rng)
            syndrome_words, block_flips = \
                packed_syndromes_and_flips(arrays, errors)
            word_rows.append(syndrome_words)
            flip_blocks.append(block_flips)
        all_words = np.concatenate(word_rows, axis=0)
        error_flips = np.concatenate(flip_blocks, axis=0).astype(bool)
        decoder_flips = batch_decode_packed(decoder, all_words, detectors)
        shots = int(all_words.shape[0])
        failures = int(np.sum(decoder_flips != error_flips))
        total_defects = int(popcount(all_words))

    return {
        "shots": shots,
        "failures": failures,
        "total_defects": total_defects,
        "decode_delta": batch_decode_delta(decode_before,
                                           batch_decode_stats()),
        "decoder_delta": decoder_counter_delta(counters_before,
                                               decoder_counter_snapshot(decoder)),
    }


# ---------------------------------------------------------------------------
# The executor-routed experiment entry point
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SamplingRun:
    """Raw outcome of one batched memory-experiment sampling run.

    ``fault_report`` is the shard supervisor's
    :class:`~repro.execution.sharding.FaultReport` when process dispatch
    had to recover from a worker crash/timeout (None on a healthy run);
    recovery never changes the counts — retried shards are re-seeded
    identically.
    """

    shots: int
    failures: int
    total_defects: int
    from_cache: bool
    fault_report: Optional[object] = None

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def average_defects(self) -> float:
        return self.total_defects / self.shots if self.shots else 0.0


def _cache_keys(graph: DecodingGraph, decoder_token: tuple, shots: int,
                seed_key: tuple) -> Tuple[tuple, tuple]:
    base = ("qec-memory", graph.fingerprint(), decoder_token,
            int(shots), int(SHOT_BLOCK), seed_key)
    return base + ("failures",), base + ("defects",)


def _chunk_cache_keys(graph: DecodingGraph, decoder_token: tuple,
                      shots: int, seed_key: tuple, start_block: int,
                      num_blocks: int) -> Tuple[tuple, tuple]:
    """Checkpoint keys for one streamed chunk of sampling blocks.

    Keyed by chunk position *and* width on top of the full-run identity,
    so a resumed :func:`stream_memory_sampling` with the same
    ``chunk_blocks`` re-decodes nothing already flushed, while a different
    chunking can never alias a partial count onto the wrong shots.
    """
    base = ("qec-memory-chunk", graph.fingerprint(), decoder_token,
            int(shots), int(SHOT_BLOCK), seed_key, int(start_block),
            int(num_blocks))
    return base + ("failures",), base + ("defects",)


def run_memory_sampling(graph: DecodingGraph, decoder, shots: int, *,
                        seed: SeedLike = None,
                        executor=None,
                        parallel: Optional[str] = None,
                        max_workers: Optional[int] = None,
                        use_cache: Optional[bool] = None,
                        kernel: Optional[str] = None,
                        streaming: bool = False,
                        policy=None) -> SamplingRun:
    """Run a batched Monte-Carlo memory experiment over ``graph``.

    ``decoder`` needs only the graph-protocol ``decode(defects)``; in-repo
    decoders additionally implement ``decode_batch`` (via
    :class:`~repro.qec.decoders.base.SyndromeBatchDecoder`) and are decoded
    through it, while plain decoders get the generic dedup shell
    (:func:`repro.qec.decoders.base.batch_decode`).
    ``executor`` supplies the shard planner, the expectation cache and the
    stats block (default: the process-wide
    :func:`repro.execution.executor.default_executor`); ``policy`` (an
    :class:`~repro.execution.policy.ExecutionPolicy`) or the legacy
    ``parallel`` / ``max_workers`` keywords override its fan-out policy —
    including the shard broker — for this call.

    ``kernel`` selects the syndrome math (:func:`resolve_kernel`:
    ``"packed"`` bit-packed words by default, ``"dense"`` the legacy
    float32 GEMM); ``streaming=True`` decodes and folds each
    :data:`SHOT_BLOCK`-shot block as it is sampled, keeping memory
    constant in the shot count (d≥15 surface-code runs fit where the
    dense path cannot — see ``benchmarks/test_bitpacked_kernels.py``).

    Failure counts are bitwise identical for any worker count, any of the
    inline/thread/process paths, either kernel, and streaming on or off:
    all variants consume the identical per-block Bernoulli draw stream and
    decoding is deterministic.  Seeded runs therefore share one cache
    entry — the key encodes none of those execution choices — so
    repeating a seeded experiment decodes nothing.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    kernel = resolve_kernel(kernel)
    if streaming and kernel != "packed":
        raise ValueError("streaming mode requires the packed kernel")
    from ..execution.executor import default_executor
    if executor is None:
        executor = default_executor()
    if use_cache is None:
        use_cache = executor.use_cache

    seed_sequence, seed_key = as_seed_sequence(seed)
    decoder_token = decoder_cache_token(decoder)
    # Cacheable only when the run is seeded AND the decoder's behaviour is
    # fully pinned down by a content token (None = unknown configuration).
    cacheable = (use_cache and seed_key is not None
                 and decoder_token is not None)
    if cacheable:
        failures_key, defects_key = _cache_keys(graph, decoder_token, shots,
                                                seed_key)
        failures_hit = executor.cache.get(failures_key)
        defects_hit = executor.cache.get(defects_key)
        if failures_hit is not None and defects_hit is not None:
            _note_experiment(shots, cached=True, process_shards=0)
            return SamplingRun(shots=int(shots),
                               failures=int(round(failures_hit)),
                               total_defects=int(round(defects_hit)),
                               from_cache=True)

    blocks = _shot_blocks(seed_sequence, shots)
    effective = executor._resolve_policy(policy, parallel=parallel,
                                         max_workers=max_workers)
    plan = executor.planner.plan(num_items=len(blocks), hints=("process",),
                                 parallel=effective.parallel,
                                 max_workers=effective.max_workers)
    if plan.is_parallel:
        chunks = split_evenly(blocks, plan.workers)
    else:
        chunks = [blocks]
    payloads = [(graph, decoder, chunk, kernel, streaming)
                for chunk in chunks]
    # run_sharded executes a single payload inline even under a process
    # plan, in which case the caller's objects were mutated directly and
    # the returned deltas must NOT be applied a second time.
    crosses_processes = (plan.mode == "process" and plan.is_parallel
                         and len(payloads) > 1)

    fault_reports: list = []

    def _on_fault(report) -> None:
        fault_reports.append(report)
        note = getattr(executor, "note_fault_report", None)
        if note is not None:
            note(report)

    broker = None
    if plan.mode == "process":
        broker = make_broker(effective.broker, plan.workers)
    shard_results = run_sharded(plan, _memory_sampling_shard, payloads,
                                policy=effective.retry, broker=broker,
                                on_fault=_on_fault)

    failures = sum(result["failures"] for result in shard_results)
    total_defects = sum(result["total_defects"] for result in shard_results)
    if crosses_processes:
        # Shards the supervisor degraded to inline execution mutated this
        # process's counters directly — folding their deltas again would
        # double-count them.
        inline_shards = {index for report in fault_reports
                         for index in report.inline_indices}
        for index, result in enumerate(shard_results):
            if index in inline_shards:
                continue
            absorb_batch_decode_delta(result["decode_delta"])
            apply_decoder_counter_delta(decoder, result["decoder_delta"])
        executor.note_process_shards(len(payloads))
    _note_experiment(shots, cached=False,
                     process_shards=len(payloads) if crosses_processes else 0)

    if cacheable:
        executor.cache.put(failures_key, float(failures))
        executor.cache.put(defects_key, float(total_defects))
    return SamplingRun(shots=int(shots), failures=int(failures),
                       total_defects=int(total_defects), from_cache=False,
                       fault_report=fault_reports[0] if fault_reports
                       else None)


def stream_memory_sampling(graph: DecodingGraph, decoder, shots: int, *,
                           seed: SeedLike = None,
                           executor=None,
                           chunk_blocks: int = 4,
                           use_cache: Optional[bool] = None,
                           kernel: Optional[str] = None):
    """Generator variant of :func:`run_memory_sampling` with partial results.

    Yields **cumulative** :class:`SamplingRun` snapshots after every
    ``chunk_blocks`` sampling blocks (each :data:`SHOT_BLOCK` shots); the
    final yield covers all ``shots`` and its failure count is **bitwise
    identical** to ``run_memory_sampling(graph, decoder, shots, seed=seed)``
    — both iterate the same per-block ``SeedSequence.spawn`` children, a
    chunk boundary can never move a draw.  This is what the service layer
    streams running Wilson intervals from
    (:func:`wilson_interval` applied to each snapshot).

    Seeded runs share the executor expectation-cache entry with
    :func:`run_memory_sampling`: a warm cache yields the final snapshot
    immediately (one yield, ``from_cache=True``) and decodes nothing, and a
    cold streamed run writes the entry the batched entry point will hit.
    Sampling happens inline (no process shards) — streaming is about
    latency, not throughput.

    Seeded streamed runs additionally **checkpoint each chunk** through the
    same cache (and its persistent disk tier when configured): after every
    ``chunk_blocks`` chunk, its failure/defect counts are flushed under a
    chunk-position key.  A resumed run — a retried service job, a restarted
    server, a new process over the same cache directory — replays cached
    chunks without sampling or decoding them and only computes from where
    the previous attempt died.  Chunk checkpoints are exact partial sums of
    the same per-block stream, so a resumed run's snapshots and final
    counts stay bitwise identical to an uninterrupted one.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    if chunk_blocks < 1:
        raise ValueError("chunk_blocks must be a positive integer")
    kernel = resolve_kernel(kernel)
    from ..execution.executor import default_executor
    if executor is None:
        executor = default_executor()
    if use_cache is None:
        use_cache = executor.use_cache

    seed_sequence, seed_key = as_seed_sequence(seed)
    decoder_token = decoder_cache_token(decoder)
    cacheable = (use_cache and seed_key is not None
                 and decoder_token is not None)
    if cacheable:
        failures_key, defects_key = _cache_keys(graph, decoder_token, shots,
                                                seed_key)
        failures_hit = executor.cache.get(failures_key)
        defects_hit = executor.cache.get(defects_key)
        if failures_hit is not None and defects_hit is not None:
            _note_experiment(shots, cached=True, process_shards=0)
            yield SamplingRun(shots=int(shots),
                              failures=int(round(failures_hit)),
                              total_defects=int(round(defects_hit)),
                              from_cache=True)
            return

    blocks = _shot_blocks(seed_sequence, shots)
    done_shots = 0
    failures = 0
    total_defects = 0
    for start in range(0, len(blocks), int(chunk_blocks)):
        chunk = blocks[start:start + int(chunk_blocks)]
        chunk_keys = None
        if cacheable:
            chunk_keys = _chunk_cache_keys(graph, decoder_token, shots,
                                           seed_key, start, len(chunk))
            chunk_failures = executor.cache.get(chunk_keys[0])
            chunk_defects = executor.cache.get(chunk_keys[1])
            if chunk_failures is not None and chunk_defects is not None:
                # Checkpointed by a previous attempt: fold the flushed
                # counts, decode nothing.
                done_shots += sum(block_shots for _, block_shots in chunk)
                failures += int(round(chunk_failures))
                total_defects += int(round(chunk_defects))
                yield SamplingRun(shots=done_shots, failures=failures,
                                  total_defects=total_defects,
                                  from_cache=False)
                continue
        partial = _memory_sampling_shard(graph, decoder, chunk, kernel)
        done_shots += partial["shots"]
        failures += partial["failures"]
        total_defects += partial["total_defects"]
        if chunk_keys is not None:
            executor.cache.put(chunk_keys[0], float(partial["failures"]))
            executor.cache.put(chunk_keys[1],
                               float(partial["total_defects"]))
        yield SamplingRun(shots=done_shots, failures=failures,
                          total_defects=total_defects, from_cache=False)
    _note_experiment(shots, cached=False, process_shards=0)
    if cacheable:
        executor.cache.put(failures_key, float(failures))
        executor.cache.put(defects_key, float(total_defects))


def run_memory_sampling_reference(graph: DecodingGraph, decoder,
                                  shots: int, *,
                                  seed: SeedLike = None) -> SamplingRun:
    """Per-shot reference implementation of :func:`run_memory_sampling`.

    Draws the *identical* per-block error samples (same ``SeedSequence``
    children, same Bernoulli matrix) but decodes every shot individually
    through the decoder's ``decode`` — no deduplication, no batching, no
    caching.  Failure counts are therefore bitwise identical to the batched
    path; the throughput benchmark gates the batched speedup against this.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    seed_sequence, _ = as_seed_sequence(seed)
    arrays = sampling_arrays(graph)
    detectors = graph.detector_order()
    failures = 0
    total_defects = 0
    for seed_child, block_shots in _shot_blocks(seed_sequence, shots):
        rng = np.random.default_rng(seed_child)
        errors = sample_errors(arrays, block_shots, rng)
        syndromes, error_flips = syndromes_and_flips(arrays, errors)
        for row in range(block_shots):
            defects = [detectors[column]
                       for column in np.flatnonzero(syndromes[row])]
            outcome = decoder.decode(defects)
            failures += int(bool(outcome.flips_logical)
                            != bool(error_flips[row]))
            total_defects += len(defects)
    return SamplingRun(shots=int(shots), failures=failures,
                       total_defects=total_defects, from_cache=False)
