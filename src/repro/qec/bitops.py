"""Bit-packed mod-2 (GF(2)) kernels — the QEC-facing public module.

The implementation lives in :mod:`repro._bitops`, a dependency-free leaf
module: :mod:`repro.simulators.stabilizer` packs its tableau with the same
kernels, and importing them through the (heavyweight) ``repro.qec``
package from there would close an import cycle
(``qec → sampling → execution → simulators → qec``).  QEC code and tests
should import from here; see :mod:`repro._bitops` for the kernel
documentation (word layout, popcount strategy, the gather-table matmul).
"""

from __future__ import annotations

from .._bitops import (WORD_BITS, Mod2GatherPlan, mod2_matmul_packed,
                       mod2_matvec_packed, pack_rows, packed_words, parity,
                       popcount, popcount_impl, popcount_words, row_parity,
                       unpack_rows)

__all__ = [
    "WORD_BITS",
    "packed_words",
    "pack_rows",
    "unpack_rows",
    "popcount_words",
    "popcount",
    "popcount_impl",
    "parity",
    "row_parity",
    "mod2_matmul_packed",
    "mod2_matvec_packed",
    "Mod2GatherPlan",
]
