"""Phenomenological surface-code memory experiments.

This is the Monte-Carlo counterpart of the analytic logical-error-rate model
in :mod:`repro.qec.surface_code` (which supplies the per-operation error rates
the paper's pQEC regime assumes).  A memory experiment repeatedly

1. samples independent data-qubit errors per round and measurement errors per
   stabilizer readout on the space-time decoding graph,
2. extracts the detector syndrome (XOR of consecutive rounds),
3. runs a decoder (:mod:`repro.qec.decoders`), and
4. checks whether the residual error commutes with the logical operator.

Since PR 5 step 1–2 are the vectorized kernel of :mod:`repro.qec.sampling`
(one Bernoulli matrix, one mod-2 incidence matmul) and step 3 is the
decoder's batched ``decode_batch`` over *unique* syndromes, with the whole
experiment routed through the execution layer's shard planner and
expectation cache.  Because errors, syndromes and corrections are all
expressed on the same :class:`~repro.qec.decoders.graph.DecodingGraph`, any
decoder implementing the batch protocol can be plugged in and compared —
which is what the decoder-ablation benchmark does.  The one-shot-at-a-time
path survives as :meth:`SurfaceCodeMemory.run_trial` (legacy RNG) and
:meth:`SurfaceCodeMemory.run_reference` (same seeds and samples as
:meth:`SurfaceCodeMemory.run`, per-shot decoding — bitwise-identical
failure counts, used by the equivalence tests and the throughput gate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .decoders.graph import (BOUNDARY, DecodingEdge, DecodingGraph,
                             repetition_code_graph,
                             rotated_surface_code_graph)
from .decoders.mwpm import MWPMDecoder
from .rare_event import RareEventResult, run_rare_event_sampling
from .sampling import (SeedLike, binomial_standard_error,
                       run_memory_sampling, run_memory_sampling_reference,
                       wilson_interval)


@dataclass(frozen=True)
class MemoryTrialResult:
    """One Monte-Carlo shot of the memory experiment."""

    num_error_edges: int
    num_defects: int
    decoder_flips_logical: bool
    error_flips_logical: bool

    @property
    def logical_failure(self) -> bool:
        return self.decoder_flips_logical != self.error_flips_logical


@dataclass
class MemoryExperimentOutcome:
    """Aggregate statistics of a memory experiment."""

    code: str
    distance: int
    rounds: int
    physical_error_rate: float
    shots: int
    failures: int
    decoder_name: str
    average_defects: float

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def logical_error_per_round(self) -> float:
        """Per-round failure rate, assuming independent rounds."""
        if self.shots == 0:
            return 0.0
        survival = 1.0 - self.logical_error_rate
        survival = min(max(survival, 1e-12), 1.0)
        return 1.0 - survival ** (1.0 / max(self.rounds, 1))

    @property
    def standard_error(self) -> float:
        """Binomial standard error of :attr:`logical_error_rate`."""
        return binomial_standard_error(self.failures, self.shots)

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score confidence interval for the logical error rate."""
        return wilson_interval(self.failures, self.shots, z=z)


@dataclass
class RareEventMemoryOutcome(MemoryExperimentOutcome):
    """A memory-experiment outcome backed by a rare-event estimator.

    Drop-in for :class:`MemoryExperimentOutcome` — figure code reading
    ``logical_error_rate`` / ``standard_error`` / ``wilson_interval`` gets
    the variance-reduced estimate transparently.  ``failures`` counts the
    *raw* decoder disagreements observed under the biased sampling
    distribution (diagnostics only: under a tilt or a stratum conditioning
    ``failures / shots`` is not the logical error rate — that is exactly
    the point), and :attr:`rare` carries the full estimator output,
    including the per-stratum breakdown.
    """

    rare: RareEventResult = None  # set by SurfaceCodeMemory.run

    @property
    def logical_error_rate(self) -> float:
        return self.rare.estimate

    @property
    def standard_error(self) -> float:
        return self.rare.standard_error

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        return self.rare.wilson_interval(z=z)


#: ``method=`` spellings accepted by the experiment drivers.  The public
#: name is ``"rare-event"`` (defaults to the stratified estimator); the
#: explicit estimator names are accepted for ablations.
_RARE_METHODS = {"rare-event": "stratified", "stratified": "stratified",
                 "importance": "importance"}


class SurfaceCodeMemory:
    """Monte-Carlo memory experiment driver over a decoding graph.

    :meth:`run` executes the batched, executor-routed pipeline and is
    deterministic per construction ``seed`` — identical failure counts for
    any worker count, with seeded runs cached in the execution layer.
    :meth:`run_reference` replays the *same* samples through per-shot
    decoding, and :meth:`run_trial` keeps the historical one-off sampler.
    """

    def __init__(self, graph: DecodingGraph,
                 decoder_factory: Optional[Callable[[DecodingGraph], object]] = None,
                 seed: SeedLike = None):
        self._graph = graph
        factory = decoder_factory if decoder_factory is not None else MWPMDecoder
        self._decoder = factory(graph)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        # Pre-compute the sampling probability of every elementary mechanism.
        self._edges = graph.edges
        self._probabilities = np.array(
            [1.0 / (1.0 + math.exp(edge.weight)) for edge in self._edges])

    @property
    def decoder(self):
        return self._decoder

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    # -- sampling (legacy per-shot path) ------------------------------------------
    def sample_error(self) -> List[DecodingEdge]:
        """Draw one independent-error sample over all elementary mechanisms."""
        draws = self._rng.random(len(self._edges))
        return [edge for edge, draw, probability
                in zip(self._edges, draws, self._probabilities)
                if draw < probability]

    @staticmethod
    def syndrome_of(error_edges: Sequence[DecodingEdge]) -> List:
        """Detectors flipped an odd number of times by the error edges."""
        counts: Dict[object, int] = {}
        for edge in error_edges:
            for node in (edge.node_a, edge.node_b):
                if node == BOUNDARY:
                    continue
                counts[node] = counts.get(node, 0) + 1
        return [node for node, count in counts.items() if count % 2]

    # -- running -----------------------------------------------------------------
    def run_trial(self) -> MemoryTrialResult:
        """One shot through the legacy sampler (consumes this RNG)."""
        error_edges = self.sample_error()
        defects = self.syndrome_of(error_edges)
        outcome = self._decoder.decode(defects)
        error_flips = self._graph.correction_flips_logical(error_edges)
        return MemoryTrialResult(
            num_error_edges=len(error_edges),
            num_defects=len(defects),
            decoder_flips_logical=outcome.flips_logical,
            error_flips_logical=error_flips)

    def _outcome(self, shots: int, failures: int,
                 total_defects: int) -> MemoryExperimentOutcome:
        return MemoryExperimentOutcome(
            code=self._graph.name, distance=self._graph.distance,
            rounds=self._graph.rounds,
            physical_error_rate=float(self._probabilities.max(initial=0.0)),
            shots=shots, failures=failures,
            decoder_name=getattr(self._decoder, "name",
                                 type(self._decoder).__name__),
            average_defects=total_defects / shots if shots else 0.0)

    def run(self, shots: int = 200, *, executor=None,
            parallel: Optional[str] = None,
            max_workers: Optional[int] = None,
            use_cache: Optional[bool] = None,
            method: str = "direct",
            **rare_event_options) -> MemoryExperimentOutcome:
        """Run ``shots`` through the batched, executor-routed pipeline.

        ``method="direct"`` (default) is plain Monte-Carlo over the
        physical error rates.  ``method="rare-event"`` (or explicitly
        ``"stratified"`` / ``"importance"``) routes the same decode budget
        through :func:`~repro.qec.rare_event.run_rare_event_sampling` and
        returns a :class:`RareEventMemoryOutcome` whose
        ``logical_error_rate`` is the variance-reduced estimate — the way
        low-``p`` figure points are produced.  Extra keyword arguments
        (``tilt``, ``min_fault_weight``, ``max_weight``, ``pilot_shots``,
        ``tail_rtol``) pass through to the estimator.
        """
        if shots < 1:
            raise ValueError("shots must be positive")
        if method == "direct":
            if rare_event_options:
                raise TypeError(
                    f"method='direct' takes no estimator options, got "
                    f"{sorted(rare_event_options)}")
            sampled = run_memory_sampling(self._graph, self._decoder, shots,
                                          seed=self._seed, executor=executor,
                                          parallel=parallel,
                                          max_workers=max_workers,
                                          use_cache=use_cache)
            return self._outcome(shots, sampled.failures,
                                 sampled.total_defects)
        if method not in _RARE_METHODS:
            raise ValueError(
                f"unknown method {method!r} (expected 'direct', "
                f"'rare-event', 'stratified' or 'importance')")
        rare = run_rare_event_sampling(
            self._graph, self._decoder, shots,
            method=_RARE_METHODS[method], seed=self._seed,
            executor=executor, parallel=parallel, max_workers=max_workers,
            use_cache=use_cache, **rare_event_options)
        plain = self._outcome(rare.shots, rare.raw_failures,
                              rare.total_defects)
        return RareEventMemoryOutcome(
            code=plain.code, distance=plain.distance, rounds=plain.rounds,
            physical_error_rate=plain.physical_error_rate,
            shots=plain.shots, failures=plain.failures,
            decoder_name=plain.decoder_name,
            average_defects=plain.average_defects, rare=rare)

    def run_reference(self, shots: int = 200) -> MemoryExperimentOutcome:
        """Per-shot decoding of the identical samples :meth:`run` draws.

        Bitwise-identical failure counts to :meth:`run`; linear decoder
        cost.  The throughput benchmark gates the batched speedup against
        this path.
        """
        if shots < 1:
            raise ValueError("shots must be positive")
        sampled = run_memory_sampling_reference(self._graph, self._decoder,
                                                shots, seed=self._seed)
        return self._outcome(shots, sampled.failures, sampled.total_defects)


# ---------------------------------------------------------------------------
# Convenience drivers
# ---------------------------------------------------------------------------

def surface_code_memory_experiment(distance: int, physical_error_rate: float,
                                   rounds: Optional[int] = None,
                                   shots: int = 200,
                                   decoder_factory: Optional[Callable] = None,
                                   seed: SeedLike = 7,
                                   executor=None,
                                   parallel: Optional[str] = None,
                                   max_workers: Optional[int] = None,
                                   use_cache: Optional[bool] = None,
                                   method: str = "direct",
                                   **rare_event_options
                                   ) -> MemoryExperimentOutcome:
    """Rotated-surface-code memory experiment with ``rounds`` defaulting to d.

    ``method="rare-event"`` swaps in the variance-reduced estimator for
    low-``p`` points (see :meth:`SurfaceCodeMemory.run`).
    """
    rounds = rounds if rounds is not None else distance
    graph = rotated_surface_code_graph(distance, rounds, physical_error_rate)
    memory = SurfaceCodeMemory(graph, decoder_factory, seed=seed)
    return memory.run(shots, executor=executor, parallel=parallel,
                      max_workers=max_workers, use_cache=use_cache,
                      method=method, **rare_event_options)


def repetition_code_memory_experiment(distance: int, physical_error_rate: float,
                                      rounds: Optional[int] = None,
                                      shots: int = 400,
                                      decoder_factory: Optional[Callable] = None,
                                      seed: SeedLike = 7,
                                      executor=None,
                                      parallel: Optional[str] = None,
                                      max_workers: Optional[int] = None,
                                      use_cache: Optional[bool] = None,
                                      method: str = "direct",
                                      **rare_event_options
                                      ) -> MemoryExperimentOutcome:
    """Repetition-code memory experiment with ``rounds`` defaulting to d."""
    rounds = rounds if rounds is not None else distance
    graph = repetition_code_graph(distance, rounds, physical_error_rate)
    memory = SurfaceCodeMemory(graph, decoder_factory, seed=seed)
    return memory.run(shots, executor=executor, parallel=parallel,
                      max_workers=max_workers, use_cache=use_cache,
                      method=method, **rare_event_options)


def decoder_comparison(distance: int, physical_error_rate: float,
                       decoder_factories: Dict[str, Callable],
                       shots: int = 200, rounds: Optional[int] = None,
                       code: str = "rotated_surface",
                       seed: int = 11,
                       executor=None,
                       parallel: Optional[str] = None,
                       max_workers: Optional[int] = None,
                       use_cache: Optional[bool] = None
                       ) -> Dict[str, MemoryExperimentOutcome]:
    """Run the same error realizations through several decoders.

    All decoders share the code, error rate, shot budget *and* — because
    batched sampling depends only on the graph and the seed — the literal
    error samples, so the comparison is paired shot-for-shot; the returned
    mapping feeds the decoder-ablation bench.
    """
    rounds = rounds if rounds is not None else distance
    builder = (rotated_surface_code_graph if code == "rotated_surface"
               else repetition_code_graph)
    results: Dict[str, MemoryExperimentOutcome] = {}
    for name, factory in decoder_factories.items():
        graph = builder(distance, rounds, physical_error_rate)
        memory = SurfaceCodeMemory(graph, factory, seed=seed)
        results[name] = memory.run(shots, executor=executor, parallel=parallel,
                                   max_workers=max_workers,
                                   use_cache=use_cache)
    return results


def logical_error_rate_curve(distances: Sequence[int],
                             physical_error_rates: Sequence[float],
                             shots: int = 200,
                             code: str = "rotated_surface",
                             decoder_factory: Optional[Callable] = None,
                             seed: int = 3,
                             executor=None,
                             parallel: Optional[str] = None,
                             max_workers: Optional[int] = None,
                             use_cache: Optional[bool] = None,
                             method: str = "direct",
                             **rare_event_options
                             ) -> Dict[Tuple[int, float], float]:
    """Logical error rate over a (distance × physical error rate) sweep.

    Each grid cell is seeded by its own ``SeedSequence(seed)`` spawn child
    (collision-free by construction) and cached in the execution layer, so
    a warm re-run of the same curve decodes nothing.  ``method="rare-event"``
    estimates every cell with the stratified rare-event sampler — the same
    decode budget then resolves tail cells that direct Monte-Carlo would
    report as an uninformative zero.
    """
    distances = list(distances)
    physical_error_rates = list(physical_error_rates)
    builder = (rotated_surface_code_graph if code == "rotated_surface"
               else repetition_code_graph)
    children = np.random.SeedSequence(seed).spawn(
        len(distances) * len(physical_error_rates))
    curve: Dict[Tuple[int, float], float] = {}
    for row, distance in enumerate(distances):
        for column, error_rate in enumerate(physical_error_rates):
            child = children[row * len(physical_error_rates) + column]
            graph = builder(distance, distance, error_rate)
            memory = SurfaceCodeMemory(graph, decoder_factory, seed=child)
            outcome = memory.run(shots, executor=executor, parallel=parallel,
                                 max_workers=max_workers, use_cache=use_cache,
                                 method=method, **rare_event_options)
            curve[(distance, float(error_rate))] = outcome.logical_error_rate
    return curve
