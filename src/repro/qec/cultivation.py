"""Magic state cultivation model (``qec-cultivation`` baseline, Sec. 3.4).

Magic state cultivation (Gidney, Shutty & Jones 2024) grows a T state inside
a single surface-code patch by repeated checked growth steps.  Compared to
distillation it has

* a footprint comparable to a single code patch (tiny space overhead), but
* a high discard rate, so the *expected* time per accepted T state is large
  and grows effectively when few cultivation units are available.

The paper's Fig. 6 compares pQEC against qec-cultivation on 10k- and
20k-qubit devices: cultivation wins for small programs (many units fit, T
states arrive quickly) and loses as the program's logical qubits squeeze the
units out, which stalls the program and accumulates memory errors.  The model
below captures exactly that mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .surface_code import EFT_PHYSICAL_ERROR_RATE, SurfaceCodePatch


@dataclass(frozen=True)
class CultivationUnit:
    """A single magic-state-cultivation unit.

    Defaults are calibrated to the regime the paper's Fig. 6 assumes: output
    logical error ≈ 2e-9 (the cultivation paper's d=5-stage result at
    p = 1e-3), a footprint of about one grown patch plus its checking
    workspace (≈1.5 patches of the escape distance), and — reflecting the
    "high discard rate resulting in a large temporal overhead" the paper
    emphasises — an end-to-end acceptance probability of ≈5% with a ~20-cycle
    attempt, i.e. an expected ≈400 cycles per accepted T state per unit.
    """

    distance: int = 11
    cultivation_distance: int = 5
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    acceptance_probability: float = 0.05
    attempt_cycles: float = 20.0
    output_error_at_1e3: float = 2e-9
    footprint_patches: float = 1.5

    def __post_init__(self):
        if not 0.0 < self.acceptance_probability <= 1.0:
            raise ValueError("acceptance probability must lie in (0, 1]")

    @property
    def physical_qubits(self) -> int:
        patch = SurfaceCodePatch(self.distance, self.physical_error_rate)
        return int(math.ceil(self.footprint_patches * patch.physical_qubits))

    def output_error(self, physical_error_rate: Optional[float] = None) -> float:
        """T-state error; quadratic sensitivity to the physical error rate.

        Cultivation's acceptance checks suppress low-order faults, so the
        residual error scales roughly with p² around the calibration point.
        """
        p = self.physical_error_rate if physical_error_rate is None else physical_error_rate
        if p <= 0:
            return 0.0
        return float(min(1.0, self.output_error_at_1e3 * (p / 1e-3) ** 2))

    def expected_cycles_per_tstate(self) -> float:
        """Expected clock cycles until one accepted T state (geometric retries)."""
        return self.attempt_cycles / self.acceptance_probability

    def production_rate(self) -> float:
        """Accepted T states per clock cycle for one unit."""
        return 1.0 / self.expected_cycles_per_tstate()


@dataclass
class CultivationFarm:
    """Several cultivation units operating in parallel."""

    unit: CultivationUnit
    count: int

    def __post_init__(self):
        if self.count < 0:
            raise ValueError("unit count must be non-negative")

    @property
    def physical_qubits(self) -> int:
        return self.count * self.unit.physical_qubits

    def production_rate(self) -> float:
        return self.count * self.unit.production_rate()

    def cycles_per_tstate(self) -> float:
        if self.count == 0:
            return math.inf
        return self.unit.expected_cycles_per_tstate() / self.count

    def stall_cycles_per_tstate(self, consumption_interval_cycles: float) -> float:
        """Expected stall per consumed T state at the given demand interval."""
        if self.count == 0:
            return math.inf
        deficit = self.cycles_per_tstate() - consumption_interval_cycles
        return max(0.0, deficit)


def max_units_fitting(unit: CultivationUnit, physical_qubit_budget: int) -> int:
    """How many cultivation units fit in a physical-qubit budget."""
    if physical_qubit_budget < 0:
        raise ValueError("budget must be non-negative")
    if physical_qubit_budget == 0:
        return 0
    return physical_qubit_budget // unit.physical_qubits
