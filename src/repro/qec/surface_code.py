"""Surface-code resource and logical-error models.

The paper's pQEC evaluation needs per-operation logical error rates for
error-corrected Clifford operations (memory, CNOT via lattice surgery, H, S,
measurement) at EFT-era parameters (code distance d = 11, physical error rate
p = 1e-3), and physical-qubit footprints for patches.  Two models are
provided:

* an analytic scaling model ``p_L(d, p) = A · (p / p_th)^((d+1)/2)`` per
  logical operation (A and p_th calibrated so that d=11, p=1e-3 gives the
  ≈1e-7 per-operation rates quoted in Sec. 4.4 of the paper), and
* the empirical Monte-Carlo memory experiment in
  :mod:`repro.qec.memory_experiment`, which the ablation benchmark compares
  against the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Default EFT-era parameters used throughout the paper.
EFT_PHYSICAL_ERROR_RATE = 1e-3
EFT_CODE_DISTANCE = 11
EFT_PHYSICAL_QUBIT_BUDGET = 10_000

#: Calibration of the analytic logical error model:
#: p_L = PREFACTOR · (p / THRESHOLD)^((d+1)/2).
#: With PREFACTOR=0.1 and THRESHOLD=1e-2, d=11 and p=1e-3 give p_L = 1e-7,
#: matching the paper's "approximately 1e-7" per-operation quote.
SURFACE_CODE_PREFACTOR = 0.1
SURFACE_CODE_THRESHOLD = 1e-2


def logical_error_rate(distance: int, physical_error_rate: float,
                       prefactor: float = SURFACE_CODE_PREFACTOR,
                       threshold: float = SURFACE_CODE_THRESHOLD) -> float:
    """Logical error probability of one logical operation (d rounds) of a patch."""
    if distance < 1 or distance % 2 == 0:
        raise ValueError("code distance must be a positive odd integer")
    if physical_error_rate < 0:
        raise ValueError("physical error rate must be non-negative")
    if physical_error_rate == 0:
        return 0.0
    exponent = (distance + 1) / 2.0
    rate = prefactor * (physical_error_rate / threshold) ** exponent
    return float(min(rate, 1.0))


def minimum_distance_for_target(target_logical_error: float,
                                physical_error_rate: float,
                                max_distance: int = 51) -> int:
    """Smallest odd code distance achieving ``p_L ≤ target_logical_error``."""
    if target_logical_error <= 0:
        raise ValueError("target logical error must be positive")
    for distance in range(3, max_distance + 1, 2):
        rate = logical_error_rate(distance, physical_error_rate)
        if rate <= target_logical_error * (1.0 + 1e-9):
            return distance
    raise ValueError(
        f"no distance ≤ {max_distance} reaches logical error {target_logical_error}")


@dataclass(frozen=True)
class SurfaceCodePatch:
    """A rotated-surface-code logical qubit patch.

    A distance-d rotated surface code uses d² data qubits and d²−1 ancilla
    (syndrome) qubits, i.e. 2d²−1 physical qubits per patch (Sec. 2.2).
    """

    distance: int
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE

    def __post_init__(self):
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("patch distance must be an odd integer ≥ 3")

    @property
    def data_qubits(self) -> int:
        return self.distance ** 2

    @property
    def ancilla_qubits(self) -> int:
        return self.distance ** 2 - 1

    @property
    def physical_qubits(self) -> int:
        return 2 * self.distance ** 2 - 1

    @property
    def cycle_time_rounds(self) -> int:
        """Syndrome-measurement rounds per logical clock cycle (= d)."""
        return self.distance

    def logical_error_per_cycle(self) -> float:
        """Logical error probability of idling for one logical cycle (d rounds)."""
        return logical_error_rate(self.distance, self.physical_error_rate)

    def logical_error_per_round(self) -> float:
        """Per-syndrome-round logical error probability."""
        return self.logical_error_per_cycle() / self.distance


@dataclass(frozen=True)
class LogicalOperationErrorModel:
    """Per-operation logical error rates of error-corrected operations.

    The paper (Sec. 4.4, Sec. 5.2.1) treats memory, CNOT, H, S and measurement
    as error-corrected operations whose rates it extracts from Stim
    simulations; at d=11, p=1e-3 they are all ≈1e-7.  We model each as a small
    multiple of the patch logical error per cycle:

    * memory — one idle logical cycle of one patch;
    * single-qubit Clifford (H, S) — one patch cycle (transversal / in-place);
    * CNOT via lattice surgery — two patches plus the routing ancilla are
      exposed for two merge/split steps, so ~4× the single-patch rate;
    * logical measurement — one transversal readout, ≈ one patch cycle.
    """

    distance: int = EFT_CODE_DISTANCE
    physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE
    cnot_multiplier: float = 4.0
    measure_multiplier: float = 1.0
    clifford_multiplier: float = 1.0

    def _base(self) -> float:
        return logical_error_rate(self.distance, self.physical_error_rate)

    @property
    def memory(self) -> float:
        return self._base()

    @property
    def cnot(self) -> float:
        return min(1.0, self.cnot_multiplier * self._base())

    @property
    def single_qubit_clifford(self) -> float:
        return min(1.0, self.clifford_multiplier * self._base())

    @property
    def measurement(self) -> float:
        return min(1.0, self.measure_multiplier * self._base())

    def as_dict(self) -> Dict[str, float]:
        return {
            "memory": self.memory,
            "cx": self.cnot,
            "h": self.single_qubit_clifford,
            "s": self.single_qubit_clifford,
            "measure": self.measurement,
        }


def patches_fitting_budget(physical_qubit_budget: int, distance: int,
                           routing_overhead_fraction: float = 0.0) -> int:
    """How many logical patches fit in a physical-qubit budget.

    ``routing_overhead_fraction`` reserves a fraction of the budget for
    routing ancilla patches (layout-dependent; the layouts module computes
    exact numbers — this helper is for coarse feasibility checks like the
    white squares of Fig. 5).
    """
    if not 0.0 <= routing_overhead_fraction < 1.0:
        raise ValueError("routing overhead fraction must be in [0, 1)")
    patch = SurfaceCodePatch(distance)
    usable = physical_qubit_budget * (1.0 - routing_overhead_fraction)
    return int(usable // patch.physical_qubits)
