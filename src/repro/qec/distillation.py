"""Magic-state distillation factory models (``qec-conventional`` baseline).

The paper's qec-conventional baseline executes VQAs over Clifford+T with T
states produced by (15-to-1) distillation factories à la Litinski ("Magic
state distillation: not as costly as you think").  The evaluation needs, per
factory configuration (d_X, d_Z, d_m):

* the physical-qubit footprint,
* the number of clock cycles to produce one output T state, and
* the output T-state error rate at a given physical error rate.

The catalogue below encodes the configurations the paper uses (Fig. 4), with
the numbers the paper itself quotes where available ((15-to-1)7,3,3 → 810
qubits / 22 cycles / 5.4e-4, (15-to-1)17,7,7 → ≈46% of a 10k-qubit device /
42 cycles / 4.5e-8) and Litinski-interpolated values for the intermediate
configurations.  Output error scales with physical error rate as
``35 · p_inj³`` (the 15-to-1 protocol's cubic suppression of the injected
error), anchored at the catalogued p = 1e-3 value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .surface_code import EFT_PHYSICAL_ERROR_RATE


@dataclass(frozen=True)
class FactoryConfig:
    """A magic state factory configuration.

    ``output_error_at_1e3`` is the T-state error rate at physical error rate
    1e-3; other physical error rates are obtained by the cubic scaling of the
    15-to-1 protocol (``error ∝ p³`` to leading order).
    """

    name: str
    input_states: int
    output_states: int
    dx: int
    dz: int
    dm: int
    physical_qubits: int
    cycles_per_batch: float
    output_error_at_1e3: float

    @property
    def cycles_per_tstate(self) -> float:
        """Clock cycles to produce one T state (batch time / outputs)."""
        return self.cycles_per_batch / self.output_states

    def output_error(self, physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE) -> float:
        """T-state output error at the requested physical error rate."""
        if physical_error_rate < 0:
            raise ValueError("physical error rate must be non-negative")
        if physical_error_rate == 0:
            return 0.0
        scale = (physical_error_rate / 1e-3) ** 3
        return float(min(1.0, self.output_error_at_1e3 * scale))

    def production_rate(self) -> float:
        """T states produced per clock cycle by a single factory."""
        return self.output_states / self.cycles_per_batch

    @property
    def label(self) -> str:
        return (f"({self.input_states}-to-{self.output_states})"
                f"{self.dx},{self.dz},{self.dm}")

    def __repr__(self):
        return (f"FactoryConfig({self.label}, qubits={self.physical_qubits}, "
                f"cycles/T={self.cycles_per_tstate:.1f}, "
                f"err@1e-3={self.output_error_at_1e3:.2e})")


#: Factory catalogue.  The (7,3,3) and (17,7,7) rows use the paper's quoted
#: numbers; (9,3,3) and (11,5,5) interpolate Litinski's tables ((11,5,5) is
#: the paper's "sweet spot" configuration); the (20-to-4) entry is included
#: for the higher-throughput regime discussed in Sec. 2.4.
FACTORY_CATALOGUE: Dict[str, FactoryConfig] = {
    "15-to-1_7,3,3": FactoryConfig(
        name="15-to-1_7,3,3", input_states=15, output_states=1,
        dx=7, dz=3, dm=3, physical_qubits=810, cycles_per_batch=22.0,
        output_error_at_1e3=5.4e-4),
    "15-to-1_9,3,3": FactoryConfig(
        name="15-to-1_9,3,3", input_states=15, output_states=1,
        dx=9, dz=3, dm=3, physical_qubits=1150, cycles_per_batch=24.0,
        output_error_at_1e3=1.5e-4),
    "15-to-1_11,5,5": FactoryConfig(
        name="15-to-1_11,5,5", input_states=15, output_states=1,
        dx=11, dz=5, dm=5, physical_qubits=2070, cycles_per_batch=30.0,
        output_error_at_1e3=1.1e-5),
    "15-to-1_17,7,7": FactoryConfig(
        name="15-to-1_17,7,7", input_states=15, output_states=1,
        dx=17, dz=7, dm=7, physical_qubits=4620, cycles_per_batch=42.0,
        output_error_at_1e3=4.5e-8),
    "20-to-4_15,7,9": FactoryConfig(
        name="20-to-4_15,7,9", input_states=20, output_states=4,
        dx=15, dz=7, dm=9, physical_qubits=14400, cycles_per_batch=65.0,
        output_error_at_1e3=1.4e-7),
}

#: The four (15-to-1) configurations swept in the paper's Fig. 4.
PAPER_FIG4_FACTORIES: Tuple[str, ...] = (
    "15-to-1_7,3,3", "15-to-1_9,3,3", "15-to-1_11,5,5", "15-to-1_17,7,7")


def get_factory(name: str) -> FactoryConfig:
    """Look up a factory configuration by name (see :data:`FACTORY_CATALOGUE`)."""
    if name not in FACTORY_CATALOGUE:
        supported = ", ".join(sorted(FACTORY_CATALOGUE))
        raise ValueError(f"unknown factory {name!r}; available: {supported}")
    return FACTORY_CATALOGUE[name]


def list_factories() -> List[FactoryConfig]:
    return [FACTORY_CATALOGUE[key] for key in sorted(FACTORY_CATALOGUE)]


@dataclass
class FactoryFarm:
    """A collection of identical factories sharing a physical-qubit allocation.

    Captures the space/throughput trade-off of Sec. 2.5: more factories
    increase the T-state production rate (fewer program stalls and memory
    errors) but eat into the qubits available for logical data patches.
    """

    config: FactoryConfig
    count: int

    def __post_init__(self):
        if self.count < 0:
            raise ValueError("factory count must be non-negative")

    @property
    def physical_qubits(self) -> int:
        return self.count * self.config.physical_qubits

    def production_rate(self) -> float:
        """T states per clock cycle produced by the whole farm."""
        return self.count * self.config.production_rate()

    def cycles_per_tstate(self) -> float:
        """Average cycles between consecutive T states from the farm."""
        if self.count == 0:
            return math.inf
        return self.config.cycles_per_tstate / self.count

    def stall_cycles_per_tstate(self, consumption_interval_cycles: float) -> float:
        """Expected stall per T gate when the program wants a T every ``interval``.

        If the farm produces T states slower than the program consumes them,
        the program stalls by the difference; otherwise stalls are zero
        (buffering hides the latency).
        """
        if self.count == 0:
            return math.inf
        deficit = self.cycles_per_tstate() - consumption_interval_cycles
        return max(0.0, deficit)


def max_factories_fitting(config: FactoryConfig, physical_qubit_budget: int) -> int:
    """How many copies of ``config`` fit in a qubit budget."""
    if physical_qubit_budget < 0:
        raise ValueError("budget must be non-negative")
    return physical_qubit_budget // config.physical_qubits


def best_factory_for_budget(physical_qubit_budget: int,
                            physical_error_rate: float = EFT_PHYSICAL_ERROR_RATE,
                            required_rate: float = 0.0,
                            candidates: Optional[Iterable[str]] = None) -> FactoryConfig:
    """Pick the lowest-output-error factory that fits the budget.

    ``required_rate`` (T states per cycle) optionally constrains throughput:
    configurations whose farm (all copies that fit) cannot sustain the rate
    are skipped.
    """
    names = list(candidates) if candidates is not None else list(PAPER_FIG4_FACTORIES)
    viable: List[FactoryConfig] = []
    for name in names:
        config = get_factory(name)
        count = max_factories_fitting(config, physical_qubit_budget)
        if count == 0:
            continue
        farm = FactoryFarm(config, count)
        if farm.production_rate() < required_rate:
            continue
        viable.append(config)
    if not viable:
        raise ValueError(
            f"no factory configuration fits a budget of {physical_qubit_budget} qubits "
            f"with rate ≥ {required_rate}")
    return min(viable, key=lambda cfg: cfg.output_error(physical_error_rate))
