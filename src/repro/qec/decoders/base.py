"""The batched decoder protocol shared by every syndrome decoder.

PRs 1–4 batched every other hot path in the repository; this module does the
same for decoding.  A decoder that mixes in :class:`SyndromeBatchDecoder`
gains ``decode_batch(syndromes)``: the whole Monte-Carlo shot matrix is
decoded in one call, and — the structural win — shots are **deduplicated to
unique syndromes** first.  At the low physical error rates the paper's
EFT regime assumes, most shots share the empty or a small single-defect
syndrome, so a 1 000-shot experiment typically pays for a few hundred real
decodes (see ``benchmarks/test_qec_throughput.py``).

The module also carries the cross-cutting plumbing the batched pipeline
needs:

* **decode accounting** — module-level counters (:func:`batch_decode_stats`)
  record how many unique syndromes were actually decoded; the sampling layer
  uses them to *prove* that a warm-cache re-run decodes nothing.
* **decoder cache tokens** — :func:`decoder_cache_token` derives a stable,
  content-ish key component from a decoder (its name plus configuration),
  folded into the experiment cache key next to the graph fingerprint.
* **counter fold-back** — decoders keep diagnostic counters
  (``fallback_count``, ``predecoded_defects`` …).  When decoding happens in
  worker *processes*, those counters mutate in a pickled copy; the
  snapshot/delta helpers let the sampling layer ship the deltas home and
  apply them to the caller's decoder instance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bitops import pack_rows, packed_words, unpack_rows
from .graph import Detector

# ---------------------------------------------------------------------------
# Decode accounting (module-level so worker processes can report deltas)
# ---------------------------------------------------------------------------


@dataclass
class BatchDecodeStats:
    """Counters for the batched decode path (process-wide totals)."""

    batch_calls: int = 0
    shots_decoded: int = 0
    syndromes_decoded: int = 0

    @property
    def dedup_factor(self) -> float:
        """Shots served per unique syndrome actually decoded."""
        if self.syndromes_decoded == 0:
            return 0.0
        return self.shots_decoded / self.syndromes_decoded


_stats = BatchDecodeStats()
_stats_lock = threading.Lock()


def batch_decode_stats() -> BatchDecodeStats:
    """A snapshot of the process-wide batched-decode counters."""
    with _stats_lock:
        return replace(_stats)


def reset_batch_decode_stats() -> None:
    """Zero the process-wide batched-decode counters (tests, benchmarks)."""
    with _stats_lock:
        _stats.batch_calls = 0
        _stats.shots_decoded = 0
        _stats.syndromes_decoded = 0


def _record_batch(unique_syndromes: int, shots: int) -> None:
    with _stats_lock:
        _stats.batch_calls += 1
        _stats.shots_decoded += int(shots)
        _stats.syndromes_decoded += int(unique_syndromes)


def batch_decode_delta(before: BatchDecodeStats,
                       after: BatchDecodeStats) -> Dict[str, int]:
    """The counter movement between two snapshots (shard return payload)."""
    return {"batch_calls": after.batch_calls - before.batch_calls,
            "shots_decoded": after.shots_decoded - before.shots_decoded,
            "syndromes_decoded": (after.syndromes_decoded
                                  - before.syndromes_decoded)}


def absorb_batch_decode_delta(delta: Dict[str, int]) -> None:
    """Fold a worker process's counter delta into this process's totals."""
    with _stats_lock:
        _stats.batch_calls += int(delta.get("batch_calls", 0))
        _stats.shots_decoded += int(delta.get("shots_decoded", 0))
        _stats.syndromes_decoded += int(delta.get("syndromes_decoded", 0))


# ---------------------------------------------------------------------------
# Decoder diagnostic counters (fold-back across the pickle boundary)
# ---------------------------------------------------------------------------

#: Integer diagnostic attributes worth preserving across process shards.
_COUNTER_ATTRS = ("fallback_count", "predecoded_defects", "forwarded_defects")

#: Attributes holding a nested decoder whose counters also matter.
_CHILD_ATTRS = ("_fallback", "_backing")


def _walk_counters(decoder, prefix: str, out: Dict[str, int],
                   seen: set) -> None:
    if id(decoder) in seen:
        return
    seen.add(id(decoder))
    for attr in _COUNTER_ATTRS:
        value = getattr(decoder, attr, None)
        if isinstance(value, int):
            out[prefix + attr] = value
    for child_attr in _CHILD_ATTRS:
        child = getattr(decoder, child_attr, None)
        if child is not None:
            _walk_counters(child, prefix + child_attr + ".", out, seen)


def decoder_counter_snapshot(decoder) -> Dict[str, int]:
    """All diagnostic counters of ``decoder`` (and nested decoders), flat.

    Keys are dotted attribute paths (``"fallback_count"``,
    ``"_backing.predecoded_defects"`` …) so a delta computed in a worker
    process can be replayed onto the caller's instance.
    """
    out: Dict[str, int] = {}
    _walk_counters(decoder, "", out, set())
    return out


def decoder_counter_delta(before: Dict[str, int],
                          after: Dict[str, int]) -> Dict[str, int]:
    """Per-path counter movement between two snapshots."""
    return {path: after.get(path, 0) - before.get(path, 0)
            for path in after if after.get(path, 0) != before.get(path, 0)}


def apply_decoder_counter_delta(decoder, delta: Dict[str, int]) -> None:
    """Add a worker's counter ``delta`` onto the caller-side decoder."""
    for path, movement in delta.items():
        parts = path.split(".")
        target = decoder
        for child_attr in parts[:-1]:
            target = getattr(target, child_attr, None)
            if target is None:
                break
        if target is None:
            continue
        attr = parts[-1]
        current = getattr(target, attr, None)
        if isinstance(current, int):
            setattr(target, attr, current + int(movement))


def decoder_cache_token(decoder) -> Optional[tuple]:
    """A stable cache-key component describing ``decoder``, or ``None``.

    Uses the decoder's own :meth:`cache_token` (every in-repo decoder
    defines one covering its full configuration).  Decoders without one —
    or whose token resolves to ``None`` (e.g. a predecoder wrapping an
    unknown backing decoder) — yield ``None``, which the sampling layer
    treats as **not cacheable**: a class-name fallback would collide two
    differently-configured instances of the same class and serve one of
    them the other's failure counts.
    """
    token = getattr(decoder, "cache_token", None)
    if callable(token):
        value = token()
        return None if value is None else tuple(value)
    return None


# ---------------------------------------------------------------------------
# The decode_batch mixin
# ---------------------------------------------------------------------------


def _prepare_syndromes(syndromes: np.ndarray,
                       num_detectors: int) -> np.ndarray:
    """Validate and normalize a syndrome matrix to C-contiguous 0/1 uint8.

    Normalization happens exactly **once** here: a transposed or otherwise
    strided view is copied into C order a single time, and an input that is
    already contiguous 0/1 ``uint8`` passes through untouched — the old
    unconditional ``& 1`` re-copied every batch, and downstream packers
    would silently re-copy strided input again per call.  Non-binary
    entries are masked in place only when this function owns the buffer
    (the caller's array is never mutated).
    """
    source = np.asarray(syndromes)
    if source.ndim != 2 or source.shape[1] != num_detectors:
        raise ValueError(
            f"syndromes must be (shots, {num_detectors}), got array of "
            f"shape {source.shape}")
    normalized = np.ascontiguousarray(source, dtype=np.uint8)
    if normalized.size and int(normalized.max()) > 1:
        if np.shares_memory(normalized, source):
            normalized = normalized & 1
        else:
            normalized &= 1
    return normalized


def _dedup_packed(words: np.ndarray) -> tuple:
    """``(unique word rows, first_index, inverse)`` for packed syndromes.

    One fixed-length S-dtype ``np.unique`` over the raw word bytes (rows
    share a length, so trailing-null trimming cannot conflate two distinct
    rows) is several times faster than ``unique(axis=0)``.  Packed rows
    are valid equality keys because :func:`repro.qec.bitops.pack_rows`
    zeroes every tail bit past the row width.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    keys = words.view(f"S{words.shape[1] * words.itemsize}").ravel()
    _, first_index, inverse = np.unique(keys, return_index=True,
                                        return_inverse=True)
    return words[first_index], first_index, np.asarray(inverse).reshape(-1)


def _dedup_syndromes(syndromes: np.ndarray
                     ) -> tuple:
    """``(unique rows, inverse)`` via packed-word row keys (see
    :func:`_dedup_packed`)."""
    words = pack_rows(syndromes)
    _, first_index, inverse = _dedup_packed(words)
    return syndromes[first_index], inverse


def _loop_decode_unique(decoder, unique: np.ndarray,
                        detectors: Sequence[Detector]) -> np.ndarray:
    """Decode each unique syndrome row via the per-shot ``decode``."""
    flips = np.zeros(unique.shape[0], dtype=bool)
    for index in range(unique.shape[0]):
        defects: List[Detector] = [detectors[column] for column
                                   in np.flatnonzero(unique[index])]
        flips[index] = bool(decoder.decode(defects).flips_logical)
    return flips


def batch_decode(decoder, syndromes: np.ndarray,
                 detectors: Sequence[Detector]) -> np.ndarray:
    """Batched decode for *any* decoder with the graph-protocol ``decode``.

    Decoders implementing :class:`SyndromeBatchDecoder` (all in-repo ones)
    dispatch to their own ``decode_batch``; a plain third-party decoder
    exposing only ``decode(defects)`` still gets the dedup shell — unique
    syndromes decode once through a per-shot loop — so the memory-
    experiment drivers keep their historical "any decoder with a
    ``decode(defects)`` method" contract.
    """
    batch = getattr(decoder, "decode_batch", None)
    if callable(batch):
        return batch(syndromes, detectors)
    detectors = list(detectors)
    syndromes = _prepare_syndromes(syndromes, len(detectors))
    if syndromes.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    unique, inverse = _dedup_syndromes(syndromes)
    flips = _loop_decode_unique(decoder, unique, detectors)
    _record_batch(unique.shape[0], syndromes.shape[0])
    return flips[inverse]


def batch_decode_packed(decoder, syndrome_words: np.ndarray,
                        detectors: Sequence[Detector]) -> np.ndarray:
    """Batched decode of bit-packed syndromes for *any* decoder.

    ``syndrome_words`` is ``(shots, packed_words(n_detectors))`` uint64 as
    produced by :func:`repro.qec.bitops.pack_rows` (tail bits zero).
    Dispatches to :meth:`SyndromeBatchDecoder.decode_batch_packed` when
    available; a plain third-party decoder gets the packed dedup shell
    with a per-unique unpack + per-shot ``decode`` loop.
    """
    packed = getattr(decoder, "decode_batch_packed", None)
    if callable(packed):
        return packed(syndrome_words, detectors)
    detectors = list(detectors)
    words = _prepare_syndrome_words(syndrome_words, len(detectors))
    if words.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    unique_words, _, inverse = _dedup_packed(words)
    unique = unpack_rows(unique_words, len(detectors))
    flips = _loop_decode_unique(decoder, unique, detectors)
    _record_batch(unique.shape[0], words.shape[0])
    return flips[inverse]


def _prepare_syndrome_words(words: np.ndarray,
                            num_detectors: int) -> np.ndarray:
    """Validate a packed-syndrome matrix ``(shots, packed_words(n))``."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    expected = packed_words(num_detectors)
    if words.ndim != 2 or words.shape[1] != expected:
        raise ValueError(
            f"packed syndromes must be (shots, {expected}) uint64 for "
            f"{num_detectors} detectors, got shape {words.shape}")
    return words


class SyndromeBatchDecoder:
    """Mixin giving any ``decode(defects)`` decoder a batched entry point.

    ``decode_batch(syndromes)`` takes a ``(shots, n_detectors)`` 0/1 matrix
    whose columns follow :meth:`DecodingGraph.detector_order`, deduplicates
    the rows to unique syndromes (``np.unique``), decodes each unique
    syndrome exactly once, and scatters the per-unique logical-flip verdicts
    back to all shots.  Subclasses with a faster bulk path (the lookup
    decoder's vectorized table probe) override :meth:`_decode_unique` and
    keep the dedup/accounting shell.

    Decoding is deterministic, so deduplication can never change results —
    only how often the underlying decoder runs.  Note that diagnostic
    counters (``fallback_count``, predecoder offload tallies) consequently
    count **unique syndromes**, not shots, on the batched path.
    """

    def decode_batch(self, syndromes: np.ndarray,
                     detectors: Optional[Sequence[Detector]] = None
                     ) -> np.ndarray:
        """Per-shot logical-flip verdicts for a syndrome matrix.

        ``syndromes`` is ``(shots, n_detectors)`` with 0/1 entries; columns
        follow ``detectors`` (default: the graph's canonical
        ``detector_order()``).  Returns a boolean array of length ``shots``:
        whether each shot's correction flips the logical operator.
        """
        graph = self.decoding_graph
        if detectors is None:
            detectors = graph.detector_order()
        else:
            detectors = list(detectors)
        syndromes = _prepare_syndromes(syndromes, len(detectors))
        if syndromes.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        unique, inverse = _dedup_syndromes(syndromes)
        flips = self._decode_unique(unique, detectors)
        _record_batch(unique.shape[0], syndromes.shape[0])
        return np.asarray(flips, dtype=bool)[inverse]

    def decode_batch_packed(self, syndrome_words: np.ndarray,
                            detectors: Optional[Sequence[Detector]] = None
                            ) -> np.ndarray:
        """Per-shot flips for a **bit-packed** syndrome matrix.

        ``syndrome_words`` is ``(shots, packed_words(n_detectors))``
        uint64 in the :func:`repro.qec.bitops.pack_rows` layout (bit ``i``
        of a row in word ``i // 64`` at position ``i % 64``; tail bits
        zero).  Dedup runs directly on the packed words — the dense
        syndrome matrix is never materialized; only the (few) unique rows
        are unpacked for decoders without a packed bulk path.  Bitwise
        identical to ``decode_batch(unpack_rows(words, n))``: decoding is
        deterministic, so the representation of the dedup keys cannot
        change any verdict.
        """
        graph = self.decoding_graph
        if detectors is None:
            detectors = graph.detector_order()
        else:
            detectors = list(detectors)
        words = _prepare_syndrome_words(syndrome_words, len(detectors))
        if words.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        unique_words, _, inverse = _dedup_packed(words)
        flips = self._decode_unique_packed(unique_words, detectors)
        _record_batch(unique_words.shape[0], words.shape[0])
        return np.asarray(flips, dtype=bool)[inverse]

    def _decode_unique(self, unique: np.ndarray,
                       detectors: Sequence[Detector]) -> np.ndarray:
        """Decode each unique syndrome row via the per-shot ``decode``."""
        return _loop_decode_unique(self, unique, detectors)

    def _decode_unique_packed(self, unique_words: np.ndarray,
                              detectors: Sequence[Detector]) -> np.ndarray:
        """Decode unique **packed** rows; default unpacks to the dense hook.

        Subclasses with a packed bulk probe (the lookup decoder) override
        this to avoid the unpack entirely.
        """
        unique = unpack_rows(unique_words, len(detectors))
        return self._decode_unique(unique, detectors)

    def cache_token(self) -> Optional[tuple]:
        """Cache-key component covering this decoder's configuration.

        The default returns ``None`` (the experiment is then not cached):
        only a decoder that *knows* its name pins down its behaviour — as
        the configuration-free :class:`~repro.qec.decoders.mwpm.MWPMDecoder`
        does — should return a token, otherwise two differently-configured
        instances of one class would share cache entries.
        """
        return None
