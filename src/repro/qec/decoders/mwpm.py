"""Minimum-weight perfect matching decoder.

The reference decoder for surface codes: every defect (flipped detector) is
matched either to another defect or to the boundary such that the total weight
of the implied error chains is minimal.  Pairwise chain weights are exact
Dijkstra distances on the decoding graph; the matching itself uses networkx's
blossom implementation (``max_weight_matching`` on negated weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from .base import SyndromeBatchDecoder
from .graph import BOUNDARY, DecodingEdge, DecodingGraph, Detector


@dataclass
class DecodeOutcome:
    """Correction edges plus bookkeeping shared by all decoders."""

    correction: List[DecodingEdge]
    matched_pairs: List[Tuple[object, object]]
    total_weight: float

    @property
    def flips_logical(self) -> bool:
        return sum(1 for edge in self.correction if edge.flips_logical) % 2 == 1


class MWPMDecoder(SyndromeBatchDecoder):
    """Exact minimum-weight perfect matching on the defect graph.

    The reference surface-code decoder: defects (flipped stabilizer
    measurements) are paired up by networkx's maximum-weight matching over
    negated path lengths, so the total corrected error weight is minimal.
    Slower than :class:`~repro.qec.decoders.union_find.UnionFindDecoder` but
    optimal, which is why the memory experiments use it as the accuracy
    baseline.  Example::

        decoder = MWPMDecoder(decoding_graph)
        correction = decoder.decode(syndrome)

    Batched Monte-Carlo pipelines call :meth:`decode_batch` instead (from
    :class:`~repro.qec.decoders.base.SyndromeBatchDecoder`), which decodes
    each unique syndrome only once.
    """

    name = "mwpm"

    def __init__(self, graph: DecodingGraph):
        self._graph = graph
        self._distance_cache: Dict[object, Tuple[Dict, Dict]] = {}

    def cache_token(self) -> tuple:
        # Configuration-free: the name pins down the behaviour exactly.
        return (self.name,)

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    # -- internals -----------------------------------------------------------
    def _distances_from(self, source) -> Tuple[Dict, Dict]:
        if source not in self._distance_cache:
            distances, paths = nx.single_source_dijkstra(
                self._graph.graph, source, weight="weight")
            self._distance_cache[source] = (distances, paths)
        return self._distance_cache[source]

    def _chain(self, source, target) -> Tuple[float, List[DecodingEdge]]:
        distances, paths = self._distances_from(source)
        if target not in distances:
            raise ValueError(f"no path between {source} and {target}")
        return distances[target], self._graph.path_edges(paths[target])

    # -- decoding ------------------------------------------------------------
    def decode(self, defects: Sequence[Detector]) -> DecodeOutcome:
        """Match the defects and return the implied correction edges.

        Each defect may be matched to another defect or to its own copy of the
        virtual boundary node; the standard construction adds one boundary
        twin per defect, connected to its defect at the defect-to-boundary
        distance and to the other twins at zero weight.
        """
        defects = list(dict.fromkeys(defects))
        if not defects:
            return DecodeOutcome([], [], 0.0)
        for defect in defects:
            if defect not in self._graph.graph:
                raise ValueError(f"unknown detector {defect!r}")

        matching_graph = nx.Graph()
        boundary_twin = {defect: ("twin", index)
                         for index, defect in enumerate(defects)}
        for i, defect_i in enumerate(defects):
            distance_to_boundary, _ = self._chain(defect_i, BOUNDARY)
            matching_graph.add_edge(defect_i, boundary_twin[defect_i],
                                    weight=-distance_to_boundary)
            for j in range(i + 1, len(defects)):
                defect_j = defects[j]
                pair_distance, _ = self._chain(defect_i, defect_j)
                matching_graph.add_edge(defect_i, defect_j,
                                        weight=-pair_distance)
                matching_graph.add_edge(boundary_twin[defect_i],
                                        boundary_twin[defect_j], weight=0.0)

        matching = nx.max_weight_matching(matching_graph, maxcardinality=True)

        correction: List[DecodingEdge] = []
        matched_pairs: List[Tuple[object, object]] = []
        total_weight = 0.0
        for node_a, node_b in matching:
            a_is_twin = isinstance(node_a, tuple) and node_a and node_a[0] == "twin"
            b_is_twin = isinstance(node_b, tuple) and node_b and node_b[0] == "twin"
            if a_is_twin and b_is_twin:
                continue
            if a_is_twin or b_is_twin:
                defect = node_b if a_is_twin else node_a
                weight, chain = self._chain(defect, BOUNDARY)
                matched_pairs.append((defect, BOUNDARY))
            else:
                weight, chain = self._chain(node_a, node_b)
                matched_pairs.append((node_a, node_b))
            total_weight += weight
            correction.extend(chain)
        return DecodeOutcome(correction=correction, matched_pairs=matched_pairs,
                             total_weight=total_weight)
