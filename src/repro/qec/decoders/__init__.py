"""Syndrome decoders for surface-code quantum error correction.

The paper (Sec. 7) notes that approximate, low-cost decoders — Union-Find,
clique-style predecoders, lookup-table decoders — are "particularly attractive
in the EFT era due to less stringent error rate requirements".  This package
implements the decoding substrate so those trade-offs can be measured rather
than asserted:

* :mod:`repro.qec.decoders.graph` — space-time decoding graphs for the
  repetition code and the rotated surface code under phenomenological noise;
* :mod:`repro.qec.decoders.mwpm` — minimum-weight perfect matching on the
  defect graph (exact distances via Dijkstra, matching via networkx);
* :mod:`repro.qec.decoders.union_find` — the Union-Find cluster-growth +
  peeling decoder (almost-linear time, slightly lower threshold);
* :mod:`repro.qec.decoders.lookup` — a bounded-weight lookup-table decoder
  (an Astrea-style exhaustive decoder for small distances);
* :mod:`repro.qec.decoders.predecoder` — a clique-style predecoder that
  resolves isolated adjacent defect pairs before handing the residual
  syndrome to a backing decoder.

Every decoder implements the per-shot ``decode(defects)`` contract plus the
batched ``decode_batch(syndromes)`` protocol from
:mod:`repro.qec.decoders.base` (unique-syndrome deduplication, decode
accounting, process-shard counter fold-back).  The memory-experiment driver
that exercises all of them lives in :mod:`repro.qec.surface_memory`, and the
batched Monte-Carlo sampling pipeline in :mod:`repro.qec.sampling`.
"""

from .base import (BatchDecodeStats, SyndromeBatchDecoder, batch_decode,
                   batch_decode_packed, batch_decode_stats,
                   decoder_cache_token, reset_batch_decode_stats)
from .graph import (DecodingEdge, DecodingGraph, repetition_code_graph,
                    rotated_surface_code_graph)
from .lookup import LookupDecoder
from .mwpm import MWPMDecoder
from .predecoder import CliquePredecoder
from .union_find import UnionFindDecoder

__all__ = [
    "BatchDecodeStats",
    "CliquePredecoder",
    "DecodingEdge",
    "DecodingGraph",
    "LookupDecoder",
    "MWPMDecoder",
    "SyndromeBatchDecoder",
    "UnionFindDecoder",
    "batch_decode",
    "batch_decode_packed",
    "batch_decode_stats",
    "decoder_cache_token",
    "repetition_code_graph",
    "reset_batch_decode_stats",
    "rotated_surface_code_graph",
]
