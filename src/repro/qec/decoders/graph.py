"""Space-time decoding graphs for matching-based decoders.

A decoding graph has one node per *detector* (a stabilizer measurement
comparison at a specific round) plus a single virtual *boundary* node.  Each
edge is an elementary error mechanism:

* **space edges** — a data-qubit error at some round, connecting the one or
  two detectors whose stabilizers contain that qubit (errors on boundary data
  qubits connect a detector to the boundary node);
* **time edges** — a measurement error, connecting the same stabilizer's
  detectors in consecutive rounds.

Edge weights are ``−log(p / (1 − p))`` so that minimum-weight matchings
correspond to maximum-likelihood (independent-error) corrections.  Every space
edge records whether the underlying data qubit lies on the chosen logical
operator representative, which is how decoders and the memory experiment agree
on what counts as a logical error.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

#: The single virtual boundary node shared by all boundary edges.
BOUNDARY = "boundary"

#: A detector is identified by (stabilizer index, round index).
Detector = Tuple[int, int]


@dataclass(frozen=True)
class DecodingEdge:
    """One elementary error mechanism in the decoding graph."""

    identifier: int
    node_a: object
    node_b: object
    weight: float
    kind: str                     # "space", "time" or "boundary"
    data_qubit: Optional[int]     # space/boundary edges only
    round_index: Optional[int]
    flips_logical: bool

    @property
    def is_boundary(self) -> bool:
        return self.node_a == BOUNDARY or self.node_b == BOUNDARY


def _error_weight(probability: float) -> float:
    probability = min(max(probability, 1e-12), 0.499999)
    return -math.log(probability / (1.0 - probability))


class DecodingGraph:
    """A weighted space-time decoding graph plus code metadata."""

    def __init__(self, name: str, distance: int, rounds: int,
                 num_stabilizers: int, num_data_qubits: int,
                 logical_support: FrozenSet[int]):
        self.name = name
        self.distance = int(distance)
        self.rounds = int(rounds)
        self.num_stabilizers = int(num_stabilizers)
        self.num_data_qubits = int(num_data_qubits)
        self.logical_support = frozenset(logical_support)
        self._graph = nx.Graph()
        self._graph.add_node(BOUNDARY)
        self._edges: List[DecodingEdge] = []
        # Memoized content caches, invalidated when the graph grows (the
        # construction API is append-only: add_detector / add_edge).
        self._fingerprint_cache: Optional[Tuple[Tuple[int, int], str]] = None
        self._detector_order_cache: Optional[Tuple[Tuple[int, int],
                                                   List[Detector]]] = None

    # -- construction --------------------------------------------------------
    def add_detector(self, detector: Detector) -> None:
        self._graph.add_node(detector)

    def add_edge(self, node_a, node_b, probability: float, kind: str,
                 data_qubit: Optional[int] = None,
                 round_index: Optional[int] = None) -> DecodingEdge:
        flips_logical = (data_qubit is not None
                         and data_qubit in self.logical_support)
        edge = DecodingEdge(identifier=len(self._edges), node_a=node_a,
                            node_b=node_b, weight=_error_weight(probability),
                            kind=kind, data_qubit=data_qubit,
                            round_index=round_index,
                            flips_logical=flips_logical)
        self._edges.append(edge)
        # Parallel edges (e.g. two data qubits joining the same detector pair)
        # keep only the lighter one in the simple-graph view, which is exactly
        # what a matching decoder would pick anyway.
        existing = self._graph.get_edge_data(node_a, node_b)
        if existing is None or existing["weight"] > edge.weight:
            self._graph.add_edge(node_a, node_b, weight=edge.weight,
                                 edge_ref=edge)
        return edge

    # -- queries --------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def edges(self) -> List[DecodingEdge]:
        return list(self._edges)

    @property
    def detectors(self) -> List[Detector]:
        return [node for node in self._graph.nodes if node != BOUNDARY]

    def edge_between(self, node_a, node_b) -> Optional[DecodingEdge]:
        data = self._graph.get_edge_data(node_a, node_b)
        return None if data is None else data["edge_ref"]

    def space_edges(self) -> List[DecodingEdge]:
        return [edge for edge in self._edges if edge.kind in ("space", "boundary")]

    def shortest_path(self, source, target) -> Tuple[float, List]:
        """Dijkstra distance and node path between two nodes."""
        distance, path = nx.single_source_dijkstra(self._graph, source,
                                                   target, weight="weight")
        return float(distance), path

    def path_edges(self, path: Sequence) -> List[DecodingEdge]:
        """The DecodingEdge objects along a node path."""
        edges = []
        for node_a, node_b in zip(path, path[1:]):
            edge = self.edge_between(node_a, node_b)
            if edge is None:
                raise ValueError(f"no edge between {node_a} and {node_b}")
            edges.append(edge)
        return edges

    def correction_flips_logical(self, edges: Iterable[DecodingEdge]) -> bool:
        """Parity of the logical operator crossed by a set of correction edges."""
        return sum(1 for edge in edges if edge.flips_logical) % 2 == 1

    # -- content identity -----------------------------------------------------
    def _shape_token(self) -> Tuple[int, int]:
        return (len(self._edges), self._graph.number_of_nodes())

    def detector_order(self) -> List[Detector]:
        """The canonical (sorted) detector ordering used by batched sampling.

        Column ``i`` of a syndrome matrix refers to ``detector_order()[i]``;
        both :mod:`repro.qec.sampling` and every decoder's ``decode_batch``
        agree on this ordering, so syndromes can cross process boundaries as
        plain arrays.
        """
        token = self._shape_token()
        if (self._detector_order_cache is None
                or self._detector_order_cache[0] != token):
            self._detector_order_cache = (token, sorted(self.detectors))
        return list(self._detector_order_cache[1])

    def fingerprint(self) -> str:
        """A stable content hash of the graph (cache key component).

        Covers the code metadata, every edge's endpoints, exact weight,
        kind and round, and the logical mask — two graphs with equal
        fingerprints sample identical error models and imply identical
        corrections, so Monte-Carlo results keyed on the fingerprint are
        shareable across processes and runs.
        """
        token = self._shape_token()
        if (self._fingerprint_cache is not None
                and self._fingerprint_cache[0] == token):
            return self._fingerprint_cache[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr((self.name, self.distance, self.rounds,
                            self.num_stabilizers, self.num_data_qubits,
                            tuple(sorted(self.logical_support)))).encode())
        for edge in self._edges:
            digest.update(repr((edge.node_a, edge.node_b, edge.kind,
                                edge.data_qubit, edge.round_index,
                                edge.flips_logical)).encode())
            digest.update(struct.pack("<d", edge.weight))
        value = digest.hexdigest()
        self._fingerprint_cache = (token, value)
        return value


# ---------------------------------------------------------------------------
# Repetition code
# ---------------------------------------------------------------------------

def repetition_code_graph(distance: int, rounds: int,
                          data_error_rate: float,
                          measurement_error_rate: Optional[float] = None
                          ) -> DecodingGraph:
    """Decoding graph of the bit-flip repetition code under phenomenological noise.

    ``distance`` data qubits in a line, ``distance − 1`` ZZ parity checks,
    ``rounds`` noisy measurement rounds followed by one perfect round.  Data
    qubit 0 is the logical-operator representative (a single qubit suffices
    for the repetition code).
    """
    if distance < 3 or distance % 2 == 0:
        raise ValueError("distance must be an odd integer ≥ 3")
    if rounds < 1:
        raise ValueError("at least one measurement round is required")
    if measurement_error_rate is None:
        measurement_error_rate = data_error_rate
    num_stabilizers = distance - 1
    graph = DecodingGraph("repetition", distance, rounds, num_stabilizers,
                          num_data_qubits=distance,
                          logical_support=frozenset({0}))
    total_rounds = rounds + 1   # final perfect readout round
    for round_index in range(total_rounds):
        for stabilizer in range(num_stabilizers):
            graph.add_detector((stabilizer, round_index))
    for round_index in range(total_rounds):
        # Space edges: data qubit q touches checks (q−1, q).
        for qubit in range(distance):
            left = qubit - 1
            right = qubit
            node_a = (left, round_index) if left >= 0 else BOUNDARY
            node_b = (right, round_index) if right < num_stabilizers else BOUNDARY
            kind = "boundary" if BOUNDARY in (node_a, node_b) else "space"
            graph.add_edge(node_a, node_b, data_error_rate, kind,
                           data_qubit=qubit, round_index=round_index)
        # Time edges (no measurement error on the final perfect round).
        if round_index + 1 < total_rounds:
            for stabilizer in range(num_stabilizers):
                graph.add_edge((stabilizer, round_index),
                               (stabilizer, round_index + 1),
                               measurement_error_rate, "time",
                               round_index=round_index)
    return graph


# ---------------------------------------------------------------------------
# Rotated surface code
# ---------------------------------------------------------------------------

def rotated_surface_code_stabilizers(distance: int
                                     ) -> Tuple[List[Tuple[int, ...]], List[int]]:
    """Z-type stabilizer supports of the rotated surface code.

    Data qubits sit on a ``distance × distance`` grid and are indexed
    ``row · distance + column``.  Bulk plaquettes centred at
    ``(row + ½, column + ½)`` are Z-type when ``row + column`` is even;
    weight-2 Z-type boundary plaquettes sit on the left and right edges.  The
    returned ``logical_support`` is the middle row of data qubits — a
    representative of the logical Z operator, whose parity detects logical X
    errors.

    Returns ``(stabilizer_supports, logical_support)``.
    """
    if distance < 3 or distance % 2 == 0:
        raise ValueError("distance must be an odd integer ≥ 3")

    def qubit(row: int, column: int) -> int:
        return row * distance + column

    supports: List[Tuple[int, ...]] = []
    # Bulk weight-4 plaquettes.
    for row in range(distance - 1):
        for column in range(distance - 1):
            if (row + column) % 2 == 0:
                supports.append((qubit(row, column), qubit(row, column + 1),
                                 qubit(row + 1, column),
                                 qubit(row + 1, column + 1)))
    # Left boundary weight-2 plaquettes (column −½): rows with (row − 1) even.
    for row in range(distance - 1):
        if (row + (-1)) % 2 == 0:
            supports.append((qubit(row, 0), qubit(row + 1, 0)))
    # Right boundary weight-2 plaquettes (column d−½): rows with (row + d−1) even.
    for row in range(distance - 1):
        if (row + distance - 1) % 2 == 0:
            supports.append((qubit(row, distance - 1),
                             qubit(row + 1, distance - 1)))
    logical_support = [qubit((distance - 1) // 2, column)
                       for column in range(distance)]
    return supports, logical_support


def rotated_surface_code_graph(distance: int, rounds: int,
                               data_error_rate: float,
                               measurement_error_rate: Optional[float] = None
                               ) -> DecodingGraph:
    """Decoding graph of the rotated surface code (X errors / Z stabilizers).

    Phenomenological noise: each data qubit suffers an X error with
    probability ``data_error_rate`` per round, and each stabilizer measurement
    is flipped with probability ``measurement_error_rate``; a final perfect
    round closes the syndrome history.
    """
    if rounds < 1:
        raise ValueError("at least one measurement round is required")
    if measurement_error_rate is None:
        measurement_error_rate = data_error_rate
    supports, logical_support = rotated_surface_code_stabilizers(distance)
    num_stabilizers = len(supports)
    num_data_qubits = distance * distance

    # Which stabilizers touch each data qubit (one or two).
    membership: Dict[int, List[int]] = {q: [] for q in range(num_data_qubits)}
    for stabilizer_index, support in enumerate(supports):
        for qubit in support:
            membership[qubit].append(stabilizer_index)

    graph = DecodingGraph("rotated_surface", distance, rounds, num_stabilizers,
                          num_data_qubits, frozenset(logical_support))
    total_rounds = rounds + 1
    for round_index in range(total_rounds):
        for stabilizer in range(num_stabilizers):
            graph.add_detector((stabilizer, round_index))
    for round_index in range(total_rounds):
        for qubit in range(num_data_qubits):
            stabilizers = membership[qubit]
            if len(stabilizers) == 2:
                graph.add_edge((stabilizers[0], round_index),
                               (stabilizers[1], round_index),
                               data_error_rate, "space", data_qubit=qubit,
                               round_index=round_index)
            elif len(stabilizers) == 1:
                graph.add_edge((stabilizers[0], round_index), BOUNDARY,
                               data_error_rate, "boundary", data_qubit=qubit,
                               round_index=round_index)
            else:   # pragma: no cover - every qubit touches ≥1 Z stabilizer
                raise RuntimeError("data qubit without stabilizer membership")
        if round_index + 1 < total_rounds:
            for stabilizer in range(num_stabilizers):
                graph.add_edge((stabilizer, round_index),
                               (stabilizer, round_index + 1),
                               measurement_error_rate, "time",
                               round_index=round_index)
    return graph
