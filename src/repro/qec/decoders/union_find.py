"""Union-Find decoder (cluster growth + erasure peeling).

The Union-Find decoder of Delfosse & Nickerson trades a small amount of
accuracy for almost-linear decoding time, which is exactly the trade the paper
highlights as attractive for the EFT era (Sec. 7).  The implementation here
follows the textbook structure:

1. **Cluster growth** — every defect seeds a cluster; clusters grow outwards
   by one edge layer per step and merge when they touch, until every cluster
   either contains an even number of defects or touches the boundary.
2. **Peeling** — within each grown cluster, a spanning forest is peeled from
   the leaves inwards; a leaf carrying a defect adds its edge to the
   correction and hands the defect to its parent.

The output interface matches :class:`repro.qec.decoders.mwpm.MWPMDecoder` so
the two can be swapped inside the memory experiment and benchmarked head to
head.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .base import SyndromeBatchDecoder
from .graph import BOUNDARY, DecodingEdge, DecodingGraph, Detector
from .mwpm import DecodeOutcome


class _DisjointSet:
    """Union-Find forest with parity and boundary bookkeeping per root."""

    def __init__(self):
        self._parent: Dict[object, object] = {}
        self.defect_parity: Dict[object, int] = {}
        self.touches_boundary: Dict[object, bool] = {}

    def add(self, node, is_defect: bool, is_boundary: bool) -> None:
        if node in self._parent:
            return
        self._parent[node] = node
        self.defect_parity[node] = 1 if is_defect else 0
        self.touches_boundary[node] = is_boundary

    def find(self, node):
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, node_a, node_b) -> None:
        root_a, root_b = self.find(node_a), self.find(node_b)
        if root_a == root_b:
            return
        self._parent[root_b] = root_a
        self.defect_parity[root_a] ^= self.defect_parity[root_b]
        self.touches_boundary[root_a] |= self.touches_boundary[root_b]

    def contains(self, node) -> bool:
        return node in self._parent

    def is_neutral(self, node) -> bool:
        root = self.find(node)
        return self.defect_parity[root] == 0 or self.touches_boundary[root]


class UnionFindDecoder(SyndromeBatchDecoder):
    """Cluster-growth + peeling decoder over a :class:`DecodingGraph`."""

    name = "union_find"

    def __init__(self, graph: DecodingGraph, max_growth_steps: Optional[int] = None):
        self._graph = graph
        # The decoding graph diameter bounds how far growth can ever need to go.
        self._max_growth_steps = (max_growth_steps if max_growth_steps is not None
                                  else graph.graph.number_of_nodes())

    def cache_token(self) -> tuple:
        return (self.name, int(self._max_growth_steps))

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    # -- cluster growth --------------------------------------------------------
    def _grow_clusters(self, defects: Sequence[Detector]
                       ) -> Tuple[Set[Tuple[object, object]], _DisjointSet]:
        """Grow clusters until each is even-parity or touches the boundary.

        The virtual boundary node never joins a cluster (it would incorrectly
        merge distant clusters); boundary edges only mark the cluster as
        boundary-touching and enter the erasure for the peeling step.
        """
        graph = self._graph.graph
        clusters = _DisjointSet()
        defect_set = set(defects)
        for defect in defects:
            clusters.add(defect, is_defect=True, is_boundary=False)
        erasure: Set[Tuple[object, object]] = set()

        for _ in range(self._max_growth_steps):
            active = [node for node in graph.nodes
                      if node != BOUNDARY and clusters.contains(node)
                      and not clusters.is_neutral(node)]
            if not active:
                break
            newly_added: List[Tuple[object, object]] = []
            for node in active:
                for neighbor in graph.neighbors(node):
                    if (node, neighbor) in erasure or (neighbor, node) in erasure:
                        continue
                    newly_added.append((node, neighbor))
            for node, neighbor in newly_added:
                erasure.add((node, neighbor))
                if neighbor == BOUNDARY:
                    clusters.touches_boundary[clusters.find(node)] = True
                    continue
                clusters.add(neighbor, is_defect=neighbor in defect_set,
                             is_boundary=False)
                clusters.union(node, neighbor)
        return erasure, clusters

    # -- peeling ----------------------------------------------------------------
    def _peel_cluster(self, cluster_nodes: Set[object],
                      erasure_graph: nx.Graph,
                      defects: Set[Detector],
                      use_boundary: bool) -> List[DecodingEdge]:
        """Peel one cluster's spanning tree into correction edges."""
        nodes = set(cluster_nodes)
        if use_boundary and BOUNDARY in erasure_graph:
            nodes.add(BOUNDARY)
        subgraph = erasure_graph.subgraph(
            node for node in nodes if node in erasure_graph)
        cluster_defects = cluster_nodes & defects
        if not cluster_defects:
            return []
        if use_boundary and BOUNDARY in subgraph:
            root = BOUNDARY
        else:
            root = next(iter(cluster_defects))
        component = nx.node_connected_component(subgraph, root)
        subgraph = subgraph.subgraph(component)
        tree = nx.bfs_tree(subgraph, root)
        order = list(nx.topological_sort(tree))
        carries_defect = {node: node in cluster_defects for node in subgraph}
        correction: List[DecodingEdge] = []
        for node in reversed(order):
            if node == root:
                continue
            parent = next(tree.predecessors(node))
            if carries_defect[node]:
                edge = subgraph.get_edge_data(node, parent)["edge_ref"]
                correction.append(edge)
                carries_defect[node] = False
                if parent != BOUNDARY:
                    carries_defect[parent] = not carries_defect[parent]
        return correction

    def _peel(self, erasure: Set[Tuple[object, object]],
              clusters: _DisjointSet,
              defects: Sequence[Detector]) -> List[DecodingEdge]:
        if not erasure:
            return []
        erasure_graph = nx.Graph()
        for node_a, node_b in erasure:
            edge = self._graph.edge_between(node_a, node_b)
            if edge is None:
                continue
            erasure_graph.add_edge(node_a, node_b, edge_ref=edge)
        defect_set = set(defects)
        # Group cluster members by their union-find root.
        members: Dict[object, Set[object]] = {}
        for node in list(clusters.defect_parity):
            if not clusters.contains(node):
                continue
            members.setdefault(clusters.find(node), set()).add(node)
        correction: List[DecodingEdge] = []
        for root, nodes in members.items():
            parity_odd = clusters.defect_parity[root] == 1
            correction.extend(self._peel_cluster(
                nodes, erasure_graph, defect_set, use_boundary=parity_odd))
        return correction

    # -- decoding -----------------------------------------------------------------
    def decode(self, defects: Sequence[Detector]) -> DecodeOutcome:
        defects = list(dict.fromkeys(defects))
        if not defects:
            return DecodeOutcome([], [], 0.0)
        for defect in defects:
            if defect not in self._graph.graph:
                raise ValueError(f"unknown detector {defect!r}")
        erasure, clusters = self._grow_clusters(defects)
        correction = self._peel(erasure, clusters, defects)
        total_weight = sum(edge.weight for edge in correction)
        return DecodeOutcome(correction=correction, matched_pairs=[],
                             total_weight=total_weight)
