"""Clique-style predecoder.

Pre-decoders (e.g. the clique decoder and ProMatch cited in the paper's
Sec. 7) resolve the overwhelmingly common *trivial* syndromes — isolated
defect pairs produced by a single data or measurement error — with a tiny
amount of logic, and only forward the rare hard residue to the expensive
backing decoder.  The figure of merit is the *offload fraction*: how much of
the syndrome stream never reaches the main decoder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from .base import SyndromeBatchDecoder, decoder_cache_token
from .graph import BOUNDARY, DecodingEdge, DecodingGraph, Detector
from .mwpm import DecodeOutcome, MWPMDecoder


class CliquePredecoder(SyndromeBatchDecoder):
    """Match isolated adjacent defect pairs, delegate the rest."""

    name = "clique_predecoder"

    def __init__(self, graph: DecodingGraph, backing_decoder: Optional[object] = None):
        self._graph = graph
        self._backing = (backing_decoder if backing_decoder is not None
                         else MWPMDecoder(graph))
        self.predecoded_defects = 0
        self.forwarded_defects = 0

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    @property
    def offload_fraction(self) -> float:
        total = self.predecoded_defects + self.forwarded_defects
        return self.predecoded_defects / total if total else 0.0

    def cache_token(self) -> Optional[tuple]:
        backing_token = decoder_cache_token(self._backing)
        if backing_token is None:
            return None
        return (self.name,) + backing_token

    def reset_counters(self) -> None:
        """Zero the offload tallies (fresh accounting for a new batch)."""
        self.predecoded_defects = 0
        self.forwarded_defects = 0

    # -- internals --------------------------------------------------------------
    def _neighbors(self, defect: Detector) -> Set[Detector]:
        return {node for node in self._graph.graph.neighbors(defect)
                if node != BOUNDARY}

    def _is_isolated_pair(self, defect: Detector, partner: Detector,
                          defect_set: Set[Detector]) -> bool:
        """Both defects adjacent, and neither has any other defect neighbor."""
        if partner not in self._neighbors(defect):
            return False
        for node in (defect, partner):
            other_defect_neighbors = self._neighbors(node) & defect_set
            other_defect_neighbors.discard(defect)
            other_defect_neighbors.discard(partner)
            if other_defect_neighbors:
                return False
        return True

    # -- decoding -----------------------------------------------------------------
    def decode(self, defects: Sequence[Detector]) -> DecodeOutcome:
        defect_set = set(defects)
        for defect in defect_set:
            if defect not in self._graph.graph:
                raise ValueError(f"unknown detector {defect!r}")
        correction: List[DecodingEdge] = []
        matched_pairs: List[Tuple[object, object]] = []
        handled: Set[Detector] = set()
        for defect in sorted(defect_set, key=repr):
            if defect in handled:
                continue
            for partner in sorted(self._neighbors(defect) & defect_set, key=repr):
                if partner in handled or partner == defect:
                    continue
                if self._is_isolated_pair(defect, partner, defect_set - handled):
                    edge = self._graph.edge_between(defect, partner)
                    if edge is None:
                        continue
                    correction.append(edge)
                    matched_pairs.append((defect, partner))
                    handled.update((defect, partner))
                    break
        self.predecoded_defects += len(handled)
        remaining = [defect for defect in defects if defect not in handled]
        self.forwarded_defects += len(set(remaining))
        total_weight = sum(edge.weight for edge in correction)
        if remaining:
            backing_outcome = self._backing.decode(remaining)
            correction.extend(backing_outcome.correction)
            matched_pairs.extend(backing_outcome.matched_pairs)
            total_weight += backing_outcome.total_weight
        return DecodeOutcome(correction=correction, matched_pairs=matched_pairs,
                             total_weight=total_weight)
