"""Bounded-weight lookup-table decoder.

Astrea-style decoders precompute the correction for every syndrome reachable
from a small number of elementary errors, which is feasible for the small code
distances of the EFT era.  This decoder enumerates all error sets up to
``max_error_weight`` elementary mechanisms (decoding-graph edges), stores the
minimum-weight correction for every resulting syndrome, and falls back to a
backing decoder (MWPM by default) for syndromes outside the table.

For batched Monte-Carlo decoding the table is additionally compiled into a
packed-bit array (one row per table syndrome, columns following the graph's
canonical detector order), so :meth:`LookupDecoder.decode_batch` probes the
whole unique-syndrome matrix with one ``np.searchsorted`` instead of a
Python dict lookup per shot; only the (rare) misses reach the fallback.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..bitops import pack_rows, unpack_rows
from .base import SyndromeBatchDecoder, decoder_cache_token
from .graph import BOUNDARY, DecodingEdge, DecodingGraph, Detector
from .mwpm import DecodeOutcome, MWPMDecoder


def syndrome_of_edges(edges: Sequence[DecodingEdge]) -> FrozenSet[Detector]:
    """Detectors flipped an odd number of times by a set of error edges."""
    counts: Dict[Detector, int] = {}
    for edge in edges:
        for node in (edge.node_a, edge.node_b):
            if node == BOUNDARY:
                continue
            counts[node] = counts.get(node, 0) + 1
    return frozenset(node for node, count in counts.items() if count % 2)


class LookupDecoder(SyndromeBatchDecoder):
    """Exhaustive bounded-weight decoder with a configurable fallback.

    ``fallback_count`` counts decodes the table could not serve.  On the
    per-shot :meth:`decode` path that is one count per call; on the batched
    :meth:`decode_batch` path it is one count per **unique** syndrome
    outside the table (duplicates of a shot never re-count).  Use
    :meth:`reset_counters` to start fresh accounting for a new batch.
    """

    name = "lookup"

    def __init__(self, graph: DecodingGraph, max_error_weight: int = 2,
                 fallback: Optional[object] = None):
        if max_error_weight < 1:
            raise ValueError("max_error_weight must be at least 1")
        self._graph = graph
        self._max_error_weight = int(max_error_weight)
        self._fallback = fallback if fallback is not None else MWPMDecoder(graph)
        # The detector set is fixed at construction; validating incoming
        # defects against this set is O(len(defects)) instead of a graph
        # lookup per defect per call.
        self._known_detectors = frozenset(graph.detectors)
        self._table = self._build_table()
        self._batch_table: Optional[Tuple[np.ndarray, np.ndarray,
                                          List[Detector]]] = None
        self.fallback_count = 0

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    @property
    def table_size(self) -> int:
        return len(self._table)

    @property
    def max_error_weight(self) -> int:
        return self._max_error_weight

    def cache_token(self) -> Optional[tuple]:
        fallback_token = decoder_cache_token(self._fallback)
        if fallback_token is None:
            return None
        return (self.name, int(self._max_error_weight)) + fallback_token

    def reset_counters(self) -> None:
        """Zero ``fallback_count`` (fresh accounting for a new batch)."""
        self.fallback_count = 0

    def _build_table(self) -> Dict[FrozenSet[Detector], Tuple[DecodingEdge, ...]]:
        table: Dict[FrozenSet[Detector], Tuple[DecodingEdge, ...]] = {
            frozenset(): ()}
        edges = self._graph.edges
        for weight in range(1, self._max_error_weight + 1):
            for combination in itertools.combinations(edges, weight):
                syndrome = syndrome_of_edges(combination)
                total = sum(edge.weight for edge in combination)
                existing = table.get(syndrome)
                if existing is None or total < sum(e.weight for e in existing):
                    table[syndrome] = tuple(combination)
        return table

    # -- vectorized batch path ----------------------------------------------
    def _compiled_batch_table(self) -> Tuple[np.ndarray, np.ndarray,
                                             List[Detector]]:
        """``(sorted packed-word keys, per-row logical flips, detectors)``.

        Each table syndrome becomes one bit-packed ``uint64`` word row
        (:func:`repro.qec.bitops.pack_rows` layout); rows are sorted
        lexicographically over their raw bytes so a batch of query rows
        resolves with a single ``np.searchsorted``, and packed query
        batches probe the table without ever materializing dense rows.
        """
        if self._batch_table is None:
            detectors = self._graph.detector_order()
            index = {detector: i for i, detector in enumerate(detectors)}
            masks = np.zeros((len(self._table), len(detectors)),
                             dtype=np.uint8)
            flips = np.zeros(len(self._table), dtype=bool)
            for row, (syndrome, correction) in enumerate(self._table.items()):
                for detector in syndrome:
                    masks[row, index[detector]] = 1
                flips[row] = (sum(1 for edge in correction
                                  if edge.flips_logical) % 2 == 1)
            keys = self._word_keys(pack_rows(masks, len(detectors)))
            order = np.argsort(keys)
            self._batch_table = (keys[order], flips[order], detectors)
        return self._batch_table

    @staticmethod
    def _word_keys(words: np.ndarray) -> np.ndarray:
        """Fixed-length bytes view of packed word rows.

        The S dtype gives a total lexicographic order with a well-defined
        ``searchsorted``; rows share a length and packed tail bits are
        zero, so trailing-null trimming cannot conflate two rows.
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        return words.view(f"S{words.shape[1] * words.itemsize}").ravel()

    def _decode_unique(self, unique: np.ndarray,
                       detectors: Sequence[Detector]) -> np.ndarray:
        haystack, table_flips, table_detectors = \
            self._compiled_batch_table()
        if list(detectors) != table_detectors:
            # Foreign column order: fall back to the generic per-row path.
            return super()._decode_unique(unique, detectors)
        return self._probe_table(
            self._word_keys(pack_rows(unique, len(table_detectors))),
            lambda row: np.flatnonzero(unique[row]))

    def _decode_unique_packed(self, unique_words: np.ndarray,
                              detectors: Sequence[Detector]) -> np.ndarray:
        haystack, table_flips, table_detectors = \
            self._compiled_batch_table()
        if list(detectors) != table_detectors:
            return super()._decode_unique_packed(unique_words, detectors)
        # Misses are rare (the table covers all low-weight syndromes), so
        # only miss rows ever get unpacked to dense bits.
        return self._probe_table(
            self._word_keys(unique_words),
            lambda row: np.flatnonzero(
                unpack_rows(unique_words[row], len(table_detectors))))

    def _probe_table(self, queries: np.ndarray, defect_columns) -> np.ndarray:
        """One ``searchsorted`` probe; ``defect_columns(row)`` serves misses."""
        haystack, table_flips, table_detectors = self._compiled_batch_table()
        positions = np.searchsorted(haystack, queries)
        positions = np.minimum(positions, len(haystack) - 1)
        hits = haystack[positions] == queries
        flips = np.zeros(queries.shape[0], dtype=bool)
        flips[hits] = table_flips[positions[hits]]
        for row in np.flatnonzero(~hits):
            defects = [table_detectors[column]
                       for column in defect_columns(int(row))]
            self.fallback_count += 1
            flips[row] = bool(self._fallback.decode(defects).flips_logical)
        return flips

    # -- per-shot path -------------------------------------------------------
    def decode(self, defects: Sequence[Detector]) -> DecodeOutcome:
        syndrome = frozenset(defects)
        unknown = syndrome - self._known_detectors
        if unknown:
            raise ValueError(f"unknown detector {next(iter(unknown))!r}")
        entry = self._table.get(syndrome)
        if entry is None:
            self.fallback_count += 1
            # Canonical (sorted) defect order: degenerate matchings then
            # tie-break identically however the syndrome was delivered,
            # keeping the per-shot and batched paths bitwise equal.
            return self._fallback.decode(sorted(syndrome))
        correction = list(entry)
        return DecodeOutcome(correction=correction, matched_pairs=[],
                             total_weight=sum(edge.weight for edge in correction))
