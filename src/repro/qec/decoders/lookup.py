"""Bounded-weight lookup-table decoder.

Astrea-style decoders precompute the correction for every syndrome reachable
from a small number of elementary errors, which is feasible for the small code
distances of the EFT era.  This decoder enumerates all error sets up to
``max_error_weight`` elementary mechanisms (decoding-graph edges), stores the
minimum-weight correction for every resulting syndrome, and falls back to a
backing decoder (MWPM by default) for syndromes outside the table.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from .graph import BOUNDARY, DecodingEdge, DecodingGraph, Detector
from .mwpm import DecodeOutcome, MWPMDecoder


def syndrome_of_edges(edges: Sequence[DecodingEdge]) -> FrozenSet[Detector]:
    """Detectors flipped an odd number of times by a set of error edges."""
    counts: Dict[Detector, int] = {}
    for edge in edges:
        for node in (edge.node_a, edge.node_b):
            if node == BOUNDARY:
                continue
            counts[node] = counts.get(node, 0) + 1
    return frozenset(node for node, count in counts.items() if count % 2)


class LookupDecoder:
    """Exhaustive bounded-weight decoder with a configurable fallback."""

    name = "lookup"

    def __init__(self, graph: DecodingGraph, max_error_weight: int = 2,
                 fallback: Optional[object] = None):
        if max_error_weight < 1:
            raise ValueError("max_error_weight must be at least 1")
        self._graph = graph
        self._max_error_weight = int(max_error_weight)
        self._fallback = fallback if fallback is not None else MWPMDecoder(graph)
        self._table = self._build_table()
        self.fallback_count = 0

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    @property
    def table_size(self) -> int:
        return len(self._table)

    @property
    def max_error_weight(self) -> int:
        return self._max_error_weight

    def _build_table(self) -> Dict[FrozenSet[Detector], Tuple[DecodingEdge, ...]]:
        table: Dict[FrozenSet[Detector], Tuple[DecodingEdge, ...]] = {
            frozenset(): ()}
        edges = self._graph.edges
        for weight in range(1, self._max_error_weight + 1):
            for combination in itertools.combinations(edges, weight):
                syndrome = syndrome_of_edges(combination)
                total = sum(edge.weight for edge in combination)
                existing = table.get(syndrome)
                if existing is None or total < sum(e.weight for e in existing):
                    table[syndrome] = tuple(combination)
        return table

    def decode(self, defects: Sequence[Detector]) -> DecodeOutcome:
        syndrome = frozenset(defects)
        for defect in syndrome:
            if defect not in self._graph.graph:
                raise ValueError(f"unknown detector {defect!r}")
        entry = self._table.get(syndrome)
        if entry is None:
            self.fallback_count += 1
            return self._fallback.decode(list(syndrome))
        correction = list(entry)
        return DecodeOutcome(correction=correction, matched_pairs=[],
                             total_weight=sum(edge.weight for edge in correction))
