"""Monte-Carlo quantum-memory experiments with matching decoding.

The paper derives error-corrected operation error rates by simulating
surface-code operations in Stim (Sec. 5.2.1).  As the offline substitute,
this module runs phenomenological-noise memory experiments on the repetition
code — the X (or Z) sector of the surface code decodes in exactly this way —
with a real space–time matching decoder, and exposes the empirical logical
error rate per round.

Two uses in the repository:

* validating the *shape* of the analytic surface-code model in
  :mod:`repro.qec.surface_code` (exponential suppression with distance below
  threshold, degradation above threshold) — see the ablation benchmark; and
* providing an end-to-end "stabilizer-circuit + decoder" substrate so that
  the QEC stack is exercised beyond closed-form formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .decoder import repetition_code_decoder


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Outcome of a Monte-Carlo memory experiment."""

    distance: int
    rounds: int
    physical_error_rate: float
    measurement_error_rate: float
    shots: int
    logical_failures: int

    @property
    def logical_error_rate(self) -> float:
        """Probability of a logical failure over the whole experiment."""
        return self.logical_failures / self.shots if self.shots else 0.0

    @property
    def logical_error_per_round(self) -> float:
        """Per-round logical error rate, assuming independent rounds."""
        if self.shots == 0 or self.rounds == 0:
            return 0.0
        survival = 1.0 - self.logical_error_rate
        survival = min(max(survival, 1e-12), 1.0)
        return 1.0 - survival ** (1.0 / self.rounds)


class RepetitionCodeMemory:
    """Phenomenological-noise memory experiment on a distance-d repetition code.

    Each round every data qubit flips independently with probability ``p``
    and every stabilizer measurement reports the wrong value with probability
    ``q``.  Detectors are syndrome *changes* between consecutive rounds (the
    final round is read out perfectly through data-qubit measurement, the
    standard memory-experiment convention).  Decoding matches detector
    defects on the (space, time) lattice.
    """

    def __init__(self, distance: int, rounds: Optional[int] = None,
                 physical_error_rate: float = 1e-3,
                 measurement_error_rate: Optional[float] = None,
                 seed: Optional[int] = None):
        if distance < 3 or distance % 2 == 0:
            raise ValueError("distance must be an odd integer ≥ 3")
        self.distance = distance
        self.rounds = rounds if rounds is not None else distance
        self.physical_error_rate = float(physical_error_rate)
        self.measurement_error_rate = (self.physical_error_rate
                                       if measurement_error_rate is None
                                       else float(measurement_error_rate))
        self._rng = np.random.default_rng(seed)
        self._decoder = repetition_code_decoder(distance)

    # -- single-shot machinery ---------------------------------------------------
    def _run_shot(self) -> bool:
        """Run one shot; returns True when a logical failure occurred."""
        d = self.distance
        rounds = self.rounds
        data_error = np.zeros(d, dtype=np.uint8)
        previous_syndrome = np.zeros(d - 1, dtype=np.uint8)
        defects: List[Tuple[float, float]] = []

        for round_index in range(rounds):
            flips = self._rng.random(d) < self.physical_error_rate
            data_error ^= flips.astype(np.uint8)
            syndrome = data_error[:-1] ^ data_error[1:]
            measured = syndrome ^ (self._rng.random(d - 1)
                                   < self.measurement_error_rate).astype(np.uint8)
            changes = measured ^ previous_syndrome
            previous_syndrome = measured
            for position in np.nonzero(changes)[0]:
                defects.append((float(position), float(round_index)))

        # Final perfect readout round: measure data qubits directly, which
        # reveals the true final syndrome.
        final_syndrome = data_error[:-1] ^ data_error[1:]
        changes = final_syndrome ^ previous_syndrome
        for position in np.nonzero(changes)[0]:
            defects.append((float(position), float(rounds)))

        correction = self._correction_from_matching(defects)
        residual = data_error ^ correction
        # A valid residual is a stabilizer (all zeros) or the logical operator
        # (all ones); the decoder guarantees residual has trivial syndrome, so
        # inspecting one qubit suffices.
        return bool(residual[0])

    def _correction_from_matching(self, defects: Sequence[Tuple[float, float]]
                                  ) -> np.ndarray:
        """Convert matched defect pairs into data-qubit flips."""
        d = self.distance
        correction = np.zeros(d, dtype=np.uint8)
        for pair in self._decoder.decode(list(defects)):
            position_a = int(pair.first[0])
            if pair.to_boundary:
                # Flip the shorter chain to the nearest end.
                if position_a + 1 <= d - 1 - position_a:
                    correction[:position_a + 1] ^= 1
                else:
                    correction[position_a + 1:] ^= 1
            else:
                position_b = int(pair.second[0])
                low, high = sorted((position_a, position_b))
                correction[low + 1:high + 1] ^= 1
        return correction

    # -- experiment -----------------------------------------------------------------
    def run(self, shots: int = 200) -> MemoryExperimentResult:
        if shots < 1:
            raise ValueError("need at least one shot")
        failures = sum(1 for _ in range(shots) if self._run_shot())
        return MemoryExperimentResult(
            distance=self.distance,
            rounds=self.rounds,
            physical_error_rate=self.physical_error_rate,
            measurement_error_rate=self.measurement_error_rate,
            shots=shots,
            logical_failures=failures,
        )


def logical_error_rate_sweep(distances: Sequence[int],
                             physical_error_rates: Sequence[float],
                             shots: int = 200,
                             rounds: Optional[int] = None,
                             seed: int = 7) -> Dict[Tuple[int, float], float]:
    """Empirical logical error rates over a (distance, physical rate) grid."""
    results: Dict[Tuple[int, float], float] = {}
    for distance in distances:
        for rate in physical_error_rates:
            experiment = RepetitionCodeMemory(
                distance, rounds=rounds, physical_error_rate=rate,
                seed=seed + distance * 1000 + int(rate * 1e6))
            results[(distance, rate)] = experiment.run(shots).logical_error_rate
    return results
