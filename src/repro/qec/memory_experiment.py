"""Monte-Carlo quantum-memory experiments with matching decoding.

The paper derives error-corrected operation error rates by simulating
surface-code operations in Stim (Sec. 5.2.1).  As the offline substitute,
this module runs phenomenological-noise memory experiments on the repetition
code — the X (or Z) sector of the surface code decodes in exactly this way —
with a real space–time matching decoder, and exposes the empirical logical
error rate per round.

Since PR 5 the experiment rides the batched sampling pipeline
(:mod:`repro.qec.sampling`): all shots draw as one Bernoulli matrix over the
repetition code's decoding graph, syndromes fall out of one mod-2 matmul,
and the matching decoder decodes only the *unique* syndromes.  Seeded runs
are deterministic for any worker count and cache their aggregate in the
execution layer's expectation cache.  The historical one-shot-at-a-time
machinery (:meth:`RepetitionCodeMemory._run_shot` /
:meth:`RepetitionCodeMemory.run_reference`) is retained as the reference
implementation the equivalence tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .decoder import MatchingDecoder, repetition_code_decoder
from .decoders.base import SyndromeBatchDecoder
from .decoders.graph import DecodingGraph, repetition_code_graph
from .sampling import (SeedLike, binomial_standard_error, run_memory_sampling,
                       wilson_interval)


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Outcome of a Monte-Carlo memory experiment."""

    distance: int
    rounds: int
    physical_error_rate: float
    measurement_error_rate: float
    shots: int
    logical_failures: int

    @property
    def logical_error_rate(self) -> float:
        """Probability of a logical failure over the whole experiment."""
        return self.logical_failures / self.shots if self.shots else 0.0

    @property
    def logical_error_per_round(self) -> float:
        """Per-round logical error rate, assuming independent rounds."""
        if self.shots == 0 or self.rounds == 0:
            return 0.0
        survival = 1.0 - self.logical_error_rate
        survival = min(max(survival, 1e-12), 1.0)
        return 1.0 - survival ** (1.0 / self.rounds)

    @property
    def standard_error(self) -> float:
        """Binomial standard error of :attr:`logical_error_rate`."""
        return binomial_standard_error(self.logical_failures, self.shots)

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score confidence interval for the logical error rate."""
        return wilson_interval(self.logical_failures, self.shots, z=z)


# ---------------------------------------------------------------------------
# The repetition matching decoder (graph-protocol adapter)
# ---------------------------------------------------------------------------


def matching_correction(distance: int, pairs) -> np.ndarray:
    """Convert matched defect pairs into per-data-qubit flips.

    ``pairs`` are :class:`~repro.qec.decoder.MatchedPair` objects whose
    coordinates are ``(check position, round)``; a boundary match flips the
    shorter chain to the nearest end, a pair match flips the chain between
    the two checks.
    """
    correction = np.zeros(distance, dtype=np.uint8)
    for pair in pairs:
        position_a = int(pair.first[0])
        if pair.to_boundary:
            if position_a + 1 <= distance - 1 - position_a:
                correction[:position_a + 1] ^= 1
            else:
                correction[position_a + 1:] ^= 1
        else:
            position_b = int(pair.second[0])
            low, high = sorted((position_a, position_b))
            correction[low + 1:high + 1] ^= 1
    return correction


@dataclass(frozen=True)
class MatchingOutcome:
    """Decode outcome of the repetition matching adapter."""

    flips_logical: bool
    correction: np.ndarray
    pairs: tuple


class RepetitionMatchingDecoder(SyndromeBatchDecoder):
    """The classic coordinate matching decoder behind the graph protocol.

    Adapts :func:`repro.qec.decoder.repetition_code_decoder` (Manhattan
    matching on ``(position, round)`` defect coordinates — the decoder the
    per-shot repetition memory experiment always used) to the decoding-graph
    interface, so it plugs into ``decode_batch`` and the batched sampling
    pipeline next to MWPM, Union-Find, lookup and the clique predecoder.
    """

    name = "repetition_matching"

    def __init__(self, graph: DecodingGraph, time_weight: float = 1.0):
        if graph.logical_support != frozenset({0}):
            raise ValueError("RepetitionMatchingDecoder requires a repetition"
                             " decoding graph (logical support {0})")
        self._graph = graph
        self._time_weight = float(time_weight)
        self._decoder: MatchingDecoder = repetition_code_decoder(
            graph.distance, time_weight=self._time_weight)

    @property
    def decoding_graph(self) -> DecodingGraph:
        return self._graph

    def cache_token(self) -> tuple:
        return (self.name, self._time_weight)

    def decode(self, defects: Sequence) -> MatchingOutcome:
        """Match graph detectors ``(check, round)`` and derive the flips."""
        coordinates = [(float(check), float(round_index))
                       for check, round_index in defects]
        pairs = tuple(self._decoder.decode(coordinates))
        correction = matching_correction(self._graph.distance, pairs)
        # Logical support of the repetition graph is data qubit 0.
        return MatchingOutcome(flips_logical=bool(correction[0]),
                               correction=correction, pairs=pairs)


# ---------------------------------------------------------------------------
# The memory experiment
# ---------------------------------------------------------------------------


class RepetitionCodeMemory:
    """Phenomenological-noise memory experiment on a distance-d repetition code.

    Each round every data qubit flips independently with probability ``p``
    and every stabilizer measurement reports the wrong value with probability
    ``q``.  Detectors are syndrome *changes* between consecutive rounds (the
    final round is read out perfectly through data-qubit measurement, the
    standard memory-experiment convention).  Decoding matches detector
    defects on the (space, time) lattice.

    :meth:`run` samples all shots at once through the batched pipeline and
    is deterministic per ``seed`` (repeat calls return the same — typically
    cache-served — result).  :meth:`run_reference` is the historical
    one-shot-at-a-time loop, kept for equivalence testing.
    """

    def __init__(self, distance: int, rounds: Optional[int] = None,
                 physical_error_rate: float = 1e-3,
                 measurement_error_rate: Optional[float] = None,
                 seed: SeedLike = None):
        if distance < 3 or distance % 2 == 0:
            raise ValueError("distance must be an odd integer ≥ 3")
        self.distance = distance
        self.rounds = rounds if rounds is not None else distance
        self.physical_error_rate = float(physical_error_rate)
        self.measurement_error_rate = (self.physical_error_rate
                                       if measurement_error_rate is None
                                       else float(measurement_error_rate))
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._decoder = repetition_code_decoder(distance)
        self._graph: Optional[DecodingGraph] = None
        self._batch_decoder: Optional[RepetitionMatchingDecoder] = None

    # -- batched machinery ------------------------------------------------------
    def _graph_and_decoder(self) -> Tuple[DecodingGraph,
                                          RepetitionMatchingDecoder]:
        if self._graph is None:
            self._graph = repetition_code_graph(
                self.distance, self.rounds, self.physical_error_rate,
                self.measurement_error_rate)
            self._batch_decoder = RepetitionMatchingDecoder(self._graph)
        return self._graph, self._batch_decoder

    # -- single-shot machinery (reference implementation) -----------------------
    def _run_shot(self) -> bool:
        """Run one shot; returns True when a logical failure occurred."""
        d = self.distance
        rounds = self.rounds
        data_error = np.zeros(d, dtype=np.uint8)
        previous_syndrome = np.zeros(d - 1, dtype=np.uint8)
        defects: List[Tuple[float, float]] = []

        for round_index in range(rounds):
            flips = self._rng.random(d) < self.physical_error_rate
            data_error ^= flips.astype(np.uint8)
            syndrome = data_error[:-1] ^ data_error[1:]
            measured = syndrome ^ (self._rng.random(d - 1)
                                   < self.measurement_error_rate).astype(np.uint8)
            changes = measured ^ previous_syndrome
            previous_syndrome = measured
            for position in np.nonzero(changes)[0]:
                defects.append((float(position), float(round_index)))

        # Final perfect readout round: measure data qubits directly, which
        # reveals the true final syndrome.
        final_syndrome = data_error[:-1] ^ data_error[1:]
        changes = final_syndrome ^ previous_syndrome
        for position in np.nonzero(changes)[0]:
            defects.append((float(position), float(rounds)))

        correction = self._correction_from_matching(defects)
        residual = data_error ^ correction
        # A valid residual is a stabilizer (all zeros) or the logical operator
        # (all ones); the decoder guarantees residual has trivial syndrome, so
        # inspecting one qubit suffices.
        return bool(residual[0])

    def _correction_from_matching(self, defects: Sequence[Tuple[float, float]]
                                  ) -> np.ndarray:
        """Convert matched defect pairs into data-qubit flips."""
        return matching_correction(self.distance,
                                   self._decoder.decode(list(defects)))

    # -- experiment -----------------------------------------------------------------
    def _result(self, shots: int, failures: int) -> MemoryExperimentResult:
        return MemoryExperimentResult(
            distance=self.distance,
            rounds=self.rounds,
            physical_error_rate=self.physical_error_rate,
            measurement_error_rate=self.measurement_error_rate,
            shots=shots,
            logical_failures=failures,
        )

    def run(self, shots: int = 200, *, executor=None,
            parallel: Optional[str] = None,
            max_workers: Optional[int] = None,
            use_cache: Optional[bool] = None) -> MemoryExperimentResult:
        """Run ``shots`` through the batched, executor-routed pipeline.

        Deterministic per construction seed: failure counts are bitwise
        identical for any ``max_workers`` / ``parallel`` choice, and seeded
        repeats are served from the executor's expectation cache.
        """
        if shots < 1:
            raise ValueError("need at least one shot")
        graph, decoder = self._graph_and_decoder()
        run = run_memory_sampling(graph, decoder, shots, seed=self._seed,
                                  executor=executor, parallel=parallel,
                                  max_workers=max_workers,
                                  use_cache=use_cache)
        return self._result(shots, run.failures)

    def run_reference(self, shots: int = 200) -> MemoryExperimentResult:
        """The historical per-shot loop (consumes this instance's RNG)."""
        if shots < 1:
            raise ValueError("need at least one shot")
        failures = sum(1 for _ in range(shots) if self._run_shot())
        return self._result(shots, failures)


def logical_error_rate_sweep(distances: Sequence[int],
                             physical_error_rates: Sequence[float],
                             shots: int = 200,
                             rounds: Optional[int] = None,
                             seed: int = 7,
                             executor=None,
                             parallel: Optional[str] = None,
                             max_workers: Optional[int] = None,
                             use_cache: Optional[bool] = None
                             ) -> Dict[Tuple[int, float], float]:
    """Empirical logical error rates over a (distance, physical rate) grid.

    Every grid cell gets an independent child of ``SeedSequence(seed)``
    (spawn keys enumerate the grid row-major), so cells can never collide —
    the historical ``seed + distance * 1000 + int(rate * 1e6)`` derivation
    could hand two cells the same stream.  Seeded cells are cached in the
    execution layer, so re-running a sweep decodes nothing.
    """
    distances = list(distances)
    physical_error_rates = list(physical_error_rates)
    children = np.random.SeedSequence(seed).spawn(
        len(distances) * len(physical_error_rates))
    results: Dict[Tuple[int, float], float] = {}
    for row, distance in enumerate(distances):
        for column, rate in enumerate(physical_error_rates):
            child = children[row * len(physical_error_rates) + column]
            experiment = RepetitionCodeMemory(
                distance, rounds=rounds, physical_error_rate=rate, seed=child)
            result = experiment.run(shots, executor=executor,
                                    parallel=parallel,
                                    max_workers=max_workers,
                                    use_cache=use_cache)
            results[(distance, rate)] = result.logical_error_rate
    return results
