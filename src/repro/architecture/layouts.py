"""Logical-qubit layouts (paper Sec. 4.1, Fig. 3, Table 1).

A layout determines

* the *space* footprint: how many surface-code tiles (patches) the
  computation occupies per logical data qubit, including routing ancilla and
  magic-state storage — summarized by the packing efficiency
  ``PE = data patches / total patches``;
* the *time* behaviour: the latency of CNOT clusters (whether extra patch
  rotations are needed), how many lattice-surgery operations can proceed
  concurrently, and how many Rz magic states can be consumed in parallel.

The proposed layout of Fig. 3 is parameterized by ``k`` (N = 4k+4 data
qubits) and reaches PE = 4(k+1)/(6(k+2)) → ≈67%.  The comparison layouts
(Litinski's Compact / Intermediate / Fast and the Grid layout of
Javadi-Abhari et al.) are modelled by their per-qubit tile footprints and
operation latencies, calibrated as documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..qec.surface_code import EFT_CODE_DISTANCE, SurfaceCodePatch
from .lattice_surgery import (FAST_CNOT_CLUSTER_CYCLES,
                              SLOW_CNOT_CLUSTER_CYCLES)


@dataclass(frozen=True)
class LayoutSpec:
    """Static description of a layout hosting ``num_data_qubits`` logical qubits."""

    name: str
    num_data_qubits: int
    total_tiles: int
    cnot_cycles_fast: int
    cnot_cycles_slow: int
    supports_parallel_blocks: bool
    parallel_rotations: int
    parallel_magic_state_slots: int

    @property
    def data_tiles(self) -> int:
        return self.num_data_qubits

    @property
    def ancilla_tiles(self) -> int:
        return self.total_tiles - self.num_data_qubits

    @property
    def packing_efficiency(self) -> float:
        return self.num_data_qubits / self.total_tiles

    def physical_qubits(self, distance: int = EFT_CODE_DISTANCE) -> int:
        patch = SurfaceCodePatch(distance)
        return self.total_tiles * patch.physical_qubits


class Layout:
    """Base class: builds a :class:`LayoutSpec` and answers region queries."""

    name = "layout"

    def __init__(self, num_data_qubits: int):
        if num_data_qubits < 2:
            raise ValueError("a layout needs at least two data qubits")
        self.num_data_qubits = int(num_data_qubits)

    # -- to be provided by subclasses -----------------------------------------
    def total_tiles(self) -> int:
        raise NotImplementedError

    def region_of(self, qubit: int) -> int:
        """Fast-region index of a data qubit (clusters within a region are fast)."""
        return 0

    def cnot_cycles(self, crosses_regions: bool) -> int:
        return SLOW_CNOT_CLUSTER_CYCLES if crosses_regions else FAST_CNOT_CLUSTER_CYCLES

    def supports_parallel_blocks(self) -> bool:
        return False

    def parallel_rotations(self) -> int:
        """How many Rz consumptions can proceed concurrently."""
        return self.num_data_qubits

    def parallel_magic_state_slots(self) -> int:
        """Distinct magic states that can be stored/consumed simultaneously."""
        return self.num_data_qubits

    # -- derived ---------------------------------------------------------------
    def spec(self) -> LayoutSpec:
        return LayoutSpec(
            name=self.name,
            num_data_qubits=self.num_data_qubits,
            total_tiles=self.total_tiles(),
            cnot_cycles_fast=self.cnot_cycles(False),
            cnot_cycles_slow=self.cnot_cycles(True),
            supports_parallel_blocks=self.supports_parallel_blocks(),
            parallel_rotations=self.parallel_rotations(),
            parallel_magic_state_slots=self.parallel_magic_state_slots(),
        )

    def packing_efficiency(self) -> float:
        return self.num_data_qubits / self.total_tiles()

    def physical_qubits(self, distance: int = EFT_CODE_DISTANCE) -> int:
        return self.spec().physical_qubits(distance)

    def cluster_crosses_regions(self, control: int, targets: Sequence[int]) -> bool:
        region = self.region_of(control)
        return any(self.region_of(target) != region for target in targets)

    def cluster_cycles(self, control: int, targets: Sequence[int]) -> int:
        """Latency of a single-control multi-target CNOT cluster on this layout."""
        return self.cnot_cycles(self.cluster_crosses_regions(control, targets))

    def requires_boundary_bus(self, control: int, targets: Sequence[int]) -> bool:
        """Whether the cluster must serialize on a shared boundary routing channel."""
        return False

    def __repr__(self):
        return (f"{type(self).__name__}(data={self.num_data_qubits}, "
                f"tiles={self.total_tiles()}, PE={self.packing_efficiency():.2f})")


class ProposedLayout(Layout):
    """The paper's layout (Fig. 3), parameterized by k with N = 4k + 4 data qubits.

    * four rows of k data qubits plus a column of 4 extra data qubits;
    * a routing/injection ancilla row adjacent to each pair of data rows, so
      every data qubit has injection space next to it;
    * total footprint 6(k+2) tiles ⇒ PE = 4(k+1) / (6(k+2)) → ≈ 2/3;
    * qubits 0…2k−1 (upper two rows) and 2k…4k−1 (lower two rows) form two
      fast regions; clusters confined to one region cost 4 cycles, clusters
      crossing regions or touching the extra column cost 8 cycles (Fig. 9);
    * up to 2·⌊k/3⌋ distinct magic states can be stored concurrently in the
      shared ancilla space.
    """

    name = "proposed"

    def __init__(self, num_data_qubits: Optional[int] = None, k: Optional[int] = None):
        if (num_data_qubits is None) == (k is None):
            raise ValueError("provide exactly one of num_data_qubits or k")
        if k is None:
            if num_data_qubits < 8 or (num_data_qubits - 4) % 4 != 0:
                raise ValueError("the proposed layout hosts N = 4k + 4 data qubits, k ≥ 1")
            k = (num_data_qubits - 4) // 4
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        super().__init__(4 * self.k + 4)

    def total_tiles(self) -> int:
        return 6 * (self.k + 2)

    def region_of(self, qubit: int) -> int:
        if qubit < 2 * self.k:
            return 0
        if qubit < 4 * self.k:
            return 1
        return 2  # extra column qubits

    def supports_parallel_blocks(self) -> bool:
        return True

    def parallel_rotations(self) -> int:
        # Injection ancilla sit adjacent to every data-qubit row (Fig. 3), so
        # rotations across data qubits are not serialized by the layout.
        return self.num_data_qubits

    def parallel_magic_state_slots(self) -> int:
        return max(1, 2 * (self.k // 3))

    def cluster_cycles(self, control: int, targets: Sequence[int]) -> int:
        """Fig. 9 cost rule with the linking-CNOT refinement of Fig. 10.

        Multi-target clusters that span both halves of the layout (the upper
        rows, region 0, and the lower rows, region 1) need the extra
        patch-rotation steps of Fig. 9(B) and cost 8 cycles.  Everything else
        — clusters confined to one half, clusters that only reach into the
        extra column, and single-target CNOTs across the boundary (the
        blocked ansatz's linking CNOTs, Fig. 10) — uses pre-aligned operator
        edges and costs 4 cycles.
        """
        regions = {self.region_of(control)}
        regions.update(self.region_of(target) for target in targets)
        spans_both_halves = 0 in regions and 1 in regions
        if spans_both_halves and len(targets) > 1:
            return self.cnot_cycles(True)
        return self.cnot_cycles(False)

    def requires_boundary_bus(self, control: int, targets: Sequence[int]) -> bool:
        """Cross-half operations share the single boundary routing channel."""
        regions = {self.region_of(control)}
        regions.update(self.region_of(target) for target in targets)
        return 0 in regions and 1 in regions

    @staticmethod
    def packing_efficiency_formula(k: int) -> float:
        """PE = 4(k+1) / (6(k+2)) — the closed form quoted in Sec. 4.1."""
        return 4.0 * (k + 1) / (6.0 * (k + 2))


class CompactLayout(Layout):
    """Litinski's Compact data block: ≈1.5 tiles per qubit, fully serial ops.

    The single shared ancilla row forces one lattice-surgery operation at a
    time and requires patch rotations for roughly half the accesses, so CNOT
    clusters cost 6 cycles on average.
    """

    name = "compact"

    def total_tiles(self) -> int:
        return math.ceil(1.5 * self.num_data_qubits) + 1

    def cnot_cycles(self, crosses_regions: bool) -> int:
        return 6

    def parallel_rotations(self) -> int:
        return max(1, self.num_data_qubits // 4)


class IntermediateLayout(Layout):
    """Litinski's Intermediate block: 2 tiles per qubit, serial but rotation-free."""

    name = "intermediate"

    def total_tiles(self) -> int:
        return 2 * self.num_data_qubits + 2

    def cnot_cycles(self, crosses_regions: bool) -> int:
        return 5

    def parallel_rotations(self) -> int:
        return max(1, self.num_data_qubits // 2)


class FastLayout(Layout):
    """Litinski's Fast block: ≈4 tiles per qubit, every patch borders routing space.

    Long-range lattice-surgery merges still need the routing region to be
    prepared and measured out (≈6 cycles per cluster at the Fig. 9
    granularity); what the extra space buys is concurrency between disjoint
    operations — which the serial structure of VQA ansatze largely cannot
    exploit (Sec. 4.1).
    """

    name = "fast"

    def total_tiles(self) -> int:
        return 4 * self.num_data_qubits

    def cnot_cycles(self, crosses_regions: bool) -> int:
        return 6

    def supports_parallel_blocks(self) -> bool:
        return True


class GridLayout(Layout):
    """Grid layout (Javadi-Abhari et al.): each data patch surrounded by ancilla.

    Maximum routing flexibility at ≈9 tiles per qubit; per-operation latency
    matches the Fast block, and disjoint operations can run concurrently —
    capacity a serial VQA ansatz cannot exploit (Sec. 4.1).
    """

    name = "grid"

    def total_tiles(self) -> int:
        return math.ceil(9.0 * self.num_data_qubits)

    def cnot_cycles(self, crosses_regions: bool) -> int:
        return 6

    def supports_parallel_blocks(self) -> bool:
        return True


LAYOUT_FAMILIES = {
    "proposed": ProposedLayout,
    "compact": CompactLayout,
    "intermediate": IntermediateLayout,
    "fast": FastLayout,
    "grid": GridLayout,
}


def make_layout(name: str, num_data_qubits: int) -> Layout:
    """Construct a layout by family name for the given number of data qubits."""
    if name not in LAYOUT_FAMILIES:
        supported = ", ".join(sorted(LAYOUT_FAMILIES))
        raise ValueError(f"unknown layout {name!r}; supported: {supported}")
    if name == "proposed":
        return ProposedLayout(num_data_qubits=num_data_qubits)
    return LAYOUT_FAMILIES[name](num_data_qubits)
