"""Lattice-surgery scheduling of ansatz macro-operations onto a layout.

Produces the three resource metrics the paper defines in Sec. 4:

* **space** ``N_circ`` — physical qubits allocated to the computation (all
  tiles of the layout, data + routing + injection, times the patch size);
* **time** ``t_circ`` — logical clock cycles along the critical path, using
  the Fig. 9 per-operation latencies and an ASAP schedule that exploits
  whatever parallelism the layout offers (e.g. the two blocks of the proposed
  layout run concurrently, whereas Compact/Intermediate serialize on their
  single routing bus);
* **spacetime volume** ``V_circ`` — reported in two flavours: the
  footprint-based ``N_circ · t_circ`` used for the layout comparison of
  Table 1, and the per-operation sum ``Σ t_op · N_op`` of the paper's formal
  definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ansatz.base import Ansatz, MacroOp
from ..qec.surface_code import EFT_CODE_DISTANCE, SurfaceCodePatch
from .lattice_surgery import (EXPECTED_CONSUMPTION_ATTEMPTS,
                              MEASUREMENT_CYCLES, OperationCost,
                              rotation_layer_cycles)
from .layouts import Layout


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one circuit onto one layout."""

    layout_name: str
    ansatz_name: str
    num_data_qubits: int
    distance: int
    cycles: float
    total_tiles: int
    operation_costs: Tuple[OperationCost, ...]

    @property
    def physical_qubits(self) -> int:
        patch = SurfaceCodePatch(self.distance)
        return self.total_tiles * patch.physical_qubits

    @property
    def spacetime_volume_tiles(self) -> float:
        """Footprint-based volume (tiles × cycles) — the Table 1 metric."""
        return self.total_tiles * self.cycles

    @property
    def spacetime_volume_physical(self) -> float:
        """Footprint-based volume in physical-qubit × cycles."""
        return self.physical_qubits * self.cycles

    @property
    def spacetime_volume_engaged(self) -> float:
        """Per-operation volume Σ t_op · N_op (tiles × cycles)."""
        return float(sum(op.spacetime_volume_patches for op in self.operation_costs))

    @property
    def wall_clock_rounds(self) -> float:
        """Total syndrome-measurement rounds (cycles × d)."""
        return self.cycles * self.distance


class LatticeSurgeryScheduler:
    """Schedules an ansatz's macro-operations on a layout (ASAP policy)."""

    def __init__(self, layout: Layout, distance: int = EFT_CODE_DISTANCE,
                 expected_injections: float = EXPECTED_CONSUMPTION_ATTEMPTS):
        self.layout = layout
        self.distance = int(distance)
        self.expected_injections = float(expected_injections)

    # -- per-op costing ---------------------------------------------------------
    def _rotation_layer_cost(self, op: MacroOp) -> OperationCost:
        cycles = rotation_layer_cycles(
            rotations_per_qubit=2,
            expected_attempts=self.expected_injections,
            num_qubits=len(op.qubits),
            max_parallel=self.layout.parallel_rotations(),
        )
        # Each rotating qubit engages its data patch plus one injection patch.
        patches = 2 * len(op.qubits)
        return OperationCost("rotation_layer", cycles, patches)

    def _cnot_cluster_cost(self, op: MacroOp) -> OperationCost:
        cycles = self.layout.cluster_cycles(op.control, op.targets)
        # Control + targets + one routing ancilla patch per involved region.
        patches = 1 + len(op.targets) + 1
        return OperationCost("cnot_cluster", float(cycles), patches)

    def _measure_layer_cost(self, op: MacroOp) -> OperationCost:
        return OperationCost("measure_layer", float(MEASUREMENT_CYCLES),
                             len(op.qubits))

    def cost_of(self, op: MacroOp) -> OperationCost:
        if op.kind == "rotation_layer":
            return self._rotation_layer_cost(op)
        if op.kind == "cnot_cluster":
            return self._cnot_cluster_cost(op)
        return self._measure_layer_cost(op)

    # -- scheduling --------------------------------------------------------------
    def schedule(self, ansatz: Ansatz,
                 include_measurement: bool = True) -> ScheduleResult:
        """ASAP-schedule the ansatz and return the resource metrics."""
        if ansatz.num_qubits > self.layout.num_data_qubits:
            raise ValueError(
                f"ansatz needs {ansatz.num_qubits} data qubits but the layout hosts "
                f"{self.layout.num_data_qubits}")
        macro_ops = ansatz.macro_schedule(include_measurement=include_measurement)
        ready = [0.0] * self.layout.num_data_qubits
        bus_ready = 0.0
        boundary_bus_ready = 0.0
        serialize_all = not self.layout.supports_parallel_blocks()
        costs: List[OperationCost] = []
        finish = 0.0
        for op in macro_ops:
            cost = self.cost_of(op)
            costs.append(cost)
            involved = op.involved_qubits()
            start = max((ready[q] for q in involved), default=0.0)
            uses_global_bus = serialize_all and op.kind == "cnot_cluster"
            uses_boundary_bus = (op.kind == "cnot_cluster"
                                 and self.layout.requires_boundary_bus(
                                     op.control, op.targets))
            if uses_global_bus:
                # A single shared routing bus serializes lattice-surgery ops.
                start = max(start, bus_ready)
            if uses_boundary_bus:
                # Cross-half operations contend for the boundary routing channel.
                start = max(start, boundary_bus_ready)
            end = start + cost.cycles
            for qubit in involved:
                ready[qubit] = end
            if uses_global_bus:
                bus_ready = end
            if uses_boundary_bus:
                boundary_bus_ready = end
            finish = max(finish, end)
        return ScheduleResult(
            layout_name=self.layout.name,
            ansatz_name=ansatz.name,
            num_data_qubits=ansatz.num_qubits,
            distance=self.distance,
            cycles=finish,
            total_tiles=self.layout.total_tiles(),
            operation_costs=tuple(costs),
        )


def schedule_on_layout(ansatz: Ansatz, layout: Layout,
                       distance: int = EFT_CODE_DISTANCE,
                       include_measurement: bool = True) -> ScheduleResult:
    """Convenience wrapper: schedule ``ansatz`` on ``layout``.

    Builds a :class:`LatticeSurgeryScheduler` for the layout at the given
    code distance and runs the ansatz's macro schedule through it, returning
    the :class:`ScheduleResult` whose cycle count and spacetime volume feed
    the paper's Table 1 comparison.  Example::

        result = schedule_on_layout(FullyConnectedAnsatz(16),
                                    make_layout("proposed", 16))
        print(result.total_cycles, result.spacetime_volume)
    """
    scheduler = LatticeSurgeryScheduler(layout, distance=distance)
    return scheduler.schedule(ansatz, include_measurement=include_measurement)


def layout_volume_ratios(ansatz_factory, num_qubits_list: Sequence[int],
                         layout_names: Sequence[str] = ("compact", "intermediate",
                                                        "fast", "grid"),
                         distance: int = EFT_CODE_DISTANCE) -> Dict[str, float]:
    """Average spacetime-volume ratio of each layout relative to the proposed one.

    This is the Table 1 computation: for each ansatz instance compute
    ``V(layout) / V(proposed)`` and average over the size sweep.
    """
    from .layouts import make_layout

    totals = {name: 0.0 for name in layout_names}
    count = 0
    for num_qubits in num_qubits_list:
        ansatz = ansatz_factory(num_qubits)
        baseline = schedule_on_layout(
            ansatz, make_layout("proposed", num_qubits), distance=distance)
        baseline_volume = baseline.spacetime_volume_tiles
        if baseline_volume <= 0:
            raise RuntimeError("degenerate baseline schedule")
        for name in layout_names:
            result = schedule_on_layout(
                ansatz, make_layout(name, num_qubits), distance=distance)
            totals[name] += result.spacetime_volume_tiles / baseline_volume
        count += 1
    return {name: total / count for name, total in totals.items()}
