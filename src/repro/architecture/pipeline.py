"""End-to-end EFT-VQA compilation pipeline.

This is the "front door" of the repository: given a VQA workload (ansatz +
Hamiltonian), an EFT device and an execution regime, the compiler runs every
architectural stage the paper describes and returns a single report:

1. **placement** — map logical qubits onto the proposed layout
   (:mod:`repro.architecture.placement`);
2. **scheduling** — lattice-surgery macro-op schedule, cycles, spacetime
   volume (:mod:`repro.architecture.scheduler`);
3. **magic-state provisioning** — injection slots for pQEC, distillation
   factories or cultivation units for the Clifford+T baselines
   (:mod:`repro.core.resources`);
4. **fidelity estimation** — the Sec. 4.4 error accounting for the chosen
   regime (:mod:`repro.core.fidelity`);
5. **measurement costing** — circuits per VQE iteration and shots for a
   target precision (:mod:`repro.operators.grouping`).

The result is what a user would need to decide whether their VQA fits an EFT
device and which regime to run it under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..ansatz.base import Ansatz
from ..core.fidelity import CircuitProfile, FidelityBreakdown, estimate_fidelity
from ..core.regimes import (ExecutionRegime, NISQRegime, PQECRegime,
                            QECConventionalRegime, QECCultivationRegime)
from ..core.resources import EFTDevice
from ..operators.grouping import MeasurementBudget, shot_budget
from ..operators.pauli import PauliSum
from ..qec.surface_code import EFT_CODE_DISTANCE
from .layouts import Layout, make_layout
from .placement import PlacementReport, optimize_placement
from .scheduler import ScheduleResult, schedule_on_layout


@dataclass(frozen=True)
class CompilationResult:
    """Everything the compiler learned about one (workload, device, regime)."""

    workload_name: str
    regime_name: str
    layout_name: str
    num_logical_qubits: int
    fits_device: bool
    placement: Optional[PlacementReport]
    schedule: ScheduleResult
    profile: CircuitProfile
    fidelity: FidelityBreakdown
    measurement_budget: Optional[MeasurementBudget]
    physical_qubits_used: int
    physical_qubit_budget: int

    @property
    def estimated_fidelity(self) -> float:
        return self.fidelity.fidelity

    @property
    def spacetime_volume(self) -> float:
        return self.schedule.spacetime_volume_tiles

    @property
    def execution_cycles(self) -> float:
        return self.schedule.cycles

    def summary(self) -> Dict[str, object]:
        """A flat dictionary suitable for tabulation / serialization."""
        return {
            "workload": self.workload_name,
            "regime": self.regime_name,
            "layout": self.layout_name,
            "logical_qubits": self.num_logical_qubits,
            "fits_device": self.fits_device,
            "cycles": self.execution_cycles,
            "spacetime_volume_tiles": self.spacetime_volume,
            "physical_qubits_used": self.physical_qubits_used,
            "physical_qubit_budget": self.physical_qubit_budget,
            "estimated_fidelity": self.estimated_fidelity,
            "cnot_count": self.profile.cnot_count,
            "rotation_count": self.profile.rotation_count,
            "measurement_circuits": (self.measurement_budget.num_groups
                                     if self.measurement_budget else None),
            "placement_improvement": (self.placement.improvement
                                      if self.placement else None),
        }


class EFTCompiler:
    """Compile VQA workloads for an EFT device under a chosen regime."""

    def __init__(self, device: Optional[EFTDevice] = None,
                 layout_name: str = "proposed",
                 distance: int = EFT_CODE_DISTANCE,
                 optimize_qubit_placement: bool = True,
                 placement_anneal_iterations: int = 150,
                 seed: int = 7):
        self.device = device or EFTDevice()
        self.layout_name = layout_name
        self.distance = int(distance)
        self.optimize_qubit_placement = bool(optimize_qubit_placement)
        self.placement_anneal_iterations = int(placement_anneal_iterations)
        self.seed = int(seed)

    # -- stages -----------------------------------------------------------------
    def _place(self, ansatz: Ansatz, layout: Layout) -> Optional[PlacementReport]:
        if not self.optimize_qubit_placement:
            return None
        return optimize_placement(ansatz, layout,
                                  anneal_iterations=self.placement_anneal_iterations,
                                  seed=self.seed)

    def _schedule(self, ansatz: Ansatz, layout: Layout) -> ScheduleResult:
        return schedule_on_layout(ansatz, layout, distance=self.distance)

    # -- public API ----------------------------------------------------------------
    def compile(self, ansatz: Ansatz, regime: ExecutionRegime,
                hamiltonian: Optional[PauliSum] = None,
                workload_name: Optional[str] = None,
                target_standard_error: float = 1e-2) -> CompilationResult:
        """Run the full pipeline for one workload under one regime."""
        workload_name = workload_name or ansatz.name
        layout = make_layout(self.layout_name, ansatz.num_qubits)
        placement = self._place(ansatz, layout)
        schedule = self._schedule(ansatz, layout)
        profile = CircuitProfile.from_ansatz(ansatz, self.layout_name,
                                             distance=self.distance)
        fidelity = estimate_fidelity(profile, regime, device=self.device)
        budget = (shot_budget(hamiltonian, target_standard_error)
                  if hamiltonian is not None else None)
        physical_used = schedule.physical_qubits
        fits = (physical_used <= self.device.physical_qubits
                and self.device.fits_program(ansatz.num_qubits))
        return CompilationResult(
            workload_name=workload_name,
            regime_name=regime.name,
            layout_name=self.layout_name,
            num_logical_qubits=ansatz.num_qubits,
            fits_device=fits,
            placement=placement,
            schedule=schedule,
            profile=profile,
            fidelity=fidelity,
            measurement_budget=budget,
            physical_qubits_used=physical_used,
            physical_qubit_budget=self.device.physical_qubits,
        )

    def compare_regimes(self, ansatz: Ansatz,
                        regimes: Optional[Sequence[ExecutionRegime]] = None,
                        hamiltonian: Optional[PauliSum] = None,
                        workload_name: Optional[str] = None
                        ) -> Dict[str, CompilationResult]:
        """Compile the same workload under several regimes (default: all four)."""
        if regimes is None:
            regimes = (NISQRegime(), PQECRegime(), QECConventionalRegime(),
                       QECCultivationRegime())
        results = {}
        for regime in regimes:
            results[regime.name] = self.compile(ansatz, regime, hamiltonian,
                                                workload_name)
        return results

    def recommend_regime(self, ansatz: Ansatz,
                         hamiltonian: Optional[PauliSum] = None
                         ) -> Tuple[str, Dict[str, CompilationResult]]:
        """The regime with the highest estimated fidelity among feasible ones."""
        results = self.compare_regimes(ansatz, hamiltonian=hamiltonian)
        feasible = {name: result for name, result in results.items()
                    if result.fidelity.feasible and result.fits_device}
        pool = feasible or results
        best = max(pool, key=lambda name: pool[name].estimated_fidelity)
        return best, results
