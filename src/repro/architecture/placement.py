"""Logical-qubit placement onto layout tiles.

The proposed layout's CNOT cost is not uniform (Fig. 9): clusters confined to
one half of the layout take 4 cycles, clusters spanning both halves take 8.
Which logical qubits end up in which half is a *placement* decision, and for
ansatz families that are not written with the layout in mind (FCHE, UCCSD,
QAOA on irregular graphs) a good placement recovers part of the latency the
blocked_all_to_all ansatz gets by construction.  This module provides

* :func:`placement_cost` — total scheduled cycles of an ansatz under a
  permutation of its logical qubits;
* :func:`greedy_placement` — a cluster-affinity heuristic that keeps
  frequently interacting qubits in the same half;
* :func:`annealed_placement` — simulated-annealing refinement of any starting
  permutation;
* :class:`PlacedAnsatz` — an ansatz wrapper that relabels qubits according to
  a placement so the existing scheduler / fidelity pipeline can consume it
  unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ansatz.base import Ansatz
from .layouts import Layout, make_layout


class PlacedAnsatz(Ansatz):
    """An ansatz with its logical qubits relabeled by a placement permutation.

    ``placement[logical_qubit] = layout_position``.  Only the structural
    queries (entangling clusters, macro schedule, counts) are re-mapped — the
    circuit built by :meth:`build` keeps the original logical indices, since
    placement is an architectural concern, not an algorithmic one.
    """

    def __init__(self, base: Ansatz, placement: Sequence[int]):
        placement = list(int(p) for p in placement)
        if sorted(placement) != list(range(base.num_qubits)):
            raise ValueError("placement must be a permutation of the qubits")
        super().__init__(base.num_qubits, base.depth,
                         name=f"{base.name}_placed")
        self.base = base
        self.placement = tuple(placement)

    def _map(self, qubit: int) -> int:
        return self.placement[qubit]

    def entangling_clusters(self) -> List[Tuple[int, Tuple[int, ...]]]:
        return [(self._map(control), tuple(self._map(t) for t in targets))
                for control, targets in self.base.entangling_clusters()]

    def rotation_qubits(self) -> Tuple[int, ...]:
        return tuple(sorted(self._map(q) for q in self.base.rotation_qubits()))

    def num_parameters(self) -> int:
        return self.base.num_parameters()

    def build(self, parameter_prefix: str = "theta",
              include_measurement: bool = False):
        return self.base.build(parameter_prefix, include_measurement)


def identity_placement(num_qubits: int) -> Tuple[int, ...]:
    return tuple(range(num_qubits))


def placement_cost(ansatz: Ansatz, placement: Sequence[int],
                   layout: Optional[Layout] = None) -> float:
    """Total CNOT-cluster cycles of the ansatz under a placement."""
    layout = layout or make_layout("proposed", ansatz.num_qubits)
    placed = PlacedAnsatz(ansatz, placement)
    total = 0.0
    for control, targets in placed.entangling_clusters():
        total += layout.cluster_cycles(control, targets)
    return total * ansatz.depth


def _interaction_matrix(ansatz: Ansatz) -> np.ndarray:
    """How often each pair of logical qubits appears in the same cluster."""
    matrix = np.zeros((ansatz.num_qubits, ansatz.num_qubits))
    for control, targets in ansatz.entangling_clusters():
        involved = (control, *targets)
        for i in involved:
            for j in involved:
                if i != j:
                    matrix[i, j] += 1.0
    return matrix


def greedy_placement(ansatz: Ansatz,
                     layout: Optional[Layout] = None) -> Tuple[int, ...]:
    """Affinity-based placement: co-locate strongly interacting qubits.

    Layout positions are filled in order; each logical qubit is chosen to
    maximize its interaction weight with the qubits already placed in the same
    half of the layout (positions ``< N/2`` versus ``≥ N/2``, matching the
    proposed layout's two fast regions).
    """
    num_qubits = ansatz.num_qubits
    interactions = _interaction_matrix(ansatz)
    half = num_qubits // 2
    unplaced = set(range(num_qubits))
    placement_by_position: List[int] = []
    # Seed with the most connected qubit.
    seed = int(np.argmax(interactions.sum(axis=1)))
    placement_by_position.append(seed)
    unplaced.discard(seed)
    while unplaced:
        position = len(placement_by_position)
        same_half = [q for index, q in enumerate(placement_by_position)
                     if (index < half) == (position < half)]
        def affinity(candidate: int) -> float:
            return sum(interactions[candidate, q] for q in same_half)
        best = max(sorted(unplaced), key=affinity)
        placement_by_position.append(best)
        unplaced.discard(best)
    placement = [0] * num_qubits
    for position, logical in enumerate(placement_by_position):
        placement[logical] = position
    return tuple(placement)


def annealed_placement(ansatz: Ansatz, layout: Optional[Layout] = None,
                       initial: Optional[Sequence[int]] = None,
                       iterations: int = 400, initial_temperature: float = 4.0,
                       seed: int = 7) -> Tuple[int, ...]:
    """Simulated-annealing refinement of a placement (pairwise swaps)."""
    layout = layout or make_layout("proposed", ansatz.num_qubits)
    rng = np.random.default_rng(seed)
    current = list(initial if initial is not None else greedy_placement(ansatz, layout))
    current_cost = placement_cost(ansatz, current, layout)
    best = list(current)
    best_cost = current_cost
    for step in range(iterations):
        temperature = initial_temperature * (1.0 - step / max(iterations, 1)) + 1e-3
        i, j = rng.choice(ansatz.num_qubits, size=2, replace=False)
        candidate = list(current)
        candidate[i], candidate[j] = candidate[j], candidate[i]
        candidate_cost = placement_cost(ansatz, candidate, layout)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_cost = candidate, candidate_cost
            if current_cost < best_cost:
                best, best_cost = list(current), current_cost
    return tuple(best)


@dataclass(frozen=True)
class PlacementReport:
    """Cycle cost of the identity, greedy and annealed placements."""

    identity_cycles: float
    greedy_cycles: float
    annealed_cycles: float
    placement: Tuple[int, ...]

    @property
    def best_cycles(self) -> float:
        """Cost of the best candidate (identity is always a candidate)."""
        return min(self.identity_cycles, self.greedy_cycles,
                   self.annealed_cycles)

    @property
    def improvement(self) -> float:
        """Fractional latency saved by the best placement over identity.

        Never negative: the identity placement is itself a candidate, so a
        heuristic that happens to do worse is simply not used.
        """
        if self.identity_cycles == 0:
            return 0.0
        return 1.0 - self.best_cycles / self.identity_cycles


def optimize_placement(ansatz: Ansatz, layout: Optional[Layout] = None,
                       anneal_iterations: int = 300,
                       seed: int = 7) -> PlacementReport:
    """Run the full placement flow and report the latency comparison.

    The returned placement is the best of {identity, greedy, greedy+annealed},
    so using it can never make the schedule slower than the ansatz's natural
    qubit numbering.
    """
    layout = layout or make_layout("proposed", ansatz.num_qubits)
    identity = identity_placement(ansatz.num_qubits)
    identity_cost = placement_cost(ansatz, identity, layout)
    greedy = greedy_placement(ansatz, layout)
    greedy_cost = placement_cost(ansatz, greedy, layout)
    annealed = annealed_placement(ansatz, layout, initial=greedy,
                                  iterations=anneal_iterations, seed=seed)
    annealed_cost = placement_cost(ansatz, annealed, layout)
    candidates = [(identity_cost, identity), (greedy_cost, greedy),
                  (annealed_cost, annealed)]
    best = min(candidates, key=lambda item: item[0])[1]
    return PlacementReport(identity_cycles=identity_cost,
                           greedy_cycles=greedy_cost,
                           annealed_cycles=annealed_cost,
                           placement=tuple(best))
