"""Lattice-surgery operation cost model (paper Fig. 9).

Logical operations on surface-code patches are performed by lattice surgery:
a CNOT is an XX measurement plus a ZZ measurement between the control, the
target and a routing ancilla, possibly preceded by patch rotations to expose
the correct operator edges.  The paper's latency analysis (Fig. 9) works at
the granularity of *logical clock cycles* (one merge/split or patch-rotation
step each) and establishes two facts the scheduler relies on:

* a single-control multi-target CNOT costs the same as a single CNOT — 4
  cycles when the involved patches already expose the right edges ("fast"
  clusters, Fig. 9A);
* clusters that need extra patch rotations to align operator edges cost 8
  cycles ("slow" clusters, Fig. 9B).

Rotation (Rz) consumption via the Fig. 2(C) circuit is a ZZ/XX merge with the
magic-state patch followed by a conditional correction; one consumption
attempt costs one cycle at this granularity and the repeat-until-success
protocol needs E[g] attempts in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cycles of a fast single-control multi-target CNOT cluster (Fig. 9A).
FAST_CNOT_CLUSTER_CYCLES = 4

#: Cycles of a slow cluster that needs extra patch rotations (Fig. 9B).
SLOW_CNOT_CLUSTER_CYCLES = 8

#: Cycles of one Rz magic-state consumption attempt (ZZ/XX merge + correction).
ROTATION_CONSUMPTION_CYCLES = 1

#: Cycles of a transversal logical measurement layer.
MEASUREMENT_CYCLES = 1

#: Expected consumption attempts per logical Rz (repeat-until-success, p=1/2).
EXPECTED_CONSUMPTION_ATTEMPTS = 2.0


@dataclass(frozen=True)
class OperationCost:
    """Space and time cost of one scheduled macro-operation."""

    name: str
    cycles: float
    patches: int

    @property
    def spacetime_volume_patches(self) -> float:
        """Spacetime volume in units of (patch × cycle)."""
        return self.cycles * self.patches


def cnot_cluster_cycles(crosses_regions: bool,
                        fast_cycles: int = FAST_CNOT_CLUSTER_CYCLES,
                        slow_cycles: int = SLOW_CNOT_CLUSTER_CYCLES) -> int:
    """Latency of a single-control multi-target CNOT cluster."""
    return slow_cycles if crosses_regions else fast_cycles


def rotation_layer_cycles(rotations_per_qubit: int = 2,
                          expected_attempts: float = EXPECTED_CONSUMPTION_ATTEMPTS,
                          parallel_fraction: float = 1.0,
                          num_qubits: int = 1,
                          max_parallel: int | None = None) -> float:
    """Latency of a layer of single-qubit rotations implemented by injection.

    ``rotations_per_qubit`` logical rotations are applied to each qubit (RX·RZ
    → 2 after transpilation to the Clifford+Rz basis); each needs
    ``expected_attempts`` consumption attempts.  Rotations on different qubits
    proceed in parallel when the layout provisions injection space next to
    every data qubit (``max_parallel`` caps the concurrency otherwise).
    """
    serial_per_qubit = rotations_per_qubit * expected_attempts * ROTATION_CONSUMPTION_CYCLES
    if max_parallel is None or max_parallel >= num_qubits:
        waves = 1.0
    else:
        if max_parallel < 1:
            raise ValueError("max_parallel must be at least 1")
        waves = -(-num_qubits // max_parallel)  # ceil division
    del parallel_fraction  # kept for signature stability; waves captures it
    return serial_per_qubit * waves
