"""Tile-level geometry and ancilla-bus routing for the proposed layout.

The analytic scheduler (:mod:`repro.architecture.scheduler`) prices every
macro-operation with the Fig. 9 cycle counts and assumes the layout always has
a free routing channel.  This module makes the layout geometry explicit so
that assumption can be checked:

* :class:`ProposedLayoutGeometry` — a concrete tile grid for the paper's
  Fig. 3 layout (4 data rows of ``k`` qubits plus an extra 4-qubit column,
  one routing/injection row adjacent to every data row, total ``6·(k+2)``
  tiles ⇒ PE = 4(k+1)/(6(k+2)));
* :class:`BusRouter` — shortest-path routing over the ancilla bus with
  explicit tile reservations, so two lattice-surgery operations can only run
  concurrently when their routes do not overlap;
* :class:`ContentionAwareScheduler` — an event-driven scheduler that executes
  an ansatz's macro-operation list under those reservations and reports the
  realized cycle count, which can be compared against the analytic model
  (it must never be faster than the analytic lower bound).

The exact row ordering of Fig. 3 is not fully specified in the paper; the
geometry here places routing rows so that *every* data qubit is adjacent to
injection space, which is the property the paper's parallel-rotation argument
relies on, and reproduces the quoted packing efficiency exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..ansatz.base import Ansatz, MacroOp
from .lattice_surgery import (EXPECTED_CONSUMPTION_ATTEMPTS,
                              MEASUREMENT_CYCLES, ROTATION_CONSUMPTION_CYCLES)
from .layouts import ProposedLayout

#: Tile roles in the grid.
DATA, BUS, MAGIC = "data", "bus", "magic"


@dataclass(frozen=True)
class Tile:
    """One surface-code patch slot in the layout grid."""

    row: int
    column: int
    kind: str
    qubit: Optional[int] = None

    @property
    def position(self) -> Tuple[int, int]:
        return (self.row, self.column)


class ProposedLayoutGeometry:
    """Concrete tile coordinates for the proposed layout (Fig. 3)."""

    #: Grid rows hosting data qubits, in qubit-numbering order.
    _DATA_ROWS = (0, 2, 3, 5)
    #: Grid rows acting as routing / injection buses.
    _BUS_ROWS = (1, 4)

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self.layout = ProposedLayout(k=k)
        self._tiles: Dict[Tuple[int, int], Tile] = {}
        self._data_tiles: Dict[int, Tile] = {}
        self._build()

    # -- construction --------------------------------------------------------
    def _build(self) -> None:
        k = self.k
        qubit = 0
        for row in self._DATA_ROWS:
            for column in range(1, k + 1):
                self._add_tile(Tile(row, column, DATA, qubit))
                qubit += 1
        # The extra 4-qubit column on the right edge (qubits 4k … 4k+3).
        for row in self._DATA_ROWS:
            self._add_tile(Tile(row, k + 1, DATA, qubit))
            qubit += 1
        # Routing / injection rows: every third tile is a magic-state slot,
        # giving the 2·⌊k/3⌋ concurrent injections quoted in Sec. 4.1.
        for row in self._BUS_ROWS:
            for column in range(0, k + 2):
                kind = MAGIC if (1 <= column <= k and column % 3 == 0) else BUS
                self._add_tile(Tile(row, column, kind))
        # Left edge column next to the data rows completes the 6·(k+2) grid.
        for row in self._DATA_ROWS:
            self._add_tile(Tile(row, 0, BUS))

    def _add_tile(self, tile: Tile) -> None:
        self._tiles[tile.position] = tile
        if tile.kind == DATA:
            self._data_tiles[tile.qubit] = tile

    # -- queries -----------------------------------------------------------------
    @property
    def num_data_qubits(self) -> int:
        return len(self._data_tiles)

    @property
    def total_tiles(self) -> int:
        return len(self._tiles)

    def tiles(self) -> List[Tile]:
        return list(self._tiles.values())

    def data_tile(self, qubit: int) -> Tile:
        if qubit not in self._data_tiles:
            raise ValueError(f"qubit {qubit} is not hosted by this layout")
        return self._data_tiles[qubit]

    def magic_state_tiles(self) -> List[Tile]:
        return [tile for tile in self._tiles.values() if tile.kind == MAGIC]

    def packing_efficiency(self) -> float:
        return self.num_data_qubits / self.total_tiles

    def neighbors(self, position: Tuple[int, int]) -> List[Tile]:
        row, column = position
        result = []
        for delta_row, delta_column in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            neighbor = self._tiles.get((row + delta_row, column + delta_column))
            if neighbor is not None:
                result.append(neighbor)
        return result

    def bus_graph(self) -> nx.Graph:
        """Graph over routing tiles (bus + magic slots act as routing space)."""
        graph = nx.Graph()
        for tile in self._tiles.values():
            if tile.kind in (BUS, MAGIC):
                graph.add_node(tile.position)
        for position in list(graph.nodes):
            for neighbor in self.neighbors(position):
                if neighbor.kind in (BUS, MAGIC):
                    graph.add_edge(position, neighbor.position)
        return graph

    def injection_neighbors(self, qubit: int) -> List[Tile]:
        """Routing tiles adjacent to a data qubit (where its magic states live)."""
        return [tile for tile in self.neighbors(self.data_tile(qubit).position)
                if tile.kind in (BUS, MAGIC)]

    def every_data_qubit_touches_the_bus(self) -> bool:
        return all(self.injection_neighbors(qubit)
                   for qubit in range(self.num_data_qubits))

    # -- routing -----------------------------------------------------------------
    def route(self, qubit_a: int, qubit_b: int,
              blocked: Optional[Set[Tuple[int, int]]] = None
              ) -> Optional[List[Tuple[int, int]]]:
        """Shortest free ancilla path connecting two data patches.

        Returns the list of routing-tile positions, or ``None`` when every
        connection is blocked by existing reservations.
        """
        blocked = blocked or set()
        graph = self.bus_graph()
        graph.remove_nodes_from([node for node in blocked if node in graph])
        sources = [tile.position for tile in self.injection_neighbors(qubit_a)
                   if tile.position not in blocked]
        targets = {tile.position for tile in self.injection_neighbors(qubit_b)
                   if tile.position not in blocked}
        if not sources or not targets:
            return None
        best: Optional[List[Tuple[int, int]]] = None
        for source in sources:
            if source not in graph:
                continue
            lengths, paths = nx.single_source_dijkstra(graph, source)
            for target in targets:
                if target not in paths:
                    continue
                candidate = paths[target]
                if best is None or len(candidate) < len(best):
                    best = candidate
        return best


@dataclass
class RouteReservation:
    """A bus allocation held by an in-flight lattice-surgery operation."""

    tiles: Tuple[Tuple[int, int], ...]
    release_cycle: float
    operation_index: int


class BusRouter:
    """Tracks which routing tiles are reserved at any point in time."""

    def __init__(self, geometry: ProposedLayoutGeometry):
        self.geometry = geometry
        self._reservations: List[RouteReservation] = []

    def blocked_tiles(self, cycle: float) -> Set[Tuple[int, int]]:
        return {tile for reservation in self._reservations
                if reservation.release_cycle > cycle
                for tile in reservation.tiles}

    def release_expired(self, cycle: float) -> None:
        self._reservations = [reservation for reservation in self._reservations
                              if reservation.release_cycle > cycle]

    def try_reserve(self, qubits: Sequence[int], cycle: float, duration: float,
                    operation_index: int) -> Optional[RouteReservation]:
        """Reserve a route connecting all ``qubits`` (a single-control cluster).

        A multi-target cluster is one merged lattice-surgery region, so its
        own path segments may share routing tiles freely; only tiles held by
        *other* in-flight operations block the reservation.
        """
        blocked = self.blocked_tiles(cycle)
        tiles: List[Tuple[int, int]] = []
        anchor = qubits[0]
        for other in qubits[1:]:
            path = self.geometry.route(anchor, other, blocked=blocked)
            if path is None:
                return None
            tiles.extend(path)
        reservation = RouteReservation(tuple(dict.fromkeys(tiles)),
                                       cycle + duration, operation_index)
        self._reservations.append(reservation)
        return reservation

    @property
    def active_reservations(self) -> int:
        return len(self._reservations)


@dataclass(frozen=True)
class ScheduledOperation:
    """One macro-operation with its realized start/finish cycles."""

    index: int
    kind: str
    qubits: Tuple[int, ...]
    start_cycle: float
    finish_cycle: float
    bus_tiles: Tuple[Tuple[int, int], ...]

    @property
    def duration(self) -> float:
        return self.finish_cycle - self.start_cycle


@dataclass
class ContentionScheduleResult:
    """Outcome of the contention-aware scheduling pass."""

    operations: List[ScheduledOperation]
    total_cycles: float
    total_tiles: int
    stalled_cycles: float

    @property
    def spacetime_volume_tiles(self) -> float:
        return self.total_cycles * self.total_tiles


class ContentionAwareScheduler:
    """Event-driven scheduler with explicit ancilla-bus reservations.

    Operations become ready when every earlier operation touching one of
    their qubits has finished (program order per qubit); a ready CNOT cluster
    additionally needs a free bus route between its patches.  Rotation and
    measurement layers act on the injection space adjacent to each data patch
    and do not contend for the shared bus.
    """

    def __init__(self, geometry: ProposedLayoutGeometry,
                 expected_injections: float = EXPECTED_CONSUMPTION_ATTEMPTS):
        self.geometry = geometry
        self.expected_injections = float(expected_injections)

    def _duration(self, op: MacroOp) -> float:
        if op.kind == "rotation_layer":
            return 2 * self.expected_injections * ROTATION_CONSUMPTION_CYCLES
        if op.kind == "measure_layer":
            return float(MEASUREMENT_CYCLES)
        return float(self.geometry.layout.cluster_cycles(op.control, op.targets))

    def schedule(self, ansatz: Ansatz,
                 include_measurement: bool = True) -> ContentionScheduleResult:
        macro_ops = ansatz.macro_schedule(include_measurement=include_measurement)
        if ansatz.num_qubits > self.geometry.num_data_qubits:
            raise ValueError("ansatz does not fit in this layout geometry")
        router = BusRouter(self.geometry)
        qubit_free_at: Dict[int, float] = {q: 0.0 for q in range(ansatz.num_qubits)}
        scheduled: List[ScheduledOperation] = []
        clock = 0.0
        stalled = 0.0
        for index, op in enumerate(macro_ops):
            qubits = op.involved_qubits()
            ready = max((qubit_free_at[q] for q in qubits), default=clock)
            start = max(ready, 0.0)
            duration = self._duration(op)
            tiles: Tuple[Tuple[int, int], ...] = ()
            if op.kind == "cnot_cluster":
                router.release_expired(start)
                reservation = router.try_reserve(list(qubits), start, duration, index)
                while reservation is None:
                    # Stall until the earliest reservation drains, then retry.
                    pending = [r.release_cycle for r in router._reservations
                               if r.release_cycle > start]
                    if not pending:
                        raise RuntimeError("bus routing deadlock")
                    stalled += min(pending) - start
                    start = min(pending)
                    router.release_expired(start)
                    reservation = router.try_reserve(list(qubits), start,
                                                     duration, index)
                tiles = reservation.tiles
            finish = start + duration
            for qubit in qubits:
                qubit_free_at[qubit] = finish
            clock = max(clock, finish)
            scheduled.append(ScheduledOperation(
                index=index, kind=op.kind, qubits=tuple(qubits),
                start_cycle=start, finish_cycle=finish, bus_tiles=tiles))
        return ContentionScheduleResult(
            operations=scheduled, total_cycles=clock,
            total_tiles=self.geometry.total_tiles, stalled_cycles=stalled)
