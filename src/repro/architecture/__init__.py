"""Logical-qubit layouts, lattice-surgery costs, placement, routing and scheduling."""

from .lattice_surgery import (EXPECTED_CONSUMPTION_ATTEMPTS,
                              FAST_CNOT_CLUSTER_CYCLES, MEASUREMENT_CYCLES,
                              OperationCost, ROTATION_CONSUMPTION_CYCLES,
                              SLOW_CNOT_CLUSTER_CYCLES, cnot_cluster_cycles,
                              rotation_layer_cycles)
from .layouts import (LAYOUT_FAMILIES, CompactLayout, FastLayout, GridLayout,
                      IntermediateLayout, Layout, LayoutSpec, ProposedLayout,
                      make_layout)
from .pipeline import CompilationResult, EFTCompiler
from .placement import (PlacedAnsatz, PlacementReport, annealed_placement,
                        greedy_placement, identity_placement,
                        optimize_placement, placement_cost)
from .routing import (BusRouter, ContentionAwareScheduler,
                      ContentionScheduleResult, ProposedLayoutGeometry, Tile)
from .scheduler import (LatticeSurgeryScheduler, ScheduleResult,
                        layout_volume_ratios, schedule_on_layout)

__all__ = [
    "BusRouter",
    "CompactLayout",
    "CompilationResult",
    "ContentionAwareScheduler",
    "ContentionScheduleResult",
    "EFTCompiler",
    "PlacedAnsatz",
    "PlacementReport",
    "ProposedLayoutGeometry",
    "Tile",
    "annealed_placement",
    "greedy_placement",
    "identity_placement",
    "optimize_placement",
    "placement_cost",
    "EXPECTED_CONSUMPTION_ATTEMPTS",
    "FAST_CNOT_CLUSTER_CYCLES",
    "FastLayout",
    "GridLayout",
    "IntermediateLayout",
    "LAYOUT_FAMILIES",
    "LatticeSurgeryScheduler",
    "Layout",
    "LayoutSpec",
    "MEASUREMENT_CYCLES",
    "OperationCost",
    "ProposedLayout",
    "ROTATION_CONSUMPTION_CYCLES",
    "SLOW_CNOT_CLUSTER_CYCLES",
    "ScheduleResult",
    "cnot_cluster_cycles",
    "layout_volume_ratios",
    "make_layout",
    "rotation_layer_cycles",
    "schedule_on_layout",
]
