"""ASCII rendering primitives used by the examples and benchmark harness."""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from ..architecture.routing import ProposedLayoutGeometry
from ..circuits.circuit import QuantumCircuit


def ascii_bar_chart(values: Mapping[str, float], width: int = 40,
                    title: Optional[str] = None,
                    value_format: str = "{:.2f}") -> str:
    """Horizontal bar chart; bar lengths are scaled to the largest value."""
    if not values:
        raise ValueError("bar chart needs at least one value")
    if width < 5:
        raise ValueError("width must be at least 5 characters")
    labels = list(values)
    label_width = max(len(str(label)) for label in labels)
    maximum = max(abs(v) for v in values.values()) or 1.0
    lines = [] if title is None else [title, "-" * len(title)]
    for label in labels:
        value = values[label]
        bar = "#" * max(1, int(round(abs(value) / maximum * width)))
        lines.append(f"{str(label).ljust(label_width)} | "
                     f"{bar} {value_format.format(value)}")
    return "\n".join(lines)


def ascii_line_plot(x_values: Sequence[float],
                    series: Mapping[str, Sequence[float]],
                    height: int = 12, width: int = 60,
                    title: Optional[str] = None) -> str:
    """Plot one or more series over shared x values on a character canvas."""
    if height < 3 or width < 10:
        raise ValueError("canvas too small")
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length does not match x values")
    markers = "*o+x@%&"
    all_values = [y for ys in series.values() for y in ys]
    low, high = min(all_values), max(all_values)
    if math.isclose(low, high):
        high = low + 1.0
    canvas = [[" "] * width for _ in range(height)]
    x_low, x_high = min(x_values), max(x_values)
    x_span = (x_high - x_low) or 1.0
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, ys):
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((high - y) / (high - low) * (height - 1)))
            canvas[row][column] = marker
    lines = [] if title is None else [title, "-" * len(title)]
    lines.append(f"{high:10.3g} +" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{low:10.3g} +" + "".join(canvas[-1]))
    lines.append(" " * 12 + f"{x_low:<10.4g}" + " " * max(0, width - 20)
                 + f"{x_high:>10.4g}")
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(series))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_heatmap(matrix: Sequence[Sequence[float]],
                  row_labels: Optional[Sequence[object]] = None,
                  column_labels: Optional[Sequence[object]] = None,
                  title: Optional[str] = None,
                  palette: str = " .:-=+*#%@") -> str:
    """Render a matrix as a character-density heatmap (Fig. 5 style)."""
    rows = [list(row) for row in matrix]
    if not rows or not rows[0]:
        raise ValueError("heatmap needs a non-empty matrix")
    num_columns = len(rows[0])
    if any(len(row) != num_columns for row in rows):
        raise ValueError("heatmap rows must have equal length")
    flat = [value for row in rows for value in row]
    low, high = min(flat), max(flat)
    span = (high - low) or 1.0
    row_labels = list(row_labels) if row_labels is not None \
        else list(range(len(rows)))
    column_labels = list(column_labels) if column_labels is not None \
        else list(range(num_columns))
    label_width = max(len(str(label)) for label in row_labels)
    lines = [] if title is None else [title, "-" * len(title)]
    for label, row in zip(row_labels, rows):
        cells = []
        for value in row:
            index = int((value - low) / span * (len(palette) - 1))
            cells.append(palette[index] * 2)
        lines.append(f"{str(label).rjust(label_width)} |" + "".join(cells))
    footer_cells = "".join(str(label)[:2].ljust(2) for label in column_labels)
    lines.append(" " * label_width + " +" + "-" * (2 * num_columns))
    lines.append(" " * label_width + "  " + footer_cells)
    lines.append(f"scale: '{palette[0]}' = {low:.3g}  …  "
                 f"'{palette[-1]}' = {high:.3g}")
    return "\n".join(lines)


def render_layout(geometry: ProposedLayoutGeometry) -> str:
    """Draw the proposed layout's tile grid (Fig. 3).

    Data tiles show their qubit number, routing tiles show ``..`` and
    magic-state injection slots show ``MM``.
    """
    cell_width = max(3, len(str(geometry.num_data_qubits - 1)) + 1)
    rows: Dict[int, Dict[int, str]] = {}
    for tile in geometry.tiles():
        if tile.kind == "data":
            text = str(tile.qubit)
        elif tile.kind == "magic":
            text = "M" * 2
        else:
            text = ".."
        rows.setdefault(tile.row, {})[tile.column] = text.center(cell_width)
    lines = [f"proposed layout, k={geometry.k}  "
             f"(PE = {geometry.packing_efficiency():.2%})"]
    for row_index in sorted(rows):
        columns = rows[row_index]
        line = "".join(columns.get(column, " " * cell_width)
                       for column in range(max(columns) + 1))
        lines.append(line)
    lines.append("legend: numbers = data patches, .. = routing ancilla, "
                 "MM = magic-state slot")
    return "\n".join(lines)


def draw_circuit(circuit: QuantumCircuit, max_columns: int = 24) -> str:
    """A compact one-line-per-qubit text drawing of a circuit."""
    layers = circuit.layers()
    grid: List[List[str]] = [[] for _ in range(circuit.num_qubits)]
    for layer in layers[:max_columns]:
        cells = ["-" for _ in range(circuit.num_qubits)]
        for inst in layer:
            if inst.name in ("cx", "cnot"):
                control, target = inst.qubits
                cells[control] = "●"
                cells[target] = "⊕"
            elif inst.name == "measure":
                cells[inst.qubits[0]] = "M"
            elif inst.name == "barrier":
                for qubit in inst.qubits or range(circuit.num_qubits):
                    cells[qubit] = "|"
            else:
                label = inst.name[:1].upper()
                for qubit in inst.qubits:
                    cells[qubit] = label
        column_width = 3
        for qubit in range(circuit.num_qubits):
            grid[qubit].append(cells[qubit].center(column_width, "-"))
    truncated = "…" if len(layers) > max_columns else ""
    lines = [f"q{qubit}: " + "".join(cells) + truncated
             for qubit, cells in enumerate(grid)]
    return "\n".join(lines)
