"""Dependency-free ASCII visualization of layouts, circuits and sweep data.

The evaluation environment has no plotting stack, so the examples and the
benchmark harness render their figures as text: bar charts for per-benchmark
γ values, line plots for depth sweeps (Fig. 11), heatmaps for the win-percentage
grid (Fig. 5), a tile-grid view of the proposed layout (Fig. 3) and a compact
circuit drawer.
"""

from .ascii import (ascii_bar_chart, ascii_heatmap, ascii_line_plot,
                    draw_circuit, render_layout)

__all__ = [
    "ascii_bar_chart",
    "ascii_heatmap",
    "ascii_line_plot",
    "draw_circuit",
    "render_layout",
]
