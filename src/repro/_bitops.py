"""Bit-packed mod-2 (GF(2)) kernels shared by the QEC and simulator hot paths.

This is a dependency-free leaf module (numpy only); QEC code imports it
through the canonical public face :mod:`repro.qec.bitops`, while
:mod:`repro.simulators.stabilizer` imports it directly to stay out of the
``qec → sampling → execution → simulators`` import cycle.

Every QEC hot path in this repository ultimately does arithmetic over
GF(2): syndrome extraction is a mod-2 matmul of error rows against the
incidence matrix, decoder dedup compares 0/1 rows for equality, and the
CHP stabilizer tableau evolves by XORing Pauli rows.  Until PR 7 those all
ran on byte-wide ``uint8`` arrays — 8× the memory they need — and syndrome
extraction rode a float32 GEMM whose exactness argument caps out at
detector degrees below 2**24 (float32's contiguous-integer range).

This module removes both limits by packing 0/1 rows into ``uint64`` words:

* :func:`pack_rows` / :func:`unpack_rows` — bit ``i`` of a row lands in
  word ``i // 64`` at bit position ``i % 64`` (little bit-order, i.e. the
  ``np.packbits(bitorder="little")`` byte layout viewed as little-endian
  words).  Unused tail bits of the last word are always zero, so packed
  rows compare equal iff the underlying bit rows do — packed words are
  directly usable as dedup keys.
* :func:`popcount_words` — element-wise popcount via ``np.bitwise_count``
  (numpy ≥ 2.0) with a byte-LUT fallback for older numpys; the
  ``REPRO_NO_BITWISE_COUNT`` environment knob forces the fallback so CI
  can exercise both implementations.
* :func:`parity` / :func:`row_parity` — GF(2) sums.  The XOR-fold
  identity ``popcount(a ^ b) ≡ popcount(a) + popcount(b) (mod 2)`` lets a
  whole row reduce to **one** word before the single popcount.
* :func:`mod2_matmul_packed` — the general word-wise AND + popcount
  matmul.  Exact at any size: parity is computed in integers, never
  floats, so the 2**24 ceiling is gone.
* :class:`Mod2GatherPlan` — the *fast* mod-2 matmul for a fixed matrix
  (syndrome extraction's shape: thousands of shots against one incidence
  matrix).  A "method of four Russians" table maps each input **byte**
  (256 values) to its precomputed contribution to the packed output row;
  applying the matrix is then one gather + XOR per input byte instead of
  an AND + popcount per input word per output bit.  On the d=9 benchmark
  workload this runs ~2.7× faster than the float32 GEMM it replaces.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = [
    "WORD_BITS",
    "packed_words",
    "pack_rows",
    "unpack_rows",
    "popcount_words",
    "popcount",
    "popcount_impl",
    "parity",
    "row_parity",
    "mod2_matmul_packed",
    "mod2_matvec_packed",
    "Mod2GatherPlan",
]

#: Bits per packed word.
WORD_BITS = 64

#: Bytes per packed word.
_WORD_BYTES = WORD_BITS // 8


def packed_words(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` bits."""
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


# ---------------------------------------------------------------------------
# Packing / unpacking
# ---------------------------------------------------------------------------


def _as_native_words(byte_view: np.ndarray) -> np.ndarray:
    """View little-endian packed bytes as native-order ``uint64`` words."""
    words = byte_view.view("<u8")
    if not words.dtype.isnative:  # big-endian host: materialize native words
        words = words.astype(np.uint64)
    return words


def pack_rows(rows: np.ndarray, n_bits: Optional[int] = None) -> np.ndarray:
    """Pack 0/1 rows ``(R, n)`` into ``(R, packed_words(n))`` uint64 words.

    Bit ``i`` of a row is stored in word ``i // 64`` at position ``i % 64``
    (``1 << (i % 64)``).  Tail bits beyond ``n`` are zero.  A 1-D input is
    treated as a single row and returns a 1-D word vector.
    """
    rows = np.asarray(rows)
    squeeze = rows.ndim == 1
    if squeeze:
        rows = rows[np.newaxis, :]
    if rows.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D rows, got shape {rows.shape}")
    if n_bits is None:
        n_bits = rows.shape[1]
    elif rows.shape[1] != n_bits:
        raise ValueError(f"rows have {rows.shape[1]} bits, expected {n_bits}")
    rows = np.ascontiguousarray(rows.astype(np.uint8, copy=False) & 1)
    n_words = packed_words(n_bits)
    packed_bytes = np.packbits(rows, axis=1, bitorder="little")
    if packed_bytes.shape[1] != n_words * _WORD_BYTES:
        padded = np.zeros((rows.shape[0], n_words * _WORD_BYTES),
                          dtype=np.uint8)
        padded[:, :packed_bytes.shape[1]] = packed_bytes
        packed_bytes = padded
    words = _as_native_words(packed_bytes)
    return words[0] if squeeze else words


def unpack_rows(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(R, W)`` words → ``(R, n_bits)`` uint8."""
    words = np.asarray(words, dtype=np.uint64)
    squeeze = words.ndim == 1
    if squeeze:
        words = words[np.newaxis, :]
    if words.shape[1] != packed_words(n_bits):
        raise ValueError(
            f"expected {packed_words(n_bits)} words for {n_bits} bits, "
            f"got {words.shape[1]}")
    byte_view = np.ascontiguousarray(words).view(np.uint8)
    if not np.little_endian:  # pragma: no cover - big-endian host
        byte_view = words.astype("<u8").view(np.uint8)
    bits = np.unpackbits(byte_view, axis=1, bitorder="little",
                         count=int(n_bits))
    return bits[0] if squeeze else bits


# ---------------------------------------------------------------------------
# Popcount (native np.bitwise_count, byte-LUT fallback)
# ---------------------------------------------------------------------------

#: Popcount of every byte value — the portable fallback kernel.
_POPCOUNT_LUT = np.array([bin(value).count("1") for value in range(256)],
                         dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _use_native_popcount() -> bool:
    return _HAS_BITWISE_COUNT and not os.environ.get("REPRO_NO_BITWISE_COUNT")


def popcount_impl() -> str:
    """``"bitwise_count"`` or ``"lut"`` — which kernel popcount will use.

    Resolved per call (not cached) so the ``REPRO_NO_BITWISE_COUNT``
    environment knob can flip the implementation inside one process; CI
    logs this value to make fallback-path coverage visible.
    """
    return "bitwise_count" if _use_native_popcount() else "lut"


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Element-wise popcount of a uint64 array (same shape, uint8 counts)."""
    words = np.asarray(words, dtype=np.uint64)
    if _use_native_popcount():
        return np.bitwise_count(words)
    byte_view = np.ascontiguousarray(words).view(np.uint8)
    counts = _POPCOUNT_LUT[byte_view].reshape(words.shape + (_WORD_BYTES,))
    return counts.sum(axis=-1, dtype=np.uint8)


def popcount(words: np.ndarray, axis: Optional[int] = None) -> np.ndarray:
    """Total popcount of a uint64 array, optionally along ``axis``."""
    return popcount_words(words).sum(axis=axis, dtype=np.int64)


def parity(words: np.ndarray, axis: int = -1) -> np.ndarray:
    """GF(2) sum (0/1 ``uint8``) of the bits of ``words`` along ``axis``.

    XOR-folds the words along ``axis`` first — ``popcount(a ^ b)`` has the
    same parity as ``popcount(a) + popcount(b)`` — so only **one** word per
    reduced element pays for a popcount.
    """
    folded = np.bitwise_xor.reduce(np.asarray(words, dtype=np.uint64),
                                   axis=axis)
    return (popcount_words(folded) & np.uint8(1)).astype(np.uint8)


def row_parity(words: np.ndarray) -> np.ndarray:
    """Per-row GF(2) bit sum of packed rows ``(..., W)`` → ``(...,)`` uint8."""
    return parity(words, axis=-1)


# ---------------------------------------------------------------------------
# Packed mod-2 matmul (AND + popcount)
# ---------------------------------------------------------------------------

#: Row-chunk budget for the broadcast AND in :func:`mod2_matmul_packed`;
#: keeps the (chunk, Rb, W) intermediate around a few MB.
_MATMUL_CHUNK_WORDS = 1 << 19


def mod2_matmul_packed(a_words: np.ndarray,
                       b_words: np.ndarray) -> np.ndarray:
    """GF(2) product of packed row sets: ``out[i, j] = <a_i, b_j> mod 2``.

    ``a_words`` is ``(Ra, W)`` and ``b_words`` is ``(Rb, W)`` over the same
    ``W``-word bit width; the result is ``(Ra, Rb)`` uint8.  Each entry is
    the parity of the AND of the two packed rows — an exact integer
    computation at any operand size (no float32 ceiling).  Row chunking
    bounds the broadcast intermediate to a few MB.
    """
    a_words = np.atleast_2d(np.asarray(a_words, dtype=np.uint64))
    b_words = np.atleast_2d(np.asarray(b_words, dtype=np.uint64))
    if a_words.shape[1] != b_words.shape[1]:
        raise ValueError(
            f"word-width mismatch: {a_words.shape[1]} vs {b_words.shape[1]}")
    n_a, n_words = a_words.shape
    n_b = b_words.shape[0]
    out = np.empty((n_a, n_b), dtype=np.uint8)
    chunk = max(1, _MATMUL_CHUNK_WORDS // max(1, n_b * n_words))
    for start in range(0, n_a, chunk):
        stop = min(start + chunk, n_a)
        pairs = a_words[start:stop, np.newaxis, :] & b_words[np.newaxis, :, :]
        out[start:stop] = parity(pairs, axis=-1)
    return out


def mod2_matvec_packed(a_words: np.ndarray,
                       v_words: np.ndarray) -> np.ndarray:
    """Per-row GF(2) dot product ``<a_i, v> mod 2`` → ``(Ra,)`` uint8."""
    a_words = np.atleast_2d(np.asarray(a_words, dtype=np.uint64))
    v_words = np.asarray(v_words, dtype=np.uint64).ravel()
    if a_words.shape[1] != v_words.shape[0]:
        raise ValueError(
            f"word-width mismatch: {a_words.shape[1]} vs {v_words.shape[0]}")
    return parity(a_words & v_words[np.newaxis, :], axis=-1)


# ---------------------------------------------------------------------------
# Gather-table matmul for a fixed matrix ("method of four Russians")
# ---------------------------------------------------------------------------


class Mod2GatherPlan:
    """Precompiled GF(2) matmul against one fixed ``(n_in, n_out)`` matrix.

    The plan groups the matrix's input bits into bytes and tabulates, for
    every byte position and each of its 256 values, the XOR of the matrix
    rows that byte selects — packed into output words.  The table is built
    by doubling (``table[pos, m | bit] = table[pos, m] ^ row``), costing
    256 XORs per input byte once; applying the matrix to a batch is then

    .. code-block:: python

        for pos in range(n_in_bytes):
            out ^= table[pos, input_bytes[:, pos]]

    one fancy-index gather + XOR per input byte — no per-bit popcount at
    all, and the accumulation is pure XOR so the result is exactly the
    mod-2 product.  This is the syndrome-extraction workhorse: the
    incidence matrix is fixed per decoding graph, and the same plan serves
    every shot block of every experiment on that graph.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.ascontiguousarray(
            np.asarray(matrix).astype(np.uint8, copy=False) & 1)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got {matrix.shape}")
        self.n_in, self.n_out = (int(matrix.shape[0]), int(matrix.shape[1]))
        self.n_out_words = packed_words(self.n_out)
        self.n_in_bytes = (self.n_in + 7) // 8
        rows_packed = pack_rows(matrix, self.n_out)  # (n_in, n_out_words)
        table = np.zeros((self.n_in_bytes, 256, self.n_out_words),
                         dtype=np.uint64)
        for pos in range(self.n_in_bytes):
            base = pos * 8
            for bit in range(min(8, self.n_in - base)):
                mask = 1 << bit
                table[pos, mask:mask * 2] = (table[pos, :mask]
                                             ^ rows_packed[base + bit])
        self._table = table

    @property
    def nbytes(self) -> int:
        """Heap footprint of the gather table."""
        return int(self._table.nbytes)

    def matmul_bytes(self, in_bytes: np.ndarray) -> np.ndarray:
        """``(S, n_in_bytes)`` little-bitorder bytes → ``(S, W_out)`` words."""
        in_bytes = np.asarray(in_bytes, dtype=np.uint8)
        if in_bytes.ndim != 2 or in_bytes.shape[1] < self.n_in_bytes:
            raise ValueError(
                f"expected (S, >= {self.n_in_bytes}) input bytes, got "
                f"{in_bytes.shape}")
        out = np.zeros((in_bytes.shape[0], self.n_out_words), dtype=np.uint64)
        table = self._table
        for pos in range(self.n_in_bytes):
            out ^= table[pos, in_bytes[:, pos]]
        return out

    def matmul_rows(self, rows: np.ndarray) -> np.ndarray:
        """Dense 0/1 ``(S, n_in)`` rows → packed ``(S, W_out)`` product."""
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.n_in:
            raise ValueError(
                f"expected (S, {self.n_in}) rows, got {rows.shape}")
        rows = np.ascontiguousarray(rows.astype(np.uint8, copy=False) & 1)
        return self.matmul_bytes(
            np.packbits(rows, axis=1, bitorder="little"))

    def matmul_packed(self, in_words: np.ndarray) -> np.ndarray:
        """Packed ``(S, packed_words(n_in))`` rows → packed product."""
        in_words = np.asarray(in_words, dtype=np.uint64)
        if in_words.ndim != 2 \
                or in_words.shape[1] != packed_words(self.n_in):
            raise ValueError(
                f"expected (S, {packed_words(self.n_in)}) words, got "
                f"{in_words.shape}")
        byte_view = np.ascontiguousarray(in_words).view(np.uint8)
        if not np.little_endian:  # pragma: no cover - big-endian host
            byte_view = in_words.astype("<u8").view(np.uint8)
        return self.matmul_bytes(byte_view[:, :self.n_in_bytes])
