"""EFT-VQA: Variational Quantum Algorithms in the era of Early Fault Tolerance.

Reproduction of Dangwal et al., ISCA 2025 (arXiv:2503.20963).  The package is
organised bottom-up:

* :mod:`repro.circuits` / :mod:`repro.operators` / :mod:`repro.simulators` —
  circuit IR, Pauli algebra / Hamiltonians, and the statevector /
  density-matrix / stabilizer / Pauli-propagation simulators; the dense
  engines execute circuits through the compile layer
  (:mod:`repro.simulators.program`): fingerprint-cached
  :class:`~repro.simulators.program.CompiledProgram` objects with gate
  fusion, diagonal/permutation fast paths and pre-merged noise channels;
* :mod:`repro.qec` — surface-code error models, magic-state distillation and
  cultivation, Clifford+T synthesis, matching decoder, memory experiments;
* :mod:`repro.architecture` — logical-qubit layouts, lattice-surgery costs
  and the spacetime-volume scheduler;
* :mod:`repro.ansatz` — linear / fully-connected / blocked_all_to_all / UCCSD
  ansatz families and the Sec. 4.4 gate-count design rules;
* :mod:`repro.core` — the paper's contribution: execution regimes (NISQ,
  pQEC, qec-conventional, qec-cultivation), Rz magic-state injection, patch
  shuffling, circuit fidelity estimation, device resource modelling and the
  γ metric;
* :mod:`repro.execution` — the unified execution-backend API: every consumer
  dispatches :class:`ExecutionTask` objects through :func:`execute`, which
  batches, deduplicates, LRU-caches and regime-aware-routes them onto the
  four simulators behind a common :class:`Backend` protocol; many-term
  Hamiltonians ride the grouped-observable engine
  (:func:`evaluate_observable` / :func:`term_expectations`): one circuit
  evolution serves every Pauli term, with per-(circuit, term) caching;
  parameter sweeps ride :func:`evaluate_sweep`: the template compiles once
  and every point executes in one stacked, batched NumPy pass;
* :mod:`repro.vqe` / :mod:`repro.mitigation` — the VQE engine (continuous and
  Clifford-restricted) and NISQ-inherited mitigation (VarSaw, ZNE).

Quick start — evaluate one Hamiltonian through every execution path with a
single batched, cached call::

    from repro import (ExecutionTask, FullyConnectedAnsatz, execute,
                       get_backend, ising_hamiltonian)

    hamiltonian = ising_hamiltonian(8, coupling=1.0)
    circuit = FullyConnectedAnsatz(8, depth=1).build().bind_parameters(
        [0.0] * 32)

    # "auto" routes per task: Clifford circuits go to the stabilizer /
    # Pauli-propagation paths, small noisy circuits to the density matrix.
    results = execute([ExecutionTask(circuit, observable=hamiltonian)],
                      backend="auto")
    print(results[0].value, results[0].backend_name)

    # Explicit backends are one registry lookup away.
    print(get_backend("statevector").capabilities())

Regime comparison (the paper's headline experiment) sits one layer up::

    from repro import (NISQRegime, PQECRegime, compare_regimes_clifford,
                       FullyConnectedAnsatz, ising_hamiltonian)

    outcome = compare_regimes_clifford(ising_hamiltonian(16, 1.0),
                                       FullyConnectedAnsatz(16, depth=1),
                                       PQECRegime(), NISQRegime())
    print(outcome["comparison"].gamma)
"""

from .algorithms import QAOA, QAOAAnsatz, VQD, VariationalClassifier
from .ansatz import (Ansatz, BlockedAllToAllAnsatz, FCHEAnsatz,
                     FullyConnectedAnsatz, LinearAnsatz, UCCSDAnsatz,
                     make_ansatz)
from .architecture import (EFTCompiler, ProposedLayout, make_layout,
                           schedule_on_layout)
from .circuits import Parameter, ParameterVector, QuantumCircuit
from .core import (EFTDevice, NISQRegime, PQECRegime, QECConventionalRegime,
                   QECCultivationRegime, CircuitProfile, estimate_fidelity,
                   injection_error_rate, relative_improvement)
from .estimation import ResourceEstimator
from .execution import (Backend, BackendCapabilities, BackendRegistry,
                        ExecutionResult, ExecutionTask, Executor,
                        available_backends, evaluate_observable,
                        evaluate_sweep, execute, get_backend,
                        register_backend, term_expectations)
from .operators import (FermionicOperator, PauliString, PauliSum,
                        heisenberg_hamiltonian, ising_hamiltonian,
                        jordan_wigner, maxcut_cost_hamiltonian,
                        molecular_hamiltonian)
from .qec import (FactoryConfig, MWPMDecoder, SurfaceCodePatch,
                  UnionFindDecoder, get_factory, logical_error_rate,
                  surface_code_memory_experiment, t_count_for_precision)
from .simulators import (DensityMatrixSimulator, NoiseModel,
                         StabilizerSimulator, StatevectorSimulator)
from .synthesis import approximate_rz
from .vqe import (VQE, BackendEnergyEvaluator, CliffordVQE, CobylaOptimizer,
                  GeneticOptimizer, SPSAOptimizer, compare_regimes,
                  compare_regimes_clifford, compare_regimes_opr)

__version__ = "1.0.0"

__all__ = [
    "Ansatz",
    "Backend",
    "BackendCapabilities",
    "BackendEnergyEvaluator",
    "BackendRegistry",
    "BlockedAllToAllAnsatz",
    "CircuitProfile",
    "CliffordVQE",
    "CobylaOptimizer",
    "DensityMatrixSimulator",
    "EFTCompiler",
    "EFTDevice",
    "ExecutionResult",
    "ExecutionTask",
    "Executor",
    "FCHEAnsatz",
    "FactoryConfig",
    "FermionicOperator",
    "FullyConnectedAnsatz",
    "GeneticOptimizer",
    "LinearAnsatz",
    "MWPMDecoder",
    "NISQRegime",
    "NoiseModel",
    "PQECRegime",
    "Parameter",
    "ParameterVector",
    "PauliString",
    "PauliSum",
    "ProposedLayout",
    "QAOA",
    "QAOAAnsatz",
    "QECConventionalRegime",
    "QECCultivationRegime",
    "QuantumCircuit",
    "ResourceEstimator",
    "SPSAOptimizer",
    "StabilizerSimulator",
    "StatevectorSimulator",
    "SurfaceCodePatch",
    "UCCSDAnsatz",
    "UnionFindDecoder",
    "VQD",
    "VQE",
    "VariationalClassifier",
    "__version__",
    "approximate_rz",
    "available_backends",
    "compare_regimes",
    "compare_regimes_clifford",
    "compare_regimes_opr",
    "estimate_fidelity",
    "evaluate_observable",
    "evaluate_sweep",
    "execute",
    "get_backend",
    "get_factory",
    "heisenberg_hamiltonian",
    "injection_error_rate",
    "ising_hamiltonian",
    "jordan_wigner",
    "logical_error_rate",
    "make_ansatz",
    "make_layout",
    "maxcut_cost_hamiltonian",
    "register_backend",
    "molecular_hamiltonian",
    "relative_improvement",
    "schedule_on_layout",
    "surface_code_memory_experiment",
    "t_count_for_precision",
    "term_expectations",
]
