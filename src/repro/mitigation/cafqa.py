"""CAFQA-style Clifford bootstrap initialization for VQE.

CAFQA (Ravi et al., cited by the paper as a pre-processing technique that
transitions to the EFT era) replaces the random VQA starting point with the
best *Clifford* parameter assignment, found by a cheap classical search over
stabilizer states.  The continuous optimizer then starts from a point that is
already close to the ground state, which both speeds up convergence and — in
noisy regimes — keeps the optimizer inside the well the noise has not yet
washed out.

The implementation composes two existing pieces: the discrete
:class:`~repro.vqe.clifford_vqe.CliffordVQE` search (noiseless, classically
simulable) provides the starting angles, and the continuous
:class:`~repro.vqe.runner.VQE` refines them under whatever evaluator /
regime the caller supplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ansatz.base import Ansatz
from ..operators.pauli import PauliSum
from ..vqe.clifford_vqe import CliffordVQE
from ..vqe.energy import BackendEnergyEvaluator, EnergyEvaluator
from ..vqe.optimizers import (CobylaOptimizer, GeneticOptimizer, Optimizer)
from ..vqe.runner import VQE, VQEResult


@dataclass(frozen=True)
class CAFQAInitialization:
    """The Clifford bootstrap: starting angles and their noiseless energy."""

    angles: np.ndarray
    indices: np.ndarray
    clifford_energy: float
    num_evaluations: int


def cafqa_initialization(hamiltonian: PauliSum, ansatz: Ansatz,
                         optimizer: Optional[GeneticOptimizer] = None,
                         seed: Optional[int] = 0) -> CAFQAInitialization:
    """Find the best Clifford starting point for ``(hamiltonian, ansatz)``.

    The search is noiseless and fully classical (stabilizer simulation), so it
    costs no quantum-device shots — the defining property of CAFQA.
    """
    search = CliffordVQE(hamiltonian, ansatz, noise_model=None,
                         optimizer=optimizer or GeneticOptimizer(seed=seed),
                         benchmark_name="cafqa", regime_name="noiseless",
                         seed=seed)
    result = search.run()
    return CAFQAInitialization(
        angles=np.asarray(result.best_parameters, dtype=float),
        indices=np.asarray(result.parameter_indices, dtype=int),
        clifford_energy=float(result.best_energy),
        num_evaluations=int(result.num_evaluations))


class CAFQABootstrappedVQE:
    """Continuous VQE whose starting point is the CAFQA Clifford optimum."""

    def __init__(self, hamiltonian: PauliSum, ansatz: Ansatz,
                 evaluator: Optional[EnergyEvaluator] = None,
                 optimizer: Optional[Optimizer] = None,
                 clifford_optimizer: Optional[GeneticOptimizer] = None,
                 reference_energy: Optional[float] = None,
                 seed: Optional[int] = 0):
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz
        self.evaluator = evaluator or BackendEnergyEvaluator.exact(hamiltonian)
        self.optimizer = optimizer or CobylaOptimizer()
        self.clifford_optimizer = clifford_optimizer
        self.reference_energy = reference_energy
        self.seed = seed
        self.initialization: Optional[CAFQAInitialization] = None

    def bootstrap(self) -> CAFQAInitialization:
        """Run (and cache) the Clifford search."""
        if self.initialization is None:
            self.initialization = cafqa_initialization(
                self.hamiltonian, self.ansatz,
                optimizer=self.clifford_optimizer, seed=self.seed)
        return self.initialization

    def run(self) -> VQEResult:
        """Bootstrap, then refine continuously from the Clifford angles."""
        initialization = self.bootstrap()
        vqe = VQE(self.hamiltonian, self.ansatz, self.evaluator, self.optimizer,
                  reference_energy=self.reference_energy,
                  benchmark_name="cafqa_vqe", regime_name="bootstrapped")
        result = vqe.run(initial_parameters=initialization.angles)
        # The refinement must never end up worse than its own starting point
        # under the same evaluator; guard against optimizer regressions.
        start_energy = vqe.energy(initialization.angles)
        if result.best_energy > start_energy:
            result = VQEResult(
                benchmark=result.benchmark, regime=result.regime,
                best_energy=start_energy,
                best_parameters=np.asarray(initialization.angles, dtype=float),
                reference_energy=self.reference_energy,
                num_evaluations=result.num_evaluations,
                history=result.history)
        return result


def compare_initializations(hamiltonian: PauliSum, ansatz: Ansatz,
                            evaluator_factory,
                            optimizer_factory=None,
                            seed: int = 0) -> dict:
    """Random-start VQE versus CAFQA-bootstrapped VQE under the same evaluator.

    Returns both :class:`VQEResult` objects plus the energy advantage of the
    bootstrap (positive when CAFQA helps) — the quantity the CAFQA ablation
    bench reports.
    """
    def make_optimizer():
        return optimizer_factory() if optimizer_factory else CobylaOptimizer()

    random_vqe = VQE(hamiltonian, ansatz, evaluator_factory(), make_optimizer(),
                     benchmark_name="random_init")
    random_result = random_vqe.run(seed=seed)

    bootstrapped = CAFQABootstrappedVQE(hamiltonian, ansatz,
                                        evaluator=evaluator_factory(),
                                        optimizer=make_optimizer(), seed=seed)
    cafqa_result = bootstrapped.run()
    return {
        "random": random_result,
        "cafqa": cafqa_result,
        "advantage": random_result.best_energy - cafqa_result.best_energy,
        "initialization": bootstrapped.initialization,
    }
