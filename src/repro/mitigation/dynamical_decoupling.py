"""Dynamical decoupling (DD) insertion and VAQEM-style sequence selection.

The paper's discussion (Sec. 7) singles out dynamical decoupling as a NISQ
technique whose EFT transition is "less direct": DD helps against slowly
varying coherent phase drift on idling qubits, which matters both for NISQ
idling and for stabilizer-circuit idling inside QEC.  This module provides

* circuit *idle-window* analysis on the circuit's greedy layering;
* insertion of X–X and XY4 DD sequences distributed across idle windows (one
  pulse per idle layer, placed in complete sequence groups so the ideal
  unitary is preserved up to a global phase);
* a joint drift + DD scheduler: coherent Z-drift accumulates on every idle
  (qubit, layer) slot of the *original* schedule, and DD pulses interleave
  with those accumulations — which is the spin-echo mechanism that makes the
  benefit measurable in simulation (purely Markovian relaxation channels
  cannot be echoed by construction);
* a small VAQEM-style selector that picks the best sequence per circuit by
  measuring the resulting energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..vqe.energy import EnergyEvaluator

#: Supported DD sequences: gate names making up one complete echo group.
DD_SEQUENCES: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "xx": ("x", "x"),
    "xy4": ("x", "y", "x", "y"),
}


def _layer_idle_sets(circuit: QuantumCircuit) -> List[set]:
    """Idle qubits per layer; measurement/barrier-only layers idle nobody."""
    idle_sets: List[set] = []
    for layer in circuit.layers():
        names = {inst.name for inst in layer}
        if names <= {"measure", "barrier"}:
            idle_sets.append(set())
            continue
        busy = set()
        for inst in layer:
            busy.update(inst.qubits)
        idle_sets.append(set(range(circuit.num_qubits)) - busy)
    return idle_sets


def idle_windows(circuit: QuantumCircuit) -> List[Tuple[int, Tuple[int, ...]]]:
    """``(layer_index, idle_qubits)`` for every layer with at least one idle qubit."""
    windows = []
    for layer_index, idle in enumerate(_layer_idle_sets(circuit)):
        if idle:
            windows.append((layer_index, tuple(sorted(idle))))
    return windows


def total_idle_slots(circuit: QuantumCircuit) -> int:
    """Number of (qubit, layer) idle slots — the exposure DD tries to protect."""
    return sum(len(idle) for idle in _layer_idle_sets(circuit))


def _pulse_plan(circuit: QuantumCircuit, sequence: str) -> Dict[Tuple[int, int], str]:
    """Map ``(layer_index, qubit) -> pulse name`` for the chosen sequence.

    Pulses are distributed one per idle layer along each maximal idle run of a
    qubit, truncated to complete sequence groups so every run's pulses multiply
    to the identity (up to phase).
    """
    if sequence not in DD_SEQUENCES:
        raise ValueError(f"unknown DD sequence {sequence!r}; choose from "
                         f"{sorted(DD_SEQUENCES)}")
    pulses = DD_SEQUENCES[sequence]
    plan: Dict[Tuple[int, int], str] = {}
    if not pulses:
        return plan
    idle_sets = _layer_idle_sets(circuit)
    for qubit in range(circuit.num_qubits):
        run: List[int] = []
        runs: List[List[int]] = []
        for layer_index, idle in enumerate(idle_sets):
            if qubit in idle:
                run.append(layer_index)
            elif run:
                runs.append(run)
                run = []
        if run:
            runs.append(run)
        for run_layers in runs:
            usable = (len(run_layers) // len(pulses)) * len(pulses)
            for position in range(usable):
                plan[(run_layers[position], qubit)] = pulses[position % len(pulses)]
    return plan


def insert_dd_sequences(circuit: QuantumCircuit, sequence: str = "xx"
                        ) -> QuantumCircuit:
    """Insert the named DD sequence into the circuit's idle windows.

    The ideal circuit unitary is unchanged up to a global phase because each
    idle run receives complete pulse groups only.
    """
    plan = _pulse_plan(circuit, sequence)
    decorated = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_dd")
    decorated.metadata = dict(circuit.metadata)
    for layer_index, layer in enumerate(circuit.layers()):
        for inst in layer:
            decorated.append_instruction(inst)
        for qubit in range(circuit.num_qubits):
            pulse = plan.get((layer_index, qubit))
            if pulse is not None:
                decorated.append(Gate(pulse), (qubit,))
    return decorated


def dd_pulse_count(circuit: QuantumCircuit, sequence: str = "xx") -> int:
    """How many pulses the insertion pass would add (the DD overhead)."""
    return len(_pulse_plan(circuit, sequence))


def schedule_with_idle_drift(circuit: QuantumCircuit, drift_angle: float,
                             sequence: str = "none") -> QuantumCircuit:
    """Attach coherent Z-drift to idle slots, interleaved with DD pulses.

    Drift is determined by the *original* schedule: every (qubit, layer) idle
    slot accumulates ``Rz(drift_angle)``.  When a DD pulse follows the
    accumulation, the next accumulation is echoed (``X·Rz(θ)·X = Rz(−θ)``),
    which is how X–X and XY4 sequences cancel the drift pairwise.
    """
    plan = _pulse_plan(circuit, sequence)
    idle_sets = _layer_idle_sets(circuit)
    scheduled = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_drift")
    scheduled.metadata = dict(circuit.metadata)
    for layer_index, layer in enumerate(circuit.layers()):
        for inst in layer:
            scheduled.append_instruction(inst)
        for qubit in sorted(idle_sets[layer_index]):
            if drift_angle:
                scheduled.rz(drift_angle, qubit)
            pulse = plan.get((layer_index, qubit))
            if pulse is not None:
                scheduled.append(Gate(pulse), (qubit,))
    return scheduled


@dataclass(frozen=True)
class DDSelectionResult:
    """Outcome of the VAQEM-style per-circuit DD sequence search."""

    best_sequence: str
    energies: Dict[str, float]

    @property
    def improvement(self) -> float:
        """Energy reduction of the best sequence relative to no DD."""
        return self.energies["none"] - self.energies[self.best_sequence]


class DynamicalDecouplingSelector:
    """Pick the DD sequence that minimizes the measured energy (VAQEM-style)."""

    def __init__(self, evaluator: EnergyEvaluator,
                 sequences: Sequence[str] = ("none", "xx", "xy4"),
                 drift_angle: float = 0.0):
        for name in sequences:
            if name not in DD_SEQUENCES:
                raise ValueError(f"unknown DD sequence {name!r}")
        self.evaluator = evaluator
        self.sequences = tuple(dict.fromkeys(("none",) + tuple(sequences)))
        self.drift_angle = float(drift_angle)

    def _prepared(self, circuit: QuantumCircuit, sequence: str) -> QuantumCircuit:
        return schedule_with_idle_drift(circuit, self.drift_angle, sequence)

    def select(self, circuit: QuantumCircuit) -> DDSelectionResult:
        energies = {name: self.evaluator(self._prepared(circuit, name))
                    for name in self.sequences}
        best = min(energies, key=energies.get)
        return DDSelectionResult(best_sequence=best, energies=energies)
