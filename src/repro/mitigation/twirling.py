"""Pauli twirling / randomized compiling of two-qubit gates.

Twirling conjugates every CNOT with uniformly random Pauli pairs chosen so the
*ideal* circuit is unchanged, while coherent error on the CNOT is averaged
into a stochastic Pauli channel.  The Clifford-state evaluation flow of the
paper (Sec. 5.2.2) already relies on Pauli-twirled approximations of
non-Clifford channels; this module provides the circuit-level transform and
an ensemble-averaged evaluator so the approximation can be validated rather
than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..execution.executor import evaluate_observable
from ..operators.pauli import PauliSum
from ..simulators.noise import NoiseModel

#: For each (control Pauli, target Pauli) applied *before* a CNOT, the pair
#: that must be applied *after* it so the net ideal operation stays a CNOT:
#: CX · (P_c ⊗ P_t) = (P'_c ⊗ P'_t) · CX.
_CNOT_TWIRL_PAIRS: Dict[Tuple[str, str], Tuple[str, str]] = {
    ("i", "i"): ("i", "i"),
    ("i", "x"): ("i", "x"),
    ("i", "y"): ("z", "y"),
    ("i", "z"): ("z", "z"),
    ("x", "i"): ("x", "x"),
    ("x", "x"): ("x", "i"),
    ("x", "y"): ("y", "z"),
    ("x", "z"): ("y", "y"),
    ("y", "i"): ("y", "x"),
    ("y", "x"): ("y", "i"),
    ("y", "y"): ("x", "z"),
    ("y", "z"): ("x", "y"),
    ("z", "i"): ("z", "i"),
    ("z", "x"): ("z", "x"),
    ("z", "y"): ("i", "y"),
    ("z", "z"): ("i", "z"),
}

_PAULI_NAMES = ("i", "x", "y", "z")


def propagate_pauli_through_cnot(control_pauli: str, target_pauli: str
                                 ) -> Tuple[str, str]:
    """The Pauli pair a CNOT maps ``(control, target)`` onto (up to phase)."""
    key = (control_pauli.lower(), target_pauli.lower())
    if key not in _CNOT_TWIRL_PAIRS:
        raise ValueError(f"unknown Pauli pair {key!r}")
    return _CNOT_TWIRL_PAIRS[key]


def pauli_twirl_circuit(circuit: QuantumCircuit,
                        rng: Optional[np.random.Generator] = None,
                        seed: Optional[int] = None) -> QuantumCircuit:
    """One random twirl: dress every CNOT with compensating Pauli pairs.

    The returned circuit implements the same unitary as the input (up to a
    global phase) for any choice of random Paulis.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    twirled = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_twirled")
    twirled.metadata = dict(circuit.metadata)
    for inst in circuit.instructions:
        if inst.name not in ("cx", "cnot"):
            twirled.append_instruction(inst)
            continue
        control, target = inst.qubits
        before = (_PAULI_NAMES[rng.integers(0, 4)],
                  _PAULI_NAMES[rng.integers(0, 4)])
        after = propagate_pauli_through_cnot(*before)
        for qubit, name in zip((control, target), before):
            if name != "i":
                twirled.append(Gate(name), (qubit,))
        twirled.append(inst.gate, inst.qubits)
        for qubit, name in zip((control, target), after):
            if name != "i":
                twirled.append(Gate(name), (qubit,))
    return twirled


@dataclass(frozen=True)
class TwirledExpectation:
    """Ensemble-averaged expectation value and its sampling spread."""

    mean: float
    standard_error: float
    samples: Tuple[float, ...]

    @property
    def num_samples(self) -> int:
        return len(self.samples)


def twirled_ensemble_expectation(circuit: QuantumCircuit,
                                 observable: PauliSum,
                                 noise_model: Optional[NoiseModel] = None,
                                 num_twirls: int = 8,
                                 seed: Optional[int] = 0) -> TwirledExpectation:
    """⟨H⟩ averaged over ``num_twirls`` random compilations of the circuit.

    All twirls are submitted as one batched
    :func:`repro.execution.evaluate_observable` call (noisy twirls run on
    the density-matrix backend, noiseless ones on the statevector backend):
    each distinct dressing is evolved once — every Hamiltonian term comes
    from that single evolution — coinciding dressings collapse, and the
    ensemble fans out across the executor's thread pool.
    """
    if num_twirls < 1:
        raise ValueError("num_twirls must be at least 1")
    rng = np.random.default_rng(seed)
    backend = "density_matrix" if noise_model is not None else "statevector"
    circuits = [pauli_twirl_circuit(circuit, rng=rng)
                for _ in range(num_twirls)]
    values = evaluate_observable(circuits, observable,
                                 noise_model=noise_model, backend=backend)
    values_array = np.asarray(values)
    spread = (float(values_array.std(ddof=1) / np.sqrt(num_twirls))
              if num_twirls > 1 else 0.0)
    return TwirledExpectation(mean=float(values_array.mean()),
                              standard_error=spread,
                              samples=tuple(values))
