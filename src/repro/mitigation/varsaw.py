"""VarSaw-style measurement-error mitigation for VQAs (paper Sec. 7, Fig. 15).

VarSaw (Dangwal et al., ASPLOS 2023) tailors measurement-error mitigation to
VQA workloads by exploiting the structure of the Pauli measurement groups.
The reproduction implements the mechanism the paper's Fig. 15 exercises:

* calibrate a per-qubit symmetric readout-flip probability (from the regime's
  noise model or from calibration-circuit sampling), and
* invert the readout channel analytically on every Pauli expectation value —
  for uncorrelated symmetric flips the measured expectation of a weight-w
  Pauli is the ideal one scaled by ``(1 − 2·p_meas)^w``, so the corrected
  estimate divides that factor out, per qubit-wise-commuting group.

The result is a drop-in :class:`MitigatedEnergyEvaluator` whose VQE
convergence can be compared against the unmitigated evaluator under both the
NISQ and pQEC regimes, as in Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..operators.pauli import PauliString, PauliSum
from ..simulators.noise import NoiseModel
from ..vqe.energy import EnergyEvaluator


@dataclass(frozen=True)
class ReadoutCalibration:
    """Per-qubit symmetric readout flip probabilities."""

    flip_probabilities: tuple

    @classmethod
    def uniform(cls, num_qubits: int, probability: float) -> "ReadoutCalibration":
        if not 0.0 <= probability < 0.5:
            raise ValueError("readout flip probability must lie in [0, 0.5)")
        return cls(tuple(float(probability) for _ in range(num_qubits)))

    @classmethod
    def from_noise_model(cls, num_qubits: int,
                         noise_model: Optional[NoiseModel]) -> "ReadoutCalibration":
        probability = noise_model.readout_error if noise_model is not None else 0.0
        return cls.uniform(num_qubits, probability)

    @property
    def num_qubits(self) -> int:
        return len(self.flip_probabilities)

    def damping_factor(self, pauli: PauliString) -> float:
        """(1 − 2p_q) over the support of the Pauli — the readout attenuation."""
        factor = 1.0
        for qubit in pauli.support():
            factor *= 1.0 - 2.0 * self.flip_probabilities[qubit]
        return factor


class VarSawMitigator:
    """Inverts the readout attenuation of each Pauli group's expectation values."""

    def __init__(self, hamiltonian: PauliSum, calibration: ReadoutCalibration,
                 min_factor: float = 1e-3):
        if calibration.num_qubits != hamiltonian.num_qubits:
            raise ValueError("calibration and Hamiltonian qubit counts differ")
        self.hamiltonian = hamiltonian
        self.calibration = calibration
        self.min_factor = min_factor
        self._groups = hamiltonian.group_qubitwise_commuting()

    @property
    def num_measurement_groups(self) -> int:
        return len(self._groups)

    def correct_term(self, pauli: PauliString, measured_value: float) -> float:
        """Undo the readout attenuation of one Pauli expectation value."""
        factor = self.calibration.damping_factor(pauli)
        factor = max(abs(factor), self.min_factor) * (1.0 if factor >= 0 else -1.0)
        corrected = measured_value / factor
        return float(np.clip(corrected, -1.0, 1.0))

    def correct_energy(self, term_values: Dict[bytes, float]) -> float:
        """Re-assemble the energy from corrected per-term expectation values.

        ``term_values`` maps the phase-free Pauli key to the *measured*
        (attenuated) expectation value.
        """
        total = 0.0
        for pauli, coeff in self.hamiltonian.terms():
            if pauli.is_identity():
                total += float(np.real(coeff))
                continue
            measured = term_values.get(pauli.key())
            if measured is None:
                raise KeyError(f"missing measured value for term {pauli.label}")
            total += float(np.real(coeff)) * self.correct_term(pauli, measured)
        return total


class MitigatedEnergyEvaluator(EnergyEvaluator):
    """Wraps a noisy evaluator and applies VarSaw readout correction.

    Per-term (attenuated) expectation values are obtained in a single
    simulation pass — from the final density matrix for
    :meth:`~repro.vqe.energy.BackendEnergyEvaluator.density_matrix`
    evaluators, or from one Pauli propagation for
    :meth:`~repro.vqe.energy.BackendEnergyEvaluator.clifford` evaluators —
    then each term is corrected by dividing out its calibrated readout
    attenuation.
    """

    def __init__(self, base_evaluator: EnergyEvaluator,
                 calibration: Optional[ReadoutCalibration] = None):
        super().__init__(base_evaluator.hamiltonian)
        self.base_evaluator = base_evaluator
        noise_model = getattr(base_evaluator, "noise_model", None)
        self.noise_model = noise_model
        self.calibration = calibration or ReadoutCalibration.from_noise_model(
            base_evaluator.hamiltonian.num_qubits, noise_model)
        self.mitigator = VarSawMitigator(base_evaluator.hamiltonian, self.calibration)

    # -- per-term measured expectations (one simulation pass) -------------------
    def _measured_term_values(self, circuit: QuantumCircuit) -> Dict[bytes, float]:
        """One grouped-observable evaluation; per-term values by Pauli key.

        All backends go through
        :meth:`repro.execution.Executor.term_expectations`, which evolves the
        canonicalized circuit **once** and reads every Hamiltonian term off
        the final state (the per-term values are also cached per
        (circuit, term), so the surrounding VQE loop's repeated queries are
        free).  The Clifford/Pauli-propagation path models readout
        attenuation analytically here — the propagated circuit carries no
        measure instructions — while the density-matrix engine applies it
        internally.
        """
        from ..circuits.transpile import decompose_to_clifford_rz, merge_rz_runs
        from ..execution.executor import default_executor

        readout = self.noise_model.readout_error if self.noise_model is not None else 0.0
        canonical = merge_rz_runs(decompose_to_clifford_rz(circuit))
        executor = default_executor()
        # Dispatch on the evaluator's configured backend name, not its
        # class: the classmethod presets (BackendEnergyEvaluator.clifford /
        # .density_matrix) and the deprecated subclass shims carry the same
        # ``backend`` attribute, so both route identically here.
        base_backend = getattr(self.base_evaluator, "backend", None)
        if base_backend == "pauli_propagation":
            backend = "pauli_propagation"
            damping = 1.0 - 2.0 * readout
        elif base_backend == "density_matrix":
            backend = "density_matrix"
            damping = 1.0  # readout attenuation applied by the simulator
        else:
            backend = "auto"
            damping = 1.0
        values = executor.term_expectations(canonical, self.hamiltonian,
                                            noise_model=self.noise_model,
                                            backend=backend)
        measured: Dict[bytes, float] = {}
        for (pauli, _), value in zip(self.hamiltonian.terms(), values):
            measured[pauli.key()] = float(value) * damping ** pauli.weight()
        return measured

    def evaluate(self, circuit: QuantumCircuit) -> float:
        return self.mitigator.correct_energy(self._measured_term_values(circuit))
