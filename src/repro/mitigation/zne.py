"""Zero-noise extrapolation (ZNE) — a NISQ technique that transitions to EFT.

The paper's discussion section argues that pre/post-processing mitigation
such as ZNE carries over to the EFT regime because its benefit is independent
of how the circuit is executed.  This module provides digital ZNE by unitary
folding: the noise level is amplified by replacing the circuit ``U`` with
``U (U† U)^k`` (scale factor 2k+1), the noisy expectation is measured at each
scale, and a polynomial (default linear/Richardson) fit is extrapolated to
the zero-noise limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..vqe.energy import EnergyEvaluator


def fold_circuit(circuit: QuantumCircuit, scale_factor: int) -> QuantumCircuit:
    """Global unitary folding: U → U (U† U)^k with scale factor 2k + 1."""
    if scale_factor < 1 or scale_factor % 2 == 0:
        raise ValueError("scale factor must be an odd positive integer")
    folds = (scale_factor - 1) // 2
    body = circuit.without_measurements()
    folded = body.copy(name=f"{circuit.name}_x{scale_factor}")
    inverse = body.inverse()
    for _ in range(folds):
        folded = folded.compose(inverse).compose(body)
    return folded


@dataclass(frozen=True)
class ZNEResult:
    """Outcome of one zero-noise extrapolation."""

    scale_factors: Tuple[int, ...]
    measured_values: Tuple[float, ...]
    extrapolated_value: float
    fit_coefficients: Tuple[float, ...]


def richardson_extrapolate(scale_factors: Sequence[int],
                           values: Sequence[float],
                           order: int = 1) -> Tuple[float, np.ndarray]:
    """Polynomial fit of value(scale) and its extrapolation to scale = 0."""
    if len(scale_factors) != len(values) or len(values) < 2:
        raise ValueError("need at least two (scale, value) pairs")
    if order >= len(values):
        raise ValueError("polynomial order must be below the number of points")
    coefficients = np.polyfit(np.asarray(scale_factors, dtype=float),
                              np.asarray(values, dtype=float), deg=order)
    extrapolated = float(np.polyval(coefficients, 0.0))
    return extrapolated, coefficients


def zero_noise_extrapolation(circuit: QuantumCircuit,
                             evaluator: EnergyEvaluator,
                             scale_factors: Sequence[int] = (1, 3, 5),
                             order: int = 1) -> ZNEResult:
    """Run digital ZNE of ⟨H⟩ for the given circuit and noisy evaluator."""
    values: List[float] = []
    for scale in scale_factors:
        folded = fold_circuit(circuit, scale)
        values.append(float(evaluator(folded)))
    extrapolated, coefficients = richardson_extrapolate(scale_factors, values, order)
    return ZNEResult(
        scale_factors=tuple(int(s) for s in scale_factors),
        measured_values=tuple(values),
        extrapolated_value=extrapolated,
        fit_coefficients=tuple(float(c) for c in coefficients),
    )


class ZNEEnergyEvaluator(EnergyEvaluator):
    """Energy evaluator that applies ZNE around a noisy base evaluator."""

    def __init__(self, base_evaluator: EnergyEvaluator,
                 scale_factors: Sequence[int] = (1, 3, 5), order: int = 1):
        super().__init__(base_evaluator.hamiltonian)
        self.base_evaluator = base_evaluator
        self.scale_factors = tuple(scale_factors)
        self.order = order

    def evaluate(self, circuit: QuantumCircuit) -> float:
        result = zero_noise_extrapolation(circuit, self.base_evaluator,
                                          self.scale_factors, self.order)
        return result.extrapolated_value
