"""QISMET-style transient-error detection and iteration skipping.

QISMET (cited in the paper's Sec. 7 as a technique for "managing transient
errors") observes that VQA training iterations occasionally land on a device
whose noise has temporarily spiked; accepting that measurement corrupts the
optimizer's trajectory.  The controller below reproduces the mechanism:

* it predicts the next energy from the recent history (the VQA loss surface
  is smooth between adjacent iterates),
* flags a measurement as *transient* when it deviates from the prediction by
  more than a threshold, and
* re-measures (up to a retry budget) before accepting the value.

A :class:`TransientNoiseInjector` wraps any energy evaluator with a
controllable probability of large transient offsets so the benefit can be
demonstrated and benchmarked deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..vqe.energy import EnergyEvaluator


class TransientNoiseInjector(EnergyEvaluator):
    """Wrap an evaluator with occasional large transient offsets."""

    def __init__(self, base_evaluator: EnergyEvaluator,
                 transient_probability: float = 0.15,
                 transient_magnitude: float = 4.0,
                 seed: Optional[int] = 0):
        if not 0.0 <= transient_probability <= 1.0:
            raise ValueError("transient_probability must be in [0, 1]")
        super().__init__(base_evaluator.hamiltonian)
        self.base_evaluator = base_evaluator
        self.transient_probability = float(transient_probability)
        self.transient_magnitude = float(transient_magnitude)
        self._rng = np.random.default_rng(seed)
        self.transients_injected = 0

    def evaluate(self, circuit: QuantumCircuit) -> float:
        value = self.base_evaluator(circuit)
        if self._rng.random() < self.transient_probability:
            self.transients_injected += 1
            value += self.transient_magnitude * abs(self._rng.normal(1.0, 0.25))
        return value


@dataclass
class QISMETStatistics:
    """Bookkeeping of the controller's decisions."""

    accepted: int = 0
    flagged: int = 0
    retries: int = 0
    history: List[float] = field(default_factory=list)

    @property
    def flag_rate(self) -> float:
        total = self.accepted + self.flagged
        return self.flagged / total if total else 0.0


class QISMETController(EnergyEvaluator):
    """Energy evaluator that detects and retries transient measurements.

    The prediction is the running minimum of recently accepted energies plus a
    tolerance band: VQA objectives decrease slowly, so a sudden jump of more
    than ``threshold`` above the recent envelope is treated as a transient and
    re-measured.  If every retry still exceeds the band, the smallest observed
    value is accepted (the spike may be a genuine feature of the landscape).
    """

    def __init__(self, base_evaluator: EnergyEvaluator,
                 threshold: float = 1.0, window: int = 8,
                 max_retries: int = 2):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        super().__init__(base_evaluator.hamiltonian)
        self.base_evaluator = base_evaluator
        self.threshold = float(threshold)
        self.window = int(window)
        self.max_retries = int(max_retries)
        self.statistics = QISMETStatistics()

    def _predicted_envelope(self) -> Optional[float]:
        recent = self.statistics.history[-self.window:]
        if not recent:
            return None
        return min(recent)

    def evaluate(self, circuit: QuantumCircuit) -> float:
        envelope = self._predicted_envelope()
        value = self.base_evaluator(circuit)
        if envelope is None or value <= envelope + self.threshold:
            self.statistics.accepted += 1
            self.statistics.history.append(value)
            return value
        # Suspected transient: retry and keep the most plausible value.
        self.statistics.flagged += 1
        best = value
        for _ in range(self.max_retries):
            self.statistics.retries += 1
            retry = self.base_evaluator(circuit)
            best = min(best, retry)
            if retry <= envelope + self.threshold:
                break
        self.statistics.accepted += 1
        self.statistics.history.append(best)
        return best
