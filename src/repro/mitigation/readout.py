"""Tensored readout-calibration-matrix mitigation.

The VarSaw module (:mod:`repro.mitigation.varsaw`) applies measurement-error
mitigation at the level of Pauli expectation values; this module provides the
complementary *counts-level* technique: build per-qubit confusion matrices
from calibration data, invert their tensor product, and apply the inverse to
measured bitstring distributions.  Both flows are exercised by the Fig. 15
style benches so the two mitigation layers can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..operators.pauli import PauliString, PauliSum


@dataclass(frozen=True)
class QubitConfusion:
    """Per-qubit readout confusion probabilities."""

    p0_given_1: float   # probability of reading 0 when the state is 1
    p1_given_0: float   # probability of reading 1 when the state is 0

    def __post_init__(self):
        for value in (self.p0_given_1, self.p1_given_0):
            if not 0.0 <= value < 0.5:
                raise ValueError("confusion probabilities must be in [0, 0.5)")

    @property
    def matrix(self) -> np.ndarray:
        """Column-stochastic 2×2 matrix: columns = true state, rows = readout."""
        return np.array([[1.0 - self.p1_given_0, self.p0_given_1],
                         [self.p1_given_0, 1.0 - self.p0_given_1]])


class ReadoutCalibrationMatrix:
    """Tensored readout calibration and its (pseudo-)inverse."""

    def __init__(self, confusions: Sequence[QubitConfusion]):
        if not confusions:
            raise ValueError("need at least one qubit confusion entry")
        self._confusions = list(confusions)
        self._inverses = [np.linalg.inv(c.matrix) for c in self._confusions]

    # -- constructors ----------------------------------------------------------
    @classmethod
    def uniform(cls, num_qubits: int, error_probability: float
                ) -> "ReadoutCalibrationMatrix":
        """Symmetric readout error of the same strength on every qubit."""
        confusion = QubitConfusion(error_probability, error_probability)
        return cls([confusion] * num_qubits)

    @classmethod
    def from_calibration_counts(cls, zero_counts: Sequence[Mapping[str, int]],
                                one_counts: Sequence[Mapping[str, int]]
                                ) -> "ReadoutCalibrationMatrix":
        """Estimate per-qubit confusions from |0⟩ / |1⟩ preparation counts.

        ``zero_counts[q]`` / ``one_counts[q]`` are single-qubit counts
        (``{"0": n0, "1": n1}``) measured after preparing qubit ``q`` in |0⟩
        and |1⟩ respectively.
        """
        if len(zero_counts) != len(one_counts):
            raise ValueError("calibration data must cover the same qubits")
        confusions = []
        for zeros, ones in zip(zero_counts, one_counts):
            total_zero = sum(zeros.values())
            total_one = sum(ones.values())
            if total_zero == 0 or total_one == 0:
                raise ValueError("calibration counts cannot be empty")
            p1_given_0 = zeros.get("1", 0) / total_zero
            p0_given_1 = ones.get("0", 0) / total_one
            confusions.append(QubitConfusion(p0_given_1=min(p0_given_1, 0.499),
                                             p1_given_0=min(p1_given_0, 0.499)))
        return cls(confusions)

    # -- properties --------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self._confusions)

    def confusion(self, qubit: int) -> QubitConfusion:
        return self._confusions[qubit]

    # -- counts mitigation ----------------------------------------------------------
    def _distribution_from_counts(self, counts: Mapping[str, int]) -> np.ndarray:
        total = sum(counts.values())
        if total == 0:
            raise ValueError("counts cannot be empty")
        distribution = np.zeros(2 ** self.num_qubits)
        for bitstring, count in counts.items():
            if len(bitstring) != self.num_qubits:
                raise ValueError(f"bitstring {bitstring!r} has the wrong length")
            # Bitstring convention: character i is qubit i (qubit 0 left-most).
            index = sum(int(bit) << qubit for qubit, bit in enumerate(bitstring))
            distribution[index] += count / total
        return distribution

    def mitigate_counts(self, counts: Mapping[str, int],
                        clip_negative: bool = True) -> Dict[str, float]:
        """Apply the tensored inverse to a measured bitstring distribution."""
        distribution = self._distribution_from_counts(counts)
        tensor = distribution.reshape([2] * self.num_qubits)
        for qubit in range(self.num_qubits):
            # Axis for qubit q: with index = Σ bit_q << q, C-order reshape puts
            # qubit (n−1) on axis 0, so qubit q lives on axis (n−1−q).
            axis = self.num_qubits - 1 - qubit
            tensor = np.apply_along_axis(
                lambda column: self._inverses[qubit] @ column, axis, tensor)
        mitigated = tensor.reshape(-1)
        if clip_negative:
            mitigated = np.clip(mitigated, 0.0, None)
            total = mitigated.sum()
            if total > 0:
                mitigated = mitigated / total
        result: Dict[str, float] = {}
        for index, probability in enumerate(mitigated):
            if probability <= 1e-12:
                continue
            bits = "".join(str((index >> qubit) & 1)
                           for qubit in range(self.num_qubits))
            result[bits] = float(probability)
        return result

    # -- expectation mitigation --------------------------------------------------------
    def expectation_damping(self, pauli: PauliString) -> float:
        """The factor by which readout noise shrinks ⟨P⟩ for a Z-type Pauli."""
        damping = 1.0
        for qubit in pauli.support():
            confusion = self._confusions[qubit]
            damping *= 1.0 - confusion.p0_given_1 - confusion.p1_given_0
        return damping

    def mitigate_expectation(self, pauli: PauliString,
                             measured_value: float) -> float:
        """Invert the per-qubit damping of a diagonal Pauli expectation."""
        damping = self.expectation_damping(pauli)
        if damping <= 0:
            return measured_value
        corrected = measured_value / damping
        return float(np.clip(corrected, -1.0, 1.0))

    def mitigate_diagonal_energy(self, hamiltonian: PauliSum,
                                 term_values: Mapping[bytes, float]) -> float:
        """Readout-corrected ⟨H⟩ from measured per-term expectation values.

        ``term_values`` maps each Pauli term's key (``PauliString.key()[1]``,
        the Z-mask bytes) to its measured expectation; identity terms are added
        from the Hamiltonian's coefficients directly.
        """
        energy = 0.0
        for pauli, coeff in hamiltonian.terms():
            if pauli.is_identity():
                energy += coeff.real
                continue
            key = pauli.key()[1]
            if key not in term_values:
                raise KeyError(f"missing measured value for term {pauli.label}")
            energy += coeff.real * self.mitigate_expectation(
                pauli, term_values[key])
        return energy
