"""Error-mitigation techniques that transition from NISQ to the EFT regime.

The paper's Sec. 7 argues that several NISQ-era mitigation techniques remain
useful alongside partial QEC.  This package implements the ones it names:

* **VarSaw** (:mod:`.varsaw`) — application-tailored measurement-error
  mitigation per commuting Pauli group (demonstrated in the paper's Fig. 15);
* **ZNE** (:mod:`.zne`) — zero-noise extrapolation via gate folding;
* **Readout calibration** (:mod:`.readout`) — tensored confusion-matrix
  inversion at the counts level;
* **Dynamical decoupling** (:mod:`.dynamical_decoupling`) — idle-window pulse
  insertion plus VAQEM-style per-circuit sequence selection;
* **CAFQA** (:mod:`.cafqa`) — Clifford bootstrap initialization;
* **QISMET** (:mod:`.qismet`) — transient-error detection and retry;
* **Pauli twirling** (:mod:`.twirling`) — randomized compiling of CNOTs.
"""

from .cafqa import (CAFQABootstrappedVQE, CAFQAInitialization,
                    cafqa_initialization, compare_initializations)
from .dynamical_decoupling import (DD_SEQUENCES, DDSelectionResult,
                                   DynamicalDecouplingSelector, dd_pulse_count,
                                   idle_windows, insert_dd_sequences,
                                   schedule_with_idle_drift, total_idle_slots)
from .qismet import QISMETController, QISMETStatistics, TransientNoiseInjector
from .readout import QubitConfusion, ReadoutCalibrationMatrix
from .twirling import (TwirledExpectation, pauli_twirl_circuit,
                       propagate_pauli_through_cnot,
                       twirled_ensemble_expectation)
from .varsaw import (MitigatedEnergyEvaluator, ReadoutCalibration,
                     VarSawMitigator)
from .zne import (ZNEEnergyEvaluator, ZNEResult, fold_circuit,
                  richardson_extrapolate, zero_noise_extrapolation)

__all__ = [
    "CAFQABootstrappedVQE",
    "CAFQAInitialization",
    "DD_SEQUENCES",
    "DDSelectionResult",
    "DynamicalDecouplingSelector",
    "MitigatedEnergyEvaluator",
    "QISMETController",
    "QISMETStatistics",
    "QubitConfusion",
    "ReadoutCalibration",
    "ReadoutCalibrationMatrix",
    "TransientNoiseInjector",
    "TwirledExpectation",
    "VarSawMitigator",
    "ZNEEnergyEvaluator",
    "ZNEResult",
    "cafqa_initialization",
    "compare_initializations",
    "dd_pulse_count",
    "fold_circuit",
    "idle_windows",
    "insert_dd_sequences",
    "pauli_twirl_circuit",
    "propagate_pauli_through_cnot",
    "richardson_extrapolate",
    "schedule_with_idle_drift",
    "total_idle_slots",
    "twirled_ensemble_expectation",
    "zero_noise_extrapolation",
]
