"""Composing NISQ-era mitigation with pQEC execution (paper Sec. 7).

Demonstrates the four mitigation layers the repository implements on one
8-qubit Ising VQE:

* CAFQA Clifford bootstrap initialization (better starting point, no extra
  quantum cost);
* VarSaw readout mitigation (per-term measurement-error correction);
* QISMET transient filtering (retry measurements that jump off the recent
  energy envelope);
* VAQEM-style dynamical-decoupling sequence selection under coherent idle
  drift.

Run with:  python examples/mitigation_stack.py
"""

import numpy as np

from repro import (FullyConnectedAnsatz, NISQRegime, PQECRegime,
                   ising_hamiltonian)
from repro.mitigation import (DynamicalDecouplingSelector,
                              MitigatedEnergyEvaluator, QISMETController,
                              TransientNoiseInjector, cafqa_initialization)
from repro.vqe import VQE, BackendEnergyEvaluator, CobylaOptimizer


def main() -> None:
    num_qubits = 6
    hamiltonian = ising_hamiltonian(num_qubits, coupling=1.0)
    ansatz = FullyConnectedAnsatz(num_qubits, depth=1)
    reference = hamiltonian.ground_state_energy()
    print(f"{num_qubits}-qubit Ising VQE, exact ground energy {reference:.4f}\n")

    # --- 1. CAFQA bootstrap --------------------------------------------------
    bootstrap = cafqa_initialization(hamiltonian, ansatz, seed=3)
    print(f"CAFQA Clifford bootstrap energy : {bootstrap.clifford_energy:.4f} "
          f"(gap {bootstrap.clifford_energy - reference:.4f})")

    pqec_noise = PQECRegime().noise_model()
    vqe = VQE(hamiltonian, ansatz,
              BackendEnergyEvaluator.density_matrix(hamiltonian, pqec_noise),
              CobylaOptimizer(max_iterations=100), reference_energy=reference)
    random_result = vqe.run(seed=3)
    bootstrapped_result = vqe.run(initial_parameters=bootstrap.angles)
    print(f"pQEC VQE from random start      : {random_result.best_energy:.4f}")
    print(f"pQEC VQE from CAFQA start       : "
          f"{bootstrapped_result.best_energy:.4f}\n")

    # --- 2. VarSaw readout mitigation ---------------------------------------
    nisq_noise = NISQRegime().noise_model()
    base = BackendEnergyEvaluator.clifford(hamiltonian, nisq_noise)
    mitigated = MitigatedEnergyEvaluator(base)
    measured = ansatz.build(include_measurement=True).bind_parameters(
        list(bootstrap.angles))
    plain = ansatz.build().bind_parameters(list(bootstrap.angles))
    print(f"NISQ energy with readout error  : {base(measured):.4f}")
    print(f"NISQ energy with VarSaw         : {mitigated(plain):.4f}\n")

    # --- 3. QISMET transient filtering ---------------------------------------
    injector = TransientNoiseInjector(BackendEnergyEvaluator.exact(hamiltonian),
                                      transient_probability=0.3,
                                      transient_magnitude=5.0, seed=5)
    controller = QISMETController(injector, threshold=0.5, max_retries=3)
    circuit = ansatz.bound_circuit(bootstrap.angles)
    filtered = [controller(circuit) for _ in range(30)]
    print(f"QISMET: flagged {controller.statistics.flagged} of "
          f"{controller.statistics.accepted} measurements as transients "
          f"(mean accepted energy {np.mean(filtered):.4f})\n")

    # --- 4. Dynamical decoupling under coherent idle drift -------------------
    selector = DynamicalDecouplingSelector(BackendEnergyEvaluator.exact(hamiltonian),
                                           drift_angle=0.2)
    selection = selector.select(circuit)
    print("Dynamical decoupling under idle drift:")
    for sequence, energy in selection.energies.items():
        marker = " <- selected" if sequence == selection.best_sequence else ""
        print(f"  {sequence:>5}: E = {energy:.4f}{marker}")


if __name__ == "__main__":
    main()
