"""Chemistry scenario: molecular ground-state estimation in the EFT era.

Reproduces the paper's chemistry workflow (Sec. 5.1.2 / Fig. 13) on a
laptop-sized instance: a synthetic LiH-like Hamiltonian at two bond lengths,
solved with a continuous VQE (COBYLA) under exact density-matrix noise for
the NISQ and pQEC regimes, with VarSaw readout mitigation layered on top.

Run with:  python examples/chemistry_vqe.py
"""

from repro import FullyConnectedAnsatz, NISQRegime, PQECRegime, molecular_hamiltonian
from repro.core.metrics import RegimeComparison
from repro.mitigation import MitigatedEnergyEvaluator
from repro.vqe import VQE, BackendEnergyEvaluator, CobylaOptimizer

NUM_QUBITS = 6          # reduced active space so the example runs in seconds
NUM_TERMS = 40          # reduced Pauli-term count (full LiH uses 631 terms)
BOND_LENGTHS = (1.0, 4.5)


def run_vqe(hamiltonian, ansatz, regime, mitigate=False, seed=5):
    evaluator = BackendEnergyEvaluator.density_matrix(hamiltonian, regime.noise_model())
    if mitigate:
        evaluator = MitigatedEnergyEvaluator(evaluator)
    vqe = VQE(hamiltonian, ansatz, evaluator,
              CobylaOptimizer(max_iterations=40),
              reference_energy=hamiltonian.ground_state_energy(),
              benchmark_name="LiH", regime_name=regime.name)
    return vqe.run(seed=seed)


def main() -> None:
    for bond_length in BOND_LENGTHS:
        hamiltonian = molecular_hamiltonian("LiH", bond_length,
                                            num_qubits=NUM_QUBITS,
                                            num_terms=NUM_TERMS)
        ansatz = FullyConnectedAnsatz(NUM_QUBITS, depth=1)
        reference = hamiltonian.ground_state_energy()
        print(f"\n=== LiH (synthetic), bond length {bond_length} Å, "
              f"{hamiltonian.num_terms} Pauli terms, E0 = {reference:.4f} ===")

        nisq = run_vqe(hamiltonian, ansatz, NISQRegime())
        pqec = run_vqe(hamiltonian, ansatz, PQECRegime())
        pqec_varsaw = run_vqe(hamiltonian, ansatz, PQECRegime(), mitigate=True)

        comparison = RegimeComparison("LiH", reference,
                                      pqec.best_energy, nisq.best_energy)
        print(f"NISQ            : E = {nisq.best_energy:.4f} "
              f"(gap {nisq.energy_gap:.4f})")
        print(f"pQEC            : E = {pqec.best_energy:.4f} "
              f"(gap {pqec.energy_gap:.4f})")
        print(f"pQEC + VarSaw   : E = {pqec_varsaw.best_energy:.4f} "
              f"(gap {pqec_varsaw.energy_gap:.4f})")
        print(f"γ(pQEC / NISQ)  : {comparison.gamma:.2f}x")


if __name__ == "__main__":
    main()
