"""Scaling scenario: how does the pQEC advantage grow with problem size?

Reproduces a slice of Fig. 12: Clifford-proxy VQE of 1-D Heisenberg chains of
increasing size, optimized with the genetic algorithm, executed under NISQ
and pQEC noise, reporting γ per size.  Also prints the analytic prediction of
the crossover from the Sec. 4.4 gate-count rule for context.

Run with:  python examples/scaling_study.py            (quick: 12-32 qubits)
           REPRO_FULL=1 python examples/scaling_study.py  (up to 64 qubits)
"""

import os

from repro import FullyConnectedAnsatz, NISQRegime, PQECRegime, heisenberg_hamiltonian
from repro.ansatz import cnot_to_rz_ratio
from repro.vqe import GeneticOptimizer, compare_regimes_clifford

FULL = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")
SIZES = (12, 20, 32, 48, 64) if FULL else (12, 20, 32)
COUPLING = 1.0


def main() -> None:
    print("=== gamma(pQEC/NISQ) for 1-D Heisenberg chains (J = 1.0) ===")
    print(f"{'qubits':>7} {'E0 (Clifford)':>14} {'E pQEC':>10} {'E NISQ':>10} "
          f"{'gamma':>8} {'CNOT:Rz':>8}")
    for num_qubits in SIZES:
        hamiltonian = heisenberg_hamiltonian(num_qubits, COUPLING)
        ansatz = FullyConnectedAnsatz(num_qubits, depth=1)
        generations = 12 if FULL else 6
        outcome = compare_regimes_clifford(
            hamiltonian, ansatz, PQECRegime(), NISQRegime(),
            optimizer_factory=lambda: GeneticOptimizer(
                population_size=16, generations=generations, seed=num_qubits),
            benchmark_name=f"heisenberg_{num_qubits}", seed=num_qubits)
        comparison = outcome["comparison"]
        ratio = cnot_to_rz_ratio("fully_connected", num_qubits)
        print(f"{num_qubits:>7} {comparison.reference_energy:>14.3f} "
              f"{comparison.energy_a:>10.3f} {comparison.energy_b:>10.3f} "
              f"{comparison.gamma:>7.2f}x {ratio:>8.2f}")
    print("\nThe CNOT:Rz ratio grows linearly with N (Sec. 4.4), so the pQEC "
          "advantage keeps widening — the paper observes up to 257x at 100 qubits.")


if __name__ == "__main__":
    main()
