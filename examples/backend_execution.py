"""The unified execution API: one execute() call, four simulators.

Builds a mixed batch of tasks — noiseless and noisy, Clifford and
continuous-angle — and submits them through a single regime-aware
``execute()`` call, then demonstrates what the execution layer adds on top of
the raw simulators: auto-routing, duplicate collapsing, the
fingerprint-keyed expectation cache that makes optimizer-style re-evaluation
nearly free, and the grouped-observable engine that evolves each circuit
once no matter how many Hamiltonian terms it is scored against.

Run with:  python examples/backend_execution.py
"""

import time

from repro import (ExecutionTask, available_backends, evaluate_observable,
                   execute, get_backend, ising_hamiltonian)
from repro.ansatz import FullyConnectedAnsatz
from repro.circuits import QuantumCircuit
from repro.execution import default_executor
from repro.simulators import NoiseModel, depolarizing_channel


def clifford_state_prep(num_qubits: int) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        qc.h(qubit)
    for qubit in range(num_qubits - 1):
        qc.cx(qubit, qubit + 1)
    return qc


def main() -> None:
    print("registered backends:")
    for name in available_backends():
        caps = get_backend(name).capabilities()
        print(f"  {name:>18}: {caps.description}")

    # --- 1. Mixed batch, auto-routed ---------------------------------------
    num_qubits = 6
    hamiltonian = ising_hamiltonian(num_qubits, coupling=1.0)
    noise = NoiseModel().add_gate_error(depolarizing_channel(0.01, 2), ["cx"])

    clifford = clifford_state_prep(num_qubits)
    smooth = clifford.copy()
    smooth.rz(0.37, 0)

    tasks = [
        ExecutionTask(clifford, observable=hamiltonian),
        ExecutionTask(clifford, observable=hamiltonian, noise_model=noise),
        ExecutionTask(smooth, observable=hamiltonian),
        ExecutionTask(smooth, observable=hamiltonian, noise_model=noise),
        ExecutionTask(smooth, observable=hamiltonian, backend="sv"),
    ]
    print("\n--- one execute() call, regime-aware routing ---")
    for result in execute(tasks, backend="auto"):
        noisy = "noisy    " if result.task.has_noise else "noiseless"
        print(f"  {noisy} {'Clifford' if result.task.is_clifford() else 'smooth  '}"
              f" -> {result.backend_name:>18}: <H> = {result.value:+.6f}")

    # --- 2. Dedup + cache: a VQE-style sweep with repeated parameters ------
    ansatz = FullyConnectedAnsatz(num_qubits, depth=1)
    template = ansatz.build()
    num_params = len(template.ordered_parameters())
    sweep = [[0.1 * step] * num_params for step in range(8)]
    sweep = sweep * 3  # an optimizer revisiting the same points

    executor = default_executor()
    executor.reset_stats()
    start = time.perf_counter()
    results = execute([ExecutionTask(template.bind_parameters(theta),
                                     observable=hamiltonian)
                       for theta in sweep], backend="statevector")
    elapsed = time.perf_counter() - start

    stats = executor.stats
    print("\n--- batched sweep with duplicates (24 tasks, 8 unique) ---")
    print(f"  wall time            : {elapsed * 1e3:.1f} ms")
    print(f"  simulator invocations: {stats.simulator_invocations}")
    print(f"  dedup hits           : {stats.dedup_hits}")
    print(f"  energies (first 4)   : "
          f"{[round(r.value, 4) for r in results[:4]]}")

    # Re-running the whole sweep is served from the expectation cache.
    start = time.perf_counter()
    execute([ExecutionTask(template.bind_parameters(theta),
                           observable=hamiltonian) for theta in sweep],
            backend="statevector")
    cached_elapsed = time.perf_counter() - start
    print("\n--- same sweep, second call ---")
    print(f"  wall time : {cached_elapsed * 1e3:.1f} ms "
          f"({elapsed / max(cached_elapsed, 1e-9):.0f}x faster)")
    print(f"  cache     : {executor.cache_stats}")

    # --- 3. Grouped observables: one evolution per circuit -----------------
    # The legacy pattern submits one single-term task per Pauli term and
    # re-evolves the circuit every time; the grouped engine evolves once and
    # reads all terms off the final state with vectorized kernels.
    circuits = [template.bind_parameters([0.1 * step] * num_params)
                for step in range(4)]
    executor.reset_stats()

    start = time.perf_counter()
    per_term = [ExecutionTask(circuit, observable=hamiltonian)
                for circuit in circuits]
    subtasks = [sub for task in per_term for sub in task.split_terms()]
    execute(subtasks, backend="statevector", use_cache=False)
    per_term_elapsed = time.perf_counter() - start
    per_term_invocations = executor.stats.simulator_invocations

    executor.reset_stats()
    start = time.perf_counter()
    energies = evaluate_observable(circuits, hamiltonian,
                                   backend="statevector", use_cache=False)
    grouped_elapsed = time.perf_counter() - start

    print(f"\n--- grouped observables ({hamiltonian.num_terms}-term "
          f"Hamiltonian, {len(circuits)} circuits) ---")
    print(f"  per-term path : {per_term_elapsed * 1e3:7.1f} ms, "
          f"{per_term_invocations} evolutions")
    print(f"  grouped path  : {grouped_elapsed * 1e3:7.1f} ms, "
          f"{executor.stats.simulator_invocations} evolutions "
          f"({per_term_elapsed / max(grouped_elapsed, 1e-9):.1f}x faster)")
    print(f"  energies      : {[round(energy, 4) for energy in energies]}")


if __name__ == "__main__":
    main()
