"""Resource estimation: will my VQA fit an EFT device, and under which regime?

Uses the end-to-end compiler pipeline (placement → scheduling → magic-state
provisioning → fidelity estimation) and the resource estimator sweeps to
answer the sizing questions of the paper's Figs. 4–6 for a user-supplied
workload, then prints the device-capacity frontier of Fig. 5.

Run with:  python examples/resource_estimation.py
"""

from repro import (BlockedAllToAllAnsatz, EFTCompiler, EFTDevice,
                   FullyConnectedAnsatz, NISQRegime, PQECRegime,
                   QECConventionalRegime, QECCultivationRegime,
                   ResourceEstimator, ising_hamiltonian)
from repro.estimation import device_capacity_table, format_estimate_table
from repro.visualization import ascii_heatmap


def main() -> None:
    num_qubits = 20
    hamiltonian = ising_hamiltonian(num_qubits, coupling=1.0)
    ansatz = FullyConnectedAnsatz(num_qubits, depth=1)
    device = EFTDevice(physical_qubits=10_000)

    # --- 1. Compile under every regime and recommend one --------------------
    compiler = EFTCompiler(device=device, optimize_qubit_placement=True,
                           placement_anneal_iterations=100)
    best, results = compiler.recommend_regime(ansatz, hamiltonian)
    print(f"Workload: {num_qubits}-qubit Ising VQE (FCHE, depth 1) "
          f"on a {device.physical_qubits}-qubit device")
    print(f"Recommended regime: {best}\n")
    for name, result in results.items():
        placement_note = ""
        if result.placement is not None and result.placement.improvement > 0:
            placement_note = (f"  (placement saves "
                              f"{result.placement.improvement:.0%} latency)")
        print(f"  {name:>18}: F={result.estimated_fidelity:.4f}  "
              f"cycles={result.execution_cycles:7.0f}  "
              f"fits={'yes' if result.fits_device else 'no '}{placement_note}")

    # --- 2. Per-regime resource table ----------------------------------------
    estimator = ResourceEstimator(device=device)
    estimates = [estimator.estimate(ansatz, regime, hamiltonian, "ising20")
                 for regime in (NISQRegime(), PQECRegime(),
                                QECConventionalRegime(), QECCultivationRegime())]
    print("\n" + format_estimate_table(estimates))

    # --- 3. Device capacity frontier (Fig. 5 axis) ---------------------------
    print("\nDevice capacity at code distance d=11 (Fig. 5 feasibility "
          "frontier):")
    for row in device_capacity_table([10_000, 20_000, 40_000, 60_000]):
        print(f"  {row['physical_qubits']:>7} physical qubits -> "
              f"{row['max_logical_qubits']:>3} logical data patches")

    # --- 4. Win map: pQEC fidelity advantage across sizes --------------------
    sizes = (8, 12, 16, 20, 24)
    matrix = []
    for ansatz_size in sizes:
        row = []
        for family in (FullyConnectedAnsatz, BlockedAllToAllAnsatz):
            workload = family(ansatz_size, 1)
            pqec = estimator.estimate(workload, PQECRegime()).estimated_fidelity
            nisq = estimator.estimate(workload, NISQRegime()).estimated_fidelity
            row.append(pqec / max(nisq, 1e-12))
        matrix.append(row)
    print("\n" + ascii_heatmap(matrix, row_labels=[f"N={n}" for n in sizes],
                               column_labels=["FC", "BL"],
                               title="pQEC / NISQ fidelity ratio "
                                     "(FCHE vs blocked ansatz)"))


if __name__ == "__main__":
    main()
