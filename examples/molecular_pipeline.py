"""Electronic-structure pipeline: integrals → fermions → qubits → EFT-VQA.

The paper's chemistry benchmarks start from PySCF integrals; offline, this
example runs the same pipeline end to end with the synthetic integral
generator: build a second-quantized Hamiltonian, map it to qubits with
Jordan–Wigner and Bravyi–Kitaev, verify the two encodings agree, group the
terms into measurement circuits, and run a small VQE under the pQEC regime.

Run with:  python examples/molecular_pipeline.py
"""

from repro import (FullyConnectedAnsatz, PQECRegime, jordan_wigner)
from repro.operators.fermion import (bravyi_kitaev, fermi_hubbard,
                                     molecular_fermionic_hamiltonian,
                                     synthetic_molecular_integrals)
from repro.operators.grouping import grouped_measurement_overhead, shot_budget
from repro.vqe import VQE, BackendEnergyEvaluator, CobylaOptimizer


def main() -> None:
    # --- 1. Integrals → second quantization → qubits ------------------------
    integrals = synthetic_molecular_integrals("LiH", bond_length=1.0,
                                              num_modes=6)
    fermionic = molecular_fermionic_hamiltonian(integrals.one_body,
                                                integrals.two_body,
                                                integrals.constant)
    jw = jordan_wigner(fermionic)
    bk = bravyi_kitaev(fermionic)
    print(f"Synthetic LiH-like active space: {integrals.num_modes} spin-orbitals")
    print(f"  fermionic terms      : {fermionic.num_terms}")
    print(f"  Jordan-Wigner terms  : {jw.num_terms} "
          f"(max Pauli weight {jw.max_weight()})")
    print(f"  Bravyi-Kitaev terms  : {bk.num_terms} "
          f"(max Pauli weight {bk.max_weight()})")
    e_jw = jw.ground_state_energy()
    e_bk = bk.ground_state_energy()
    print(f"  ground energy        : JW {e_jw:.6f}  vs  BK {e_bk:.6f}  "
          f"(encodings agree to {abs(e_jw - e_bk):.1e})\n")

    # --- 2. Measurement cost of one VQE iteration ----------------------------
    overhead = grouped_measurement_overhead(jw)
    budget = shot_budget(jw, target_standard_error=5e-2)
    print("Measurement cost per VQE iteration:")
    print(f"  Pauli terms          : {overhead['num_terms']:.0f}")
    print(f"  QWC measurement bases: {overhead['qwc_groups']:.0f} "
          f"({overhead['qwc_savings']:.1f}x fewer circuits)")
    print(f"  shots for 0.05 s.e.  : {budget.total_shots}\n")

    # --- 3. Small VQE under pQEC noise ---------------------------------------
    ansatz = FullyConnectedAnsatz(jw.num_qubits, depth=1)
    evaluator = BackendEnergyEvaluator.density_matrix(jw, PQECRegime().noise_model())
    vqe = VQE(jw, ansatz, evaluator, CobylaOptimizer(max_iterations=150),
              reference_energy=e_jw, benchmark_name="LiH-like")
    result = vqe.run(seed=1)
    print(f"pQEC VQE energy        : {result.best_energy:.6f}  "
          f"(gap to exact {result.energy_gap:.6f})")

    # --- 4. Bonus: the Fermi-Hubbard substrate --------------------------------
    hubbard = jordan_wigner(fermi_hubbard(3, tunneling=1.0, interaction=4.0))
    print(f"\n3-site Fermi-Hubbard model: {hubbard.num_qubits} qubits, "
          f"{hubbard.num_terms} Pauli terms, "
          f"E0 = {hubbard.ground_state_energy():.4f}")


if __name__ == "__main__":
    main()
