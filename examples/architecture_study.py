"""Architecture scenario: planning an EFT-VQA deployment.

Walks through the paper's architecture-level questions for a target workload:

1. How should logical qubits be laid out?  (packing efficiency and
   spacetime-volume comparison of the proposed layout vs Compact /
   Intermediate / Fast / Grid — Table 1.)
2. Which ansatz should I run?  (blocked_all_to_all vs FCHE latency — Table 2 —
   and the CNOT:Rz design rule of Sec. 4.4.)
3. How should rotations be provisioned?  (patch shuffling vs the naive
   strategy — Fig. 8.)
4. Does my program fit, and what would the Clifford+T alternative cost?
   (device resource model behind Figs. 4/5.)

Run with:  python examples/architecture_study.py
"""

from repro import (BlockedAllToAllAnsatz, EFTDevice, FullyConnectedAnsatz,
                   CircuitProfile, NISQRegime, PQECRegime,
                   QECConventionalRegime, estimate_fidelity, get_factory,
                   make_layout, schedule_on_layout)
from repro.ansatz import regime_preference
from repro.core import compare_strategies
from repro.qec import PAPER_FIG4_FACTORIES

NUM_QUBITS = 36        # k = 8 in the proposed layout
DEVICE = EFTDevice(10_000)


def main() -> None:
    blocked = BlockedAllToAllAnsatz(NUM_QUBITS, depth=1)
    fche = FullyConnectedAnsatz(NUM_QUBITS, depth=1)

    # 1. Layout comparison -----------------------------------------------------
    print(f"=== Layouts for a {NUM_QUBITS}-qubit EFT-VQA ===")
    baseline = schedule_on_layout(blocked, make_layout("proposed", NUM_QUBITS))
    print(f"{'layout':>14} {'tiles':>6} {'PE':>6} {'cycles':>8} {'V/V(proposed)':>14}")
    for name in ("proposed", "compact", "intermediate", "fast", "grid"):
        layout = make_layout(name, NUM_QUBITS)
        schedule = schedule_on_layout(blocked, layout)
        ratio = schedule.spacetime_volume_tiles / baseline.spacetime_volume_tiles
        print(f"{name:>14} {layout.total_tiles():>6} "
              f"{layout.packing_efficiency():>6.2f} {schedule.cycles:>8.0f} "
              f"{ratio:>14.2f}")

    # 2. Ansatz choice ----------------------------------------------------------
    print("\n=== Ansatz choice ===")
    layout = make_layout("proposed", NUM_QUBITS)
    for ansatz in (blocked, fche):
        schedule = schedule_on_layout(ansatz, layout)
        preference = regime_preference(ansatz.name, NUM_QUBITS)
        print(f"{ansatz.name:>20}: {ansatz.cnot_count():>4} CNOTs, "
              f"{ansatz.rotation_count():>3} rotations, "
              f"{schedule.cycles:.0f} cycles, CNOT:Rz ratio "
              f"{preference.ratio:.2f} -> "
              f"{'pQEC' if preference.prefers_pqec else 'NISQ'} preferred")

    # 3. Rotation provisioning ---------------------------------------------------
    print("\n=== Rotation provisioning (Fig. 8) ===")
    point = compare_strategies([NUM_QUBITS])[0]
    print(f"patch shuffling volume : {point.shuffling_volume:.3e} qubit-cycles")
    for backups, volume in point.naive_volumes.items():
        print(f"naive (b={backups}) volume    : {volume:.3e} qubit-cycles "
              f"({volume / point.shuffling_volume:.2f}x)")

    # 4. Feasibility and the Clifford+T alternative -------------------------------
    print("\n=== Device feasibility on a 10k-qubit device ===")
    profile = CircuitProfile.from_ansatz(blocked)
    print(f"program data patches need {DEVICE.data_patch_qubits(NUM_QUBITS)} "
          f"physical qubits; fits: {DEVICE.fits_program(NUM_QUBITS)}")
    pqec = estimate_fidelity(profile, PQECRegime(), DEVICE)
    nisq = estimate_fidelity(profile, NISQRegime(), DEVICE)
    print(f"F(NISQ) = {nisq.fidelity:.4f}   F(pQEC) = {pqec.fidelity:.4f}")
    for name in PAPER_FIG4_FACTORIES:
        regime = QECConventionalRegime(factory=get_factory(name))
        breakdown = estimate_fidelity(profile, regime, DEVICE)
        label = get_factory(name).label
        if breakdown.feasible:
            print(f"F(qec-conventional, {label}) = {breakdown.fidelity:.4f}")
        else:
            print(f"F(qec-conventional, {label}) : does not fit next to the program")


if __name__ == "__main__":
    main()
