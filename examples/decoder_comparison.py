"""Decoder trade-offs for EFT-era surface codes.

The paper (Sec. 7) argues that cheap approximate decoders are attractive in
the EFT era.  This example runs phenomenological memory experiments on the
rotated surface code and the repetition code with four decoders — exact MWPM,
Union-Find, a bounded-weight lookup table and a clique predecoder in front of
MWPM — and reports their logical error rates and offload statistics.

Run with:  python examples/decoder_comparison.py
"""

from repro.qec import (CliquePredecoder, LookupDecoder, MWPMDecoder,
                       UnionFindDecoder, decoder_comparison,
                       logical_error_rate)
from repro.visualization import ascii_bar_chart


def main() -> None:
    distance = 3
    physical_error_rate = 0.02
    shots = 300
    factories = {
        "mwpm": MWPMDecoder,
        "union_find": UnionFindDecoder,
        "lookup(w<=2)": lambda graph: LookupDecoder(graph, max_error_weight=2),
        "clique+mwpm": CliquePredecoder,
    }

    print(f"Rotated surface code, d={distance}, p={physical_error_rate}, "
          f"{shots} shots per decoder")
    surface = decoder_comparison(distance, physical_error_rate, factories,
                                 shots=shots, code="rotated_surface", seed=19)
    rates = {name: outcome.logical_error_rate
             for name, outcome in surface.items()}
    for name, outcome in surface.items():
        print(f"  {name:>12}: logical error rate = "
              f"{outcome.logical_error_rate:.4f}  "
              f"(avg defects/shot = {outcome.average_defects:.2f})")
    print()
    print(ascii_bar_chart(rates, width=40, value_format="{:.4f}",
                          title="Logical error rate by decoder "
                                "(lower is better)"))

    print("\nRepetition code cross-check (d=5, p=0.03):")
    repetition = decoder_comparison(5, 0.03, factories, shots=shots,
                                    code="repetition", seed=23)
    for name, outcome in repetition.items():
        print(f"  {name:>12}: logical error rate = "
              f"{outcome.logical_error_rate:.4f}")

    print("\nAnalytic surface-code model at the EFT operating point "
          "(p = 1e-3):")
    for d in (3, 7, 11):
        print(f"  d={d:>2}: logical error per operation ≈ "
              f"{logical_error_rate(d, 1e-3):.2e}")


if __name__ == "__main__":
    main()
