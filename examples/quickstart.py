"""Quickstart: is pQEC worth it for my VQE problem?

Builds a 16-qubit transverse-field Ising VQE with the fully-connected
hardware-efficient ansatz, evaluates it under the NISQ and pQEC execution
regimes with the Clifford-proxy simulator, and reports the paper's γ metric,
plus the analytic fidelity estimates for all four regimes.

Run with:  python examples/quickstart.py
"""

from repro import (CircuitProfile, EFTDevice, FullyConnectedAnsatz, NISQRegime,
                   PQECRegime, QECConventionalRegime, QECCultivationRegime,
                   estimate_fidelity, ising_hamiltonian)
from repro.vqe import GeneticOptimizer, compare_regimes_clifford


def main() -> None:
    num_qubits = 16
    hamiltonian = ising_hamiltonian(num_qubits, coupling=1.0)
    ansatz = FullyConnectedAnsatz(num_qubits, depth=1)

    print(f"Benchmark: {num_qubits}-qubit transverse-field Ising model, "
          f"{ansatz.cnot_count()} CNOTs, {ansatz.rotation_count()} rotations")

    # --- 1. Simulation: noisy Clifford-proxy VQE under both regimes --------
    outcome = compare_regimes_clifford(
        hamiltonian, ansatz, PQECRegime(), NISQRegime(),
        optimizer_factory=lambda: GeneticOptimizer(population_size=16,
                                                   generations=8, seed=7),
        benchmark_name="ising16", seed=7)
    comparison = outcome["comparison"]
    print("\n--- noisy VQE (Clifford proxy) ---")
    print(f"reference E0          : {comparison.reference_energy:.4f}")
    print(f"best energy under pQEC: {comparison.energy_a:.4f}")
    print(f"best energy under NISQ: {comparison.energy_b:.4f}")
    print(f"relative improvement γ: {comparison.gamma:.2f}x  (paper: 1x-257x)")

    # --- 2. Analytics: circuit fidelity under all four regimes --------------
    device = EFTDevice(physical_qubits=10_000)
    profile = CircuitProfile.from_ansatz(ansatz)
    print("\n--- analytic circuit fidelity on a 10k-qubit EFT device ---")
    for regime in (NISQRegime(), PQECRegime(), QECConventionalRegime(),
                   QECCultivationRegime()):
        breakdown = estimate_fidelity(profile, regime, device)
        status = "" if breakdown.feasible else "  (does not fit!)"
        print(f"{regime.name:>18}: F = {breakdown.fidelity:.4f}   "
              f"dominant error source: {breakdown.dominant_error_source()}{status}")


if __name__ == "__main__":
    main()
