"""QAOA MaxCut under EFT execution: does the Sec. 4.4 design rule extend?

The paper argues (Sec. 4.4) that an ansatz benefits from pQEC once its CNOT
count grows faster than ~0.76x its runtime Rz count.  QAOA's gate profile is
set by the problem graph: dense graphs are CNOT-heavy (good for pQEC), sparse
rings are rotation-heavy (bad).  This example

1. solves MaxCut on a 3-regular graph with depth-2 QAOA,
2. reports the cut quality against the exact optimum, and
3. evaluates the CNOT:Rz ratio and analytic pQEC/NISQ fidelities for ring,
   3-regular and complete graphs of the same size.

Run with:  python examples/qaoa_maxcut.py
"""

from repro import (CircuitProfile, NISQRegime, PQECRegime, QAOA, QAOAAnsatz,
                   estimate_fidelity, maxcut_cost_hamiltonian)
from repro.operators.graphs import (complete_graph, random_regular_graph,
                                    ring_graph)
from repro.vqe import CobylaOptimizer
from repro.visualization import ascii_bar_chart


def main() -> None:
    num_nodes = 10
    graph = random_regular_graph(num_nodes, degree=3, seed=11)

    # --- 1. Run QAOA on the 3-regular instance -----------------------------
    qaoa = QAOA(graph, depth=2, optimizer=CobylaOptimizer(max_iterations=200))
    result = qaoa.run(seed=5)
    print(f"MaxCut on a 3-regular graph with {num_nodes} nodes")
    print(f"  best cut found    : {result.best_cut:.0f}")
    print(f"  exact optimum     : {result.optimal_cut:.0f}")
    print(f"  approximation     : {result.approximation_ratio:.2%}")
    print(f"  circuit energy    : {result.best_energy:.3f}")
    print(f"  evaluations       : {result.num_evaluations}")

    # --- 2. Gate profile and regime preference per graph family -------------
    print("\nCNOT:Rz ratio and analytic fidelity per graph family "
          "(pQEC preferred when the ratio is high)")
    fidelities = {}
    for family, instance in (("ring", ring_graph(num_nodes)),
                             ("3-regular", graph),
                             ("complete", complete_graph(num_nodes))):
        ansatz = QAOAAnsatz(maxcut_cost_hamiltonian(instance), depth=2)
        profile = CircuitProfile.from_ansatz(ansatz, layout_name="proposed") \
            if ansatz.num_qubits % 4 == 0 else CircuitProfile(
                num_qubits=ansatz.num_qubits,
                cnot_count=ansatz.cnot_count(),
                rotation_count=ansatz.rotation_count(),
                single_qubit_clifford_count=0,
                measurement_count=ansatz.num_qubits,
                execution_cycles=float(4 * ansatz.cnot_count()))
        ratio = ansatz.cnot_count() / (2.0 * ansatz.rotation_count())
        pqec = estimate_fidelity(profile, PQECRegime()).fidelity
        nisq = estimate_fidelity(profile, NISQRegime()).fidelity
        winner = "pQEC" if pqec >= nisq else "NISQ"
        fidelities[f"{family} (pQEC)"] = pqec
        fidelities[f"{family} (NISQ)"] = nisq
        print(f"  {family:>10}: CNOTs={ansatz.cnot_count():4d}  "
              f"Rz={ansatz.rotation_count():4d}  ratio={ratio:5.2f}  "
              f"F(pQEC)={pqec:.4f}  F(NISQ)={nisq:.4f}  -> {winner}")

    print("\n" + ascii_bar_chart(fidelities, width=40,
                                 title="Analytic circuit fidelity by regime"))


if __name__ == "__main__":
    main()
