"""Tests for the extended injection protocols (Sec. 2.6 'future work')."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import FullyConnectedAnsatz
from repro.core import (CircuitProfile, PQECRegime, estimate_fidelity,
                        injection_error_rate)
from repro.core.injection_protocols import (InjectionProtocol,
                                            ProtocolPQECRegime,
                                            compare_protocols,
                                            protocol_tradeoff)


class TestInjectionProtocol:
    def test_validation(self):
        with pytest.raises(ValueError):
            InjectionProtocol(post_selection_rounds=1)
        with pytest.raises(ValueError):
            InjectionProtocol(physical_error_rate=0.7)
        with pytest.raises(ValueError):
            InjectionProtocol(distance=1)

    def test_baseline_matches_lao_criger(self):
        protocol = InjectionProtocol()
        assert protocol.injected_state_error == pytest.approx(
            injection_error_rate(protocol.physical_error_rate))
        assert protocol.extra_patches == 0

    def test_extra_rounds_reduce_error_but_never_below_the_floor(self):
        errors = [InjectionProtocol(post_selection_rounds=r).injected_state_error
                  for r in (2, 3, 4, 6)]
        assert errors == sorted(errors, reverse=True)
        floor = 0.4 * injection_error_rate()
        assert all(error >= floor - 1e-15 for error in errors)

    def test_extra_rounds_reduce_acceptance_probability(self):
        base = InjectionProtocol(post_selection_rounds=2)
        more = InjectionProtocol(post_selection_rounds=5)
        assert more.acceptance_probability < base.acceptance_probability
        assert more.cycles_per_accepted_state > base.cycles_per_accepted_state

    def test_pre_distillation_squares_the_error(self):
        plain = InjectionProtocol()
        distilled = InjectionProtocol(use_pre_distillation=True)
        assert distilled.injected_state_error < 0.05 * plain.injected_state_error
        assert distilled.extra_patches == 2
        assert distilled.cycles_per_accepted_state > \
            2 * plain.cycles_per_accepted_state

    def test_baseline_supports_stall_free_shuffling_at_eft_point(self):
        """The Sec. 9 result: at p=1e-3 and d=11 injection fits in 2d cycles."""
        assert InjectionProtocol().supports_stall_free_shuffling

    def test_rotation_error_scales_with_expected_consumptions(self):
        protocol = InjectionProtocol()
        assert protocol.rotation_error() == pytest.approx(
            2.0 * protocol.injected_state_error)

    def test_summary_keys(self):
        summary = InjectionProtocol(post_selection_rounds=3).summary()
        assert summary["post_selection_rounds"] == 3.0
        assert 0.0 < summary["acceptance_probability"] <= 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.floats(min_value=1e-4, max_value=5e-3))
def test_property_more_rounds_trade_error_for_latency(rounds, error_rate):
    base = InjectionProtocol(physical_error_rate=error_rate)
    extended = InjectionProtocol(post_selection_rounds=rounds,
                                 physical_error_rate=error_rate)
    assert extended.injected_state_error <= base.injected_state_error + 1e-15
    assert extended.cycles_per_accepted_state >= \
        base.cycles_per_accepted_state - 1e-12


class TestProtocolPQECRegime:
    def test_baseline_protocol_matches_plain_pqec(self):
        plain = PQECRegime()
        protocol_regime = ProtocolPQECRegime(InjectionProtocol())
        assert protocol_regime.rz_injection_error == pytest.approx(
            plain.rz_injection_error)
        assert protocol_regime.rz_error == pytest.approx(plain.rz_error)

    def test_better_protocol_improves_circuit_fidelity(self):
        ansatz = FullyConnectedAnsatz(12, 1)
        profile = CircuitProfile.from_ansatz(ansatz)
        plain = estimate_fidelity(profile, PQECRegime()).fidelity
        improved = estimate_fidelity(
            profile,
            ProtocolPQECRegime(InjectionProtocol(post_selection_rounds=4,
                                                 use_pre_distillation=True))
        ).fidelity
        assert improved > plain

    def test_noise_model_uses_protocol_error(self):
        regime = ProtocolPQECRegime(InjectionProtocol(use_pre_distillation=True))
        model = regime.noise_model()
        channels = model.gate_channels("rz")
        assert channels
        assert channels[0].error_probability() == pytest.approx(regime.rz_error,
                                                                rel=1e-6)


class TestProtocolTradeoff:
    def test_workload_validation(self):
        with pytest.raises(ValueError):
            protocol_tradeoff(0, InjectionProtocol())

    def test_tradeoff_direction(self):
        """More careful protocols buy survival probability with latency."""
        workload = 500
        baseline = protocol_tradeoff(workload, InjectionProtocol())
        careful = protocol_tradeoff(
            workload, InjectionProtocol(post_selection_rounds=4,
                                        use_pre_distillation=True))
        assert careful.rotation_survival > baseline.rotation_survival
        assert careful.spacetime_volume > baseline.spacetime_volume

    def test_compare_protocols_labels(self):
        tradeoffs = compare_protocols(100, [
            InjectionProtocol(),
            InjectionProtocol(post_selection_rounds=4),
            InjectionProtocol(use_pre_distillation=True),
        ])
        labels = [t.label for t in tradeoffs]
        assert labels == ["r=2", "r=4", "r=2+predistill"]
