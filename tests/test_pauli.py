"""Tests for Pauli-string algebra and PauliSum Hamiltonians."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.operators import PauliString, PauliSum

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=5)
fixed_length_labels = st.text(alphabet="IXYZ", min_size=3, max_size=3)


class TestPauliString:
    def test_label_roundtrip(self):
        pauli = PauliString("XIZY")
        assert pauli.label == "XIZY"
        assert pauli.num_qubits == 4

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError):
            PauliString("XQ")

    def test_single_and_sparse_constructors(self):
        assert PauliString.single(4, 2, "y").label == "IIYI"
        assert PauliString.from_sparse(4, {0: "X", 3: "Z"}).label == "XIIZ"

    def test_weight_and_support(self):
        pauli = PauliString("XIZY")
        assert pauli.weight() == 3
        assert pauli.support() == (0, 2, 3)

    def test_commutation_rules(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))
        assert PauliString("XI").commutes_with(PauliString("IZ"))

    def test_qubitwise_commutation(self):
        assert PauliString("XIZ").qubitwise_commutes_with(PauliString("XZI"))
        assert not PauliString("XX").qubitwise_commutes_with(PauliString("ZX"))

    def test_multiplication_phase_xy_is_iz(self):
        product = PauliString("X") * PauliString("Y")
        assert product.label == "Z"
        assert product.phase == pytest.approx(1j)

    def test_matrix_of_zz(self):
        matrix = PauliString("ZZ").to_matrix()
        np.testing.assert_allclose(matrix, np.diag([1, -1, -1, 1]), atol=1e-12)

    def test_matrix_little_endian_ordering(self):
        # "XI" acts with X on qubit 0 (least significant bit).
        matrix = PauliString("XI").to_matrix()
        state = np.zeros(4); state[0] = 1.0
        out = matrix @ state
        assert abs(out[1]) == pytest.approx(1.0)

    def test_expectation_on_plus_state(self):
        plus = np.array([1.0, 1.0]) / np.sqrt(2)
        assert PauliString("X").expectation(plus).real == pytest.approx(1.0)
        assert PauliString("Z").expectation(plus).real == pytest.approx(0.0)


@given(label=pauli_labels)
@settings(max_examples=30, deadline=None)
def test_pauli_is_hermitian_and_self_inverse(label):
    pauli = PauliString(label)
    matrix = pauli.to_matrix()
    np.testing.assert_allclose(matrix, matrix.conj().T, atol=1e-12)
    np.testing.assert_allclose(matrix @ matrix, np.eye(matrix.shape[0]), atol=1e-12)


@given(a=fixed_length_labels, b=fixed_length_labels)
@settings(max_examples=30, deadline=None)
def test_product_matrix_matches_matrix_product(a, b):
    pa, pb = PauliString(a), PauliString(b)
    product = pa * pb
    np.testing.assert_allclose(product.to_matrix(),
                               pa.to_matrix() @ pb.to_matrix(), atol=1e-10)


@given(a=fixed_length_labels, b=fixed_length_labels)
@settings(max_examples=30, deadline=None)
def test_commutation_predicate_matches_matrices(a, b):
    pa, pb = PauliString(a), PauliString(b)
    commutator = pa.to_matrix() @ pb.to_matrix() - pb.to_matrix() @ pa.to_matrix()
    assert pa.commutes_with(pb) == np.allclose(commutator, 0.0, atol=1e-10)


class TestPauliSum:
    def test_from_label_dict_and_term_count(self):
        op = PauliSum.from_label_dict({"XX": 1.0, "ZZ": -0.5})
        assert op.num_terms == 2
        assert op.num_qubits == 2

    def test_duplicate_terms_accumulate(self):
        op = PauliSum(2)
        op.add_label("XX", 0.5).add_label("XX", 0.25)
        assert op.coefficient(PauliString("XX")) == pytest.approx(0.75)

    def test_simplify_drops_tiny_terms(self):
        op = PauliSum(1)
        op.add_label("Z", 1e-15)
        assert op.simplify().num_terms == 0

    def test_addition_and_scalar_multiplication(self):
        a = PauliSum.from_label_dict({"X": 1.0})
        b = PauliSum.from_label_dict({"X": -1.0, "Z": 2.0})
        total = a + b
        assert total.coefficient(PauliString("Z")) == pytest.approx(2.0)
        assert abs(total.coefficient(PauliString("X"))) < 1e-12
        scaled = b * 0.5
        assert scaled.coefficient(PauliString("Z")) == pytest.approx(1.0)

    def test_operator_product_expands_correctly(self):
        a = PauliSum.from_label_dict({"X": 1.0})
        b = PauliSum.from_label_dict({"Y": 1.0})
        product = a @ b
        matrix_expected = a.to_matrix() @ b.to_matrix()
        np.testing.assert_allclose(product.to_matrix(), matrix_expected, atol=1e-12)

    def test_ground_state_energy_of_single_qubit_z(self):
        op = PauliSum.from_label_dict({"Z": 1.0})
        assert op.ground_state_energy() == pytest.approx(-1.0)

    def test_matrix_matches_sum_of_terms(self):
        op = PauliSum.from_label_dict({"XX": 0.3, "ZI": -0.7, "IY": 0.2})
        expected = (0.3 * PauliString("XX").to_matrix()
                    - 0.7 * PauliString("ZI").to_matrix()
                    + 0.2 * PauliString("IY").to_matrix())
        np.testing.assert_allclose(op.to_matrix(), expected, atol=1e-12)

    def test_expectation_matches_matrix_quadratic_form(self):
        op = PauliSum.from_label_dict({"XX": 0.3, "ZZ": -0.7})
        rng = np.random.default_rng(3)
        state = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        state /= np.linalg.norm(state)
        expected = float(np.real(state.conj() @ op.to_matrix() @ state))
        assert op.expectation(state) == pytest.approx(expected)

    def test_qubitwise_commuting_groups_are_valid(self):
        op = PauliSum.from_label_dict(
            {"XXI": 1.0, "IXX": 1.0, "ZZI": 1.0, "IZZ": 1.0, "XIZ": 0.5})
        groups = op.group_qubitwise_commuting()
        assert sum(len(group) for group in groups) == op.num_terms
        for group in groups:
            for i, (pa, _) in enumerate(group):
                for pb, _ in group[i + 1:]:
                    assert pa.qubitwise_commutes_with(pb)

    def test_mismatched_sizes_raise(self):
        op = PauliSum(2)
        with pytest.raises(ValueError):
            op.add_term(PauliString("XXX"), 1.0)

    def test_one_norm(self):
        op = PauliSum.from_label_dict({"X": 1.5, "Z": -0.5})
        assert op.one_norm() == pytest.approx(2.0)
