"""Tests for VarSaw-style readout mitigation and zero-noise extrapolation."""

import numpy as np
import pytest

from repro.ansatz import LinearAnsatz
from repro.core import PQECRegime
from repro.mitigation import (MitigatedEnergyEvaluator, ReadoutCalibration,
                              VarSawMitigator, ZNEEnergyEvaluator, fold_circuit,
                              richardson_extrapolate,
                              zero_noise_extrapolation)
from repro.operators import PauliString, ising_hamiltonian
from repro.simulators import NoiseModel, depolarizing_channel
from repro.vqe import BackendEnergyEvaluator, indices_to_angles


class TestReadoutCalibration:
    def test_uniform_calibration(self):
        calibration = ReadoutCalibration.uniform(3, 0.02)
        assert calibration.num_qubits == 3
        assert calibration.damping_factor(PauliString("ZZI")) == pytest.approx(
            (1 - 0.04) ** 2)

    def test_identity_term_not_damped(self):
        calibration = ReadoutCalibration.uniform(2, 0.1)
        assert calibration.damping_factor(PauliString("II")) == pytest.approx(1.0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ReadoutCalibration.uniform(2, 0.6)

    def test_from_noise_model(self):
        noise = NoiseModel().add_readout_error(0.05)
        calibration = ReadoutCalibration.from_noise_model(4, noise)
        assert calibration.flip_probabilities == (0.05,) * 4


class TestVarSawMitigator:
    def test_correct_term_inverts_attenuation(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        mitigator = VarSawMitigator(hamiltonian, ReadoutCalibration.uniform(3, 0.05))
        pauli = PauliString.single(3, 0, "Z")
        attenuated = 0.8 * (1 - 0.1)
        assert mitigator.correct_term(pauli, attenuated) == pytest.approx(0.8)

    def test_correction_is_clipped_to_physical_range(self):
        hamiltonian = ising_hamiltonian(2, 1.0)
        mitigator = VarSawMitigator(hamiltonian, ReadoutCalibration.uniform(2, 0.2))
        assert abs(mitigator.correct_term(PauliString("ZZ"), 0.99)) <= 1.0

    def test_measurement_groups_cover_hamiltonian(self):
        hamiltonian = ising_hamiltonian(4, 0.5)
        mitigator = VarSawMitigator(hamiltonian, ReadoutCalibration.uniform(4, 0.01))
        assert mitigator.num_measurement_groups >= 2


class TestMitigatedEvaluator:
    def _setup(self, readout=0.08):
        hamiltonian = ising_hamiltonian(4, 1.0)
        ansatz = LinearAnsatz(4)
        angles = indices_to_angles([1, 0, 2, 1, 0, 3, 2, 1])
        circuit = ansatz.bound_circuit(angles)
        noise = NoiseModel().add_readout_error(readout)
        return hamiltonian, circuit, noise

    def test_mitigation_recovers_readout_free_energy_clifford(self):
        hamiltonian, circuit, noise = self._setup()
        noisy = BackendEnergyEvaluator.clifford(hamiltonian, noise)
        mitigated = MitigatedEnergyEvaluator(noisy)
        ideal = BackendEnergyEvaluator.clifford(hamiltonian, None)(circuit)
        assert mitigated(circuit) == pytest.approx(ideal, abs=1e-6)

    def test_mitigation_recovers_readout_free_energy_density_matrix(self):
        hamiltonian, circuit, noise = self._setup()
        noisy = BackendEnergyEvaluator.density_matrix(hamiltonian, noise)
        mitigated = MitigatedEnergyEvaluator(noisy)
        ideal = BackendEnergyEvaluator.density_matrix(hamiltonian, None)(circuit)
        assert mitigated(circuit) == pytest.approx(ideal, abs=1e-6)

    def test_mitigation_moves_estimate_toward_readout_free_value(self):
        """The Fig. 15 mechanism: correcting readout attenuation recovers the
        energy the circuit would report with perfect measurement."""
        hamiltonian = ising_hamiltonian(4, 1.0)
        ansatz = LinearAnsatz(4)
        rng = np.random.default_rng(2)
        circuit = ansatz.bound_circuit(
            indices_to_angles(rng.integers(0, 4, ansatz.num_parameters())))
        gate_noise = NoiseModel().add_gate_error(depolarizing_channel(1e-3, 2),
                                                 ["cx"])
        full_noise = (NoiseModel()
                      .add_gate_error(depolarizing_channel(1e-3, 2), ["cx"])
                      .add_readout_error(0.05))
        readout_free = BackendEnergyEvaluator.clifford(hamiltonian, gate_noise)(circuit)
        unmitigated = BackendEnergyEvaluator.clifford(hamiltonian, full_noise)(circuit)
        mitigated = MitigatedEnergyEvaluator(
            BackendEnergyEvaluator.clifford(hamiltonian, full_noise))(circuit)
        assert abs(mitigated - readout_free) <= abs(unmitigated - readout_free) + 1e-9

    def test_works_for_pqec_regime_too(self):
        hamiltonian, circuit, _ = self._setup()
        noise = PQECRegime().noise_model()
        base = BackendEnergyEvaluator.clifford(hamiltonian, noise)
        mitigated = MitigatedEnergyEvaluator(base)
        assert isinstance(mitigated(circuit), float)


class TestZNE:
    def test_fold_circuit_scales_gate_count(self):
        circuit = LinearAnsatz(3).bound_circuit([0.1] * 6)
        folded = fold_circuit(circuit, 3)
        assert folded.size() == 3 * circuit.size()

    def test_fold_requires_odd_scale(self):
        circuit = LinearAnsatz(3).bound_circuit([0.1] * 6)
        with pytest.raises(ValueError):
            fold_circuit(circuit, 2)

    def test_folding_preserves_ideal_energy(self):
        hamiltonian = ising_hamiltonian(3, 0.5)
        circuit = LinearAnsatz(3).bound_circuit([0.3] * 6)
        evaluator = BackendEnergyEvaluator.exact(hamiltonian)
        assert evaluator(fold_circuit(circuit, 3)) == pytest.approx(
            evaluator(circuit), abs=1e-8)

    def test_richardson_extrapolation_linear_exact(self):
        value, _ = richardson_extrapolate([1, 3, 5], [1.0, 3.0, 5.0], order=1)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_zne_improves_noisy_estimate(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        circuit = LinearAnsatz(3).bound_circuit([0.4, 0.1, -0.3, 0.7, 0.2, -0.5])
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.02, 2), ["cx"])
        noisy = BackendEnergyEvaluator.density_matrix(hamiltonian, noise)
        ideal = BackendEnergyEvaluator.exact(hamiltonian)(circuit)
        raw_error = abs(noisy(circuit) - ideal)
        zne = zero_noise_extrapolation(circuit, noisy, scale_factors=(1, 3, 5))
        assert abs(zne.extrapolated_value - ideal) < raw_error

    def test_zne_evaluator_wrapper(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        circuit = LinearAnsatz(3).bound_circuit([0.2] * 6)
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.01, 2), ["cx"])
        evaluator = ZNEEnergyEvaluator(BackendEnergyEvaluator.density_matrix(hamiltonian, noise))
        assert isinstance(evaluator(circuit), float)
