"""End-to-end integration tests spanning multiple subsystems."""

import math

import numpy as np
import pytest

from repro import (BlockedAllToAllAnsatz, EFTDevice, FullyConnectedAnsatz,
                   NISQRegime, PQECRegime, QECConventionalRegime,
                   CircuitProfile, estimate_fidelity, get_factory,
                   heisenberg_hamiltonian, ising_hamiltonian, make_layout,
                   molecular_hamiltonian, schedule_on_layout)
from repro.core import pqec_fidelity, nisq_fidelity, win_fraction
from repro.core.metrics import summarize_gammas
from repro.mitigation import MitigatedEnergyEvaluator
from repro.simulators import expectation_value
from repro.vqe import (BackendEnergyEvaluator, CliffordVQE,
                       GeneticOptimizer, compare_regimes_clifford)


class TestEndToEndCliffordPipeline:
    """The Fig. 12 pipeline in miniature: Hamiltonian → ansatz → noisy VQE → γ."""

    def test_pqec_beats_nisq_on_small_benchmark_suite(self):
        gammas = []
        for family, builder in (("ising", ising_hamiltonian),
                                ("heisenberg", heisenberg_hamiltonian)):
            hamiltonian = builder(8, 1.0)
            ansatz = FullyConnectedAnsatz(8)
            outcome = compare_regimes_clifford(
                hamiltonian, ansatz, PQECRegime(), NISQRegime(),
                optimizer_factory=lambda: GeneticOptimizer(
                    population_size=12, generations=5, seed=4),
                benchmark_name=family, seed=4)
            gammas.append(outcome["comparison"])
        summary = summarize_gammas(gammas)
        assert summary["min"] >= 1.0
        assert summary["mean"] >= 1.0

    def test_molecular_hamiltonian_through_clifford_vqe(self):
        hamiltonian = molecular_hamiltonian("LiH", 1.0, num_qubits=8, num_terms=60)
        vqe = CliffordVQE(hamiltonian, FullyConnectedAnsatz(8),
                          PQECRegime().noise_model(),
                          GeneticOptimizer(population_size=10, generations=4,
                                           seed=0), seed=0)
        result = vqe.run()
        identity_offset = float(np.real(hamiltonian.identity_coefficient()))
        assert result.best_energy < identity_offset

    def test_mitigated_evaluation_composes_with_regimes(self):
        hamiltonian = ising_hamiltonian(6, 1.0)
        ansatz = FullyConnectedAnsatz(6)
        circuit = ansatz.bound_circuit([math.pi / 2] * ansatz.num_parameters())
        noisy = BackendEnergyEvaluator.clifford(hamiltonian, NISQRegime().noise_model())
        mitigated = MitigatedEnergyEvaluator(noisy)
        unmitigated_value = noisy(circuit)
        mitigated_value = mitigated(circuit)
        assert np.isfinite(mitigated_value) and np.isfinite(unmitigated_value)
        # Both estimates stay within the Hamiltonian's spectral bounds.
        bound = hamiltonian.one_norm()
        assert abs(mitigated_value) <= bound and abs(unmitigated_value) <= bound


class TestEndToEndArchitecturePipeline:
    """Ansatz → layout → schedule → fidelity, the Fig. 4/11 analytic path."""

    def test_profile_uses_scheduler_cycles(self):
        ansatz = BlockedAllToAllAnsatz(20)
        profile = CircuitProfile.from_ansatz(ansatz)
        schedule = schedule_on_layout(ansatz, make_layout("proposed", 20))
        assert profile.execution_cycles == pytest.approx(schedule.cycles)

    def test_fig5_trend_big_devices_favor_conventional_small_programs(self):
        """Win % of pQEC falls for small programs as the device grows."""
        def wins(device_qubits):
            device = EFTDevice(device_qubits)
            pqec_scores, conv_scores = [], []
            for n in (12, 16, 20):
                for depth in (1, 2):
                    profile = CircuitProfile.from_ansatz(FullyConnectedAnsatz(n, depth))
                    pqec_scores.append(estimate_fidelity(profile, PQECRegime(),
                                                         device).fidelity)
                    best_conv = max(
                        estimate_fidelity(
                            profile,
                            QECConventionalRegime(factory=get_factory(name)),
                            device).fidelity
                        for name in ("15-to-1_7,3,3", "15-to-1_11,5,5",
                                     "15-to-1_17,7,7"))
                    conv_scores.append(best_conv)
            return win_fraction(pqec_scores, conv_scores)

        assert wins(10_000) >= wins(60_000)

    def test_fidelity_model_consistent_with_simulation_ranking(self):
        """The analytic model and the Clifford simulator agree on who wins."""
        hamiltonian = ising_hamiltonian(8, 1.0)
        ansatz = FullyConnectedAnsatz(8)
        angles = [math.pi / 2] * ansatz.num_parameters()
        circuit = ansatz.bound_circuit(angles)
        ideal = expectation_value(circuit, hamiltonian)
        nisq_energy = expectation_value(circuit, hamiltonian,
                                        NISQRegime().noise_model())
        pqec_energy = expectation_value(circuit, hamiltonian,
                                        PQECRegime().noise_model())
        # Simulation: pQEC retains more of the ideal signal.
        assert abs(pqec_energy - ideal) <= abs(nisq_energy - ideal)
        # Analytic model agrees.
        profile = CircuitProfile.from_ansatz(ansatz)
        assert pqec_fidelity(profile).fidelity > nisq_fidelity(profile).fidelity

    def test_packing_efficiency_target(self):
        layout = make_layout("proposed", 164)
        assert layout.packing_efficiency() >= 0.64
