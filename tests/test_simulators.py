"""Cross-validation tests for the statevector, density-matrix, stabilizer and
Pauli-propagation simulators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit
from repro.operators import PauliString, PauliSum, ising_hamiltonian
from repro.simulators import (DenseStabilizerState, DensityMatrix,
                              DensityMatrixSimulator, NoiseModel,
                              StabilizerSimulator, StabilizerState,
                              Statevector, StatevectorSimulator,
                              depolarizing_channel, expectation_value)
from repro.simulators.statevector import circuit_unitary


def bell_circuit():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    return qc


def ghz_circuit(n):
    qc = QuantumCircuit(n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    return qc


class TestStatevector:
    def test_zero_state_probabilities(self):
        state = Statevector.zero_state(3)
        probs = state.probabilities()
        assert probs[0] == pytest.approx(1.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_bell_state_amplitudes(self):
        state = StatevectorSimulator().run(bell_circuit())
        np.testing.assert_allclose(
            np.abs(state.data) ** 2, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_x_gate_targets_correct_qubit(self):
        qc = QuantumCircuit(3)
        qc.x(1)
        state = StatevectorSimulator().run(qc)
        assert abs(state.data[2]) == pytest.approx(1.0)  # bit 1 set -> index 2

    def test_cx_control_target_orientation(self):
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1)
        state = StatevectorSimulator().run(qc)
        assert abs(state.data[3]) == pytest.approx(1.0)

    def test_ghz_expectation_values(self):
        state = StatevectorSimulator().run(ghz_circuit(4))
        obs = PauliSum.from_label_dict({"ZZZZ": 1.0, "XXXX": 1.0, "ZIII": 1.0})
        assert state.expectation(obs) == pytest.approx(2.0)

    def test_sampling_distribution(self):
        counts = StatevectorSimulator(seed=1).sample(bell_circuit(), shots=4000)
        assert set(counts) <= {"00", "11"}
        assert counts["00"] == pytest.approx(2000, abs=200)

    def test_circuit_unitary_matches_matrix_product(self):
        qc = QuantumCircuit(1)
        qc.h(0).s(0)
        from repro.circuits.gates import H_MATRIX, S_MATRIX
        np.testing.assert_allclose(circuit_unitary(qc), S_MATRIX @ H_MATRIX,
                                   atol=1e-12)

    def test_fidelity_between_states(self):
        a = StatevectorSimulator().run(bell_circuit())
        b = Statevector.zero_state(2)
        assert a.fidelity(b) == pytest.approx(0.5)


class TestDensityMatrix:
    def test_pure_state_purity(self):
        dm = DensityMatrixSimulator().run(bell_circuit())
        assert dm.purity() == pytest.approx(1.0)
        assert dm.trace() == pytest.approx(1.0)

    def test_matches_statevector_expectation(self):
        qc = QuantumCircuit(3)
        qc.rx(0.4, 0).ry(0.9, 1).cx(0, 1).rz(0.3, 2).cx(1, 2)
        obs = ising_hamiltonian(3, 0.7)
        sv = StatevectorSimulator().expectation(qc, obs)
        dm = DensityMatrixSimulator().expectation(qc, obs)
        assert dm == pytest.approx(sv, abs=1e-10)

    def test_depolarizing_noise_reduces_purity(self):
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.2, 2), ["cx"])
        dm = DensityMatrixSimulator(noise).run(bell_circuit())
        assert dm.purity() < 1.0

    def test_full_depolarizing_gives_maximally_mixed(self):
        noise = NoiseModel().add_gate_error(depolarizing_channel(1.0, 1), ["h"])
        qc = QuantumCircuit(1)
        qc.h(0)
        dm = DensityMatrixSimulator(noise).run(qc)
        # With probability 1 a uniformly random non-identity Pauli is applied
        # to |+⟩: X keeps ⟨X⟩ = +1, Y and Z flip it, so ⟨X⟩ = −1/3.
        assert dm.expectation(PauliSum.from_label_dict({"X": 1.0})) == pytest.approx(
            -1.0 / 3.0, abs=1e-9)

    def test_readout_error_damps_z_expectation(self):
        noise = NoiseModel().add_readout_error(0.1)
        qc = QuantumCircuit(1)
        qc.x(0)
        obs = PauliSum.from_label_dict({"Z": 1.0})
        value = DensityMatrixSimulator(noise).expectation(qc, obs)
        assert value == pytest.approx(-0.8)

    def test_reset_instruction(self):
        qc = QuantumCircuit(1)
        qc.x(0).reset(0)
        dm = DensityMatrixSimulator().run(qc)
        assert dm.probabilities()[0] == pytest.approx(1.0)

    def test_from_statevector_roundtrip(self):
        state = StatevectorSimulator().run(ghz_circuit(3))
        dm = DensityMatrix.from_statevector(state)
        assert dm.fidelity_with_pure_state(state) == pytest.approx(1.0)


class TestStabilizer:
    def test_bell_state_stabilizer_expectations(self):
        state = StabilizerSimulator().run(bell_circuit())
        assert state.expectation_pauli(PauliString("XX")) == pytest.approx(1.0)
        assert state.expectation_pauli(PauliString("ZZ")) == pytest.approx(1.0)
        assert state.expectation_pauli(PauliString("YY")) == pytest.approx(-1.0)
        assert state.expectation_pauli(PauliString("ZI")) == pytest.approx(0.0)

    def test_deterministic_measurement(self):
        state = StabilizerState(2)
        state.apply_x(0)
        assert state.measure(0) == 1
        assert state.measure(1) == 0

    def test_random_measurement_collapses(self):
        rng = np.random.default_rng(0)
        state = StabilizerState(1)
        state.apply_h(0)
        outcome = state.measure(0, rng)
        assert state.measure(0, rng) == outcome

    def test_pauli_error_flips_expectation(self):
        state = StabilizerSimulator().run(bell_circuit())
        state.apply_pauli(PauliString("IZ"))
        assert state.expectation_pauli(PauliString("XX")) == pytest.approx(-1.0)

    def test_clifford_rz_angles(self):
        qc = QuantumCircuit(1)
        qc.h(0).rz(math.pi / 2, 0)
        state = StabilizerSimulator().run(qc)
        assert state.expectation_pauli(PauliString("Y")) == pytest.approx(1.0)

    def test_non_clifford_angle_rejected(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0)
        with pytest.raises(ValueError):
            StabilizerSimulator().run(qc)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_random_clifford_circuit_matches_statevector(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = 3
        qc = QuantumCircuit(num_qubits)
        gates = ["h", "s", "sdg", "x", "y", "z", "cx", "cz"]
        for _ in range(12):
            name = gates[rng.integers(0, len(gates))]
            if name in ("cx", "cz"):
                a, b = rng.choice(num_qubits, size=2, replace=False)
                getattr(qc, name)(int(a), int(b))
            else:
                getattr(qc, name)(int(rng.integers(0, num_qubits)))
        observable = ising_hamiltonian(num_qubits, 1.0)
        sv = StatevectorSimulator().expectation(qc, observable)
        stab = StabilizerSimulator().run(qc).expectation(observable)
        assert stab == pytest.approx(sv, abs=1e-8)

    def test_sampling_with_readout_error(self):
        noise = NoiseModel().add_readout_error(1.0)
        counts = StabilizerSimulator(noise, seed=0).sample(QuantumCircuit(2), shots=10)
        assert counts == {"11": 10}


class TestPauliPropagation:
    def test_matches_stabilizer_noiseless(self):
        qc = ghz_circuit(4)
        observable = ising_hamiltonian(4, 0.5)
        stab = StabilizerSimulator().run(qc).expectation(observable)
        assert expectation_value(qc, observable) == pytest.approx(stab, abs=1e-10)

    def test_matches_density_matrix_with_pauli_noise(self):
        qc = ghz_circuit(3)
        observable = ising_hamiltonian(3, 1.0)
        noise = (NoiseModel()
                 .add_gate_error(depolarizing_channel(0.05, 2), ["cx"])
                 .add_gate_error(depolarizing_channel(0.02, 1), ["h"])
                 .add_readout_error(0.03))
        qc_measured = qc.copy().measure_all()
        dm = DensityMatrixSimulator(noise).expectation(qc_measured, observable)
        pp = expectation_value(qc_measured, observable, noise)
        assert pp == pytest.approx(dm, abs=1e-10)

    def test_bit_flip_before_measurement_damps_supported_terms_only(self):
        qc = QuantumCircuit(2)
        qc.x(0).measure_all()
        noise = NoiseModel().add_readout_error(0.25)
        z0 = PauliSum.from_label_dict({"ZI": 1.0})
        z1 = PauliSum.from_label_dict({"IZ": 1.0})
        assert expectation_value(qc, z0, noise) == pytest.approx(-0.5)
        assert expectation_value(qc, z1, noise) == pytest.approx(0.5)

    def test_idle_noise_locations_are_applied(self):
        qc = QuantumCircuit(2)
        qc.x(0)  # qubit 1 idles in this layer
        noise = NoiseModel().add_idle_error(depolarizing_channel(0.3, 1))
        observable = PauliSum.from_label_dict({"IZ": 1.0})
        value = expectation_value(qc, observable, noise)
        assert value == pytest.approx(1.0 - 0.3 * 4.0 / 3.0, abs=1e-12)

    def test_non_clifford_rotation_rejected(self):
        qc = QuantumCircuit(1)
        qc.rz(0.1, 0)
        with pytest.raises(ValueError):
            expectation_value(qc, PauliSum.from_label_dict({"Z": 1.0}))

    def test_monte_carlo_stabilizer_agrees_statistically(self):
        qc = ghz_circuit(3)
        observable = PauliSum.from_label_dict({"ZZI": 1.0})
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.1, 2), ["cx"])
        exact = expectation_value(qc, observable, noise)
        sampled = StabilizerSimulator(noise, seed=11).expectation(
            qc, observable, trajectories=600)
        assert sampled == pytest.approx(exact, abs=0.1)


class TestStabilizerMeasureRegression:
    """Regression: measuring a qubit whose paired destabilizer also carries
    an X at that qubit crashed pre-PR-7 with "rowsum produced imaginary
    phase".  The Aaronson–Gottesman update must skip row p−n (it always
    anticommutes with stabilizer row p and is overwritten right after)."""

    @pytest.mark.parametrize("cls", [StabilizerState, DenseStabilizerState])
    def test_s_h_measure_does_not_crash(self, cls):
        state = cls(1)
        state.apply_s(0)
        state.apply_h(0)
        # Both tableau rows carry an X at qubit 0 — the crash condition.
        assert state.x[0, 0] == 1 and state.x[1, 0] == 1
        outcome = state.measure(0, np.random.default_rng(3))
        assert outcome in (0, 1)
        assert [str(s) for s in state.stabilizer_strings()] \
            == [("-Z" if outcome else "+Z")]

    def test_packed_and_dense_agree_through_the_fixed_path(self):
        for seed in range(8):
            packed, dense = StabilizerState(1), DenseStabilizerState(1)
            for state in (packed, dense):
                state.apply_s(0)
                state.apply_h(0)
            assert packed.measure(0, np.random.default_rng(seed)) \
                == dense.measure(0, np.random.default_rng(seed))
            assert np.array_equal(packed.x, dense.x)
            assert np.array_equal(packed.z, dense.z)
            assert np.array_equal(packed.r, dense.r)
