"""Tests for Kraus channels, Pauli twirling and the NoiseModel container."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit
from repro.simulators.noise import (NoiseModel, PauliChannel, QuantumChannel,
                                    amplitude_damping_channel,
                                    bit_flip_channel, depolarizing_channel,
                                    pauli_error_channel, pauli_twirl,
                                    phase_flip_channel,
                                    thermal_relaxation_channel,
                                    two_qubit_tensor_channel)


class TestChannels:
    def test_kraus_completeness_enforced(self):
        with pytest.raises(ValueError):
            QuantumChannel([np.array([[1.0, 0.0], [0.0, 0.5]])])

    @given(p=st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_depolarizing_preserves_trace(self, p):
        channel = depolarizing_channel(p, 1)
        rho = np.array([[0.7, 0.2 + 0.1j], [0.2 - 0.1j, 0.3]])
        out = channel.apply_to_density_matrix(rho)
        assert np.trace(out).real == pytest.approx(1.0)

    def test_depolarizing_two_qubit_error_probability(self):
        channel = depolarizing_channel(0.15, 2)
        assert channel.error_probability() == pytest.approx(0.15)
        assert channel.num_qubits == 2

    def test_bit_flip_flips_z_expectation(self):
        channel = bit_flip_channel(0.25)
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = channel.apply_to_density_matrix(rho)
        z_expectation = out[0, 0].real - out[1, 1].real
        assert z_expectation == pytest.approx(0.5)

    def test_phase_flip_leaves_populations(self):
        channel = phase_flip_channel(0.3)
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[0, 0].real == pytest.approx(0.5)
        assert out[0, 1].real == pytest.approx(0.5 * (1 - 2 * 0.3))

    def test_amplitude_damping_decays_excited_state(self):
        channel = amplitude_damping_channel(0.4)
        rho = np.diag([0.0, 1.0]).astype(complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[0, 0].real == pytest.approx(0.4)

    def test_thermal_relaxation_requires_physical_times(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(t1=1.0, t2=3.0, gate_time=0.1)

    def test_thermal_relaxation_coherence_decay(self):
        t1, t2, duration = 100e-6, 80e-6, 1e-6
        channel = thermal_relaxation_channel(t1, t2, duration)
        plus = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = channel.apply_to_density_matrix(plus)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-duration / t2), rel=1e-6)

    def test_pauli_error_channel_probabilities(self):
        channel = pauli_error_channel(0.1, 0.0, 0.2)
        probs = channel.probabilities
        assert probs["X"] == pytest.approx(0.1)
        assert probs["Z"] == pytest.approx(0.2)
        assert probs["I"] == pytest.approx(0.7)

    def test_invalid_probability_sum_rejected(self):
        with pytest.raises(ValueError):
            PauliChannel({"X": 0.7, "Z": 0.6})

    def test_tensor_channel_acts_independently(self):
        channel = two_qubit_tensor_channel(bit_flip_channel(0.5), bit_flip_channel(0.0))
        rho = np.zeros((4, 4), dtype=complex)
        rho[0, 0] = 1.0
        out = channel.apply_to_density_matrix(rho)
        # Qubit 0 (the first factor, least-significant bit) flips with p=0.5.
        assert out[1, 1].real == pytest.approx(0.5)
        assert out[2, 2].real == pytest.approx(0.0)

    def test_channel_composition(self):
        channel = bit_flip_channel(0.5).compose(bit_flip_channel(0.5))
        rho = np.diag([1.0, 0.0]).astype(complex)
        out = channel.apply_to_density_matrix(rho)
        assert out[0, 0].real == pytest.approx(0.5)


class TestPauliTwirl:
    def test_twirl_of_pauli_channel_is_exact(self):
        channel = pauli_error_channel(0.05, 0.02, 0.03)
        twirled = pauli_twirl(channel)
        for label, probability in channel.probabilities.items():
            assert twirled.probabilities[label] == pytest.approx(probability, abs=1e-10)

    def test_twirl_of_amplitude_damping_is_stochastic(self):
        twirled = pauli_twirl(amplitude_damping_channel(0.2))
        probs = twirled.probabilities
        assert probs["I"] == pytest.approx(max(probs.values()))
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs["X"] == pytest.approx(probs["Y"], abs=1e-10)

    def test_depolarizing_twirl_probabilities_uniform(self):
        twirled = pauli_twirl(depolarizing_channel(0.3, 1))
        assert twirled.probabilities["X"] == pytest.approx(0.1)


class TestNoiseModel:
    def test_gate_error_locations(self):
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.01, 2), ["cx"])
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).cx(0, 1)
        locations = noise.error_locations(qc)
        assert len(locations) == 2
        assert all(loc.kind == "gate" for loc in locations)

    def test_wrong_arity_channel_rejected(self):
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.01, 1), ["cx"])
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(ValueError):
            noise.error_locations(qc)

    def test_idle_locations_cover_unused_qubits(self):
        noise = NoiseModel().add_idle_error(depolarizing_channel(0.01, 1))
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        locations = noise.error_locations(qc)
        idle = [loc for loc in locations if loc.kind == "idle"]
        assert len(idle) == 1
        assert idle[0].qubits == (2,)

    def test_readout_error_creates_measure_locations(self):
        noise = NoiseModel().add_readout_error(0.05)
        qc = QuantumCircuit(2)
        qc.measure_all()
        locations = noise.error_locations(qc)
        assert len([loc for loc in locations if loc.kind == "measure"]) == 2

    def test_has_noise(self):
        assert not NoiseModel().has_noise()
        assert NoiseModel().add_readout_error(0.1).has_noise()

    def test_invalid_readout_probability(self):
        with pytest.raises(ValueError):
            NoiseModel().add_readout_error(1.5)
