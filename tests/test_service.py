"""The repro.service job server: protocol, scheduling, registry, E2E.

The PR-6 acceptance surface:

* two concurrent clients submitting an identical deterministic job are
  served by ONE engine execution (counter-verified against
  ``Executor.stats.backend_invocations`` and
  ``repro.qec.sampling_stats()``);
* a client killed mid-stream reattaches by job id and retrieves the full
  event history and final result from the SQLite run registry;
* a streaming QEC job delivers at least two partial Wilson-interval
  updates before the final result, and every value returned over the wire
  is bitwise identical to the equivalent in-process ``Executor`` call;
* bounded queues and per-tenant quotas reject excess submissions with
  429-style errors instead of buffering unboundedly.
"""

import contextlib
import json
import os
import shutil
import tempfile
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.execution import Executor
from repro.operators.pauli import PauliSum
from repro.qec import MWPMDecoder, repetition_code_graph
from repro.qec.sampling import (reset_sampling_stats, run_memory_sampling,
                                sampling_stats, stream_memory_sampling)
from repro.service import (JobFailedError, JobRunner, ProtocolError,
                           QueueFullError, QuotaExceededError, RunRegistry,
                           ServiceClient, ServiceConfig, ServiceError,
                           TenantQueues, decode_line, encode_line,
                           qec_memory_payload, start_in_thread,
                           sweep_payload)
from repro.service import protocol as protocol_module
from repro.service import runner as runner_module
from repro.service.jobs import PreparedJob


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def sweep_fixture(points=6):
    theta = Parameter("theta")
    template = QuantumCircuit(2)
    template.h(0)
    template.rz(theta, 0)
    template.cx(0, 1)
    observable = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.5})
    parameter_sets = [[0.1 * k] for k in range(points)]
    return template, parameter_sets, observable


@contextlib.contextmanager
def service(**overrides):
    """A live in-thread server on a short unix-socket path."""
    tmp = tempfile.mkdtemp(dir="/tmp", prefix="rsvc")
    defaults = dict(socket_path=os.path.join(tmp, "s.sock"),
                    db_path=os.path.join(tmp, "registry.db"), workers=2)
    defaults.update(overrides)
    handle = start_in_thread(ServiceConfig(**defaults))
    try:
        yield handle
    finally:
        handle.stop()
        shutil.rmtree(tmp, ignore_errors=True)


def wait_for_state(client, job_id, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.status(job_id)["state"] == state:
            return
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {state!r}")


BLOCKER = dict(distance=3, rounds=2, error_rate=0.02, shots=262144,
               chunk_blocks=4)  # unseeded: never deduped, never cached


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        request = protocol_module.SubmitRequest(
            kind="sweep", payload={"a": 1}, tenant="alice", priority=3,
            stream=True)
        line = encode_line(request)
        assert line.endswith("\n") and "\n" not in line[:-1]
        decoded = decode_line(line)
        assert decoded == request

    def test_every_message_type_round_trips(self):
        for cls in protocol_module._MESSAGE_TYPES.values():
            try:
                instance = cls()
            except TypeError:
                continue  # needs positional fields; covered elsewhere
            assert decode_line(encode_line(instance)) == instance

    def test_rejects_wrong_version(self):
        line = json.dumps({"v": 99, "type": "ping"})
        with pytest.raises(ProtocolError, match="version"):
            decode_line(line)

    def test_rejects_unknown_type(self):
        line = json.dumps({"v": 1, "type": "teleport"})
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_line(line)

    def test_rejects_unknown_fields(self):
        line = json.dumps({"v": 1, "type": "ping", "extra": 1})
        with pytest.raises(ProtocolError, match="unknown fields"):
            decode_line(line)

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line("[1, 2]")
        with pytest.raises(ProtocolError):
            decode_line("not json")

    def test_submit_validation(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            protocol_module.SubmitRequest(kind="bogus",
                                          payload={}).validate()
        with pytest.raises(ProtocolError, match="tenant"):
            protocol_module.SubmitRequest(kind="sweep", payload={},
                                          tenant="").validate()

    def test_no_pickle_on_the_wire(self):
        template, points, observable = sweep_fixture()
        payload = sweep_payload(template, points, observable)
        # The whole payload must survive a strict JSON round trip.
        assert json.loads(json.dumps(payload)) == payload


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


class TestTenantQueues:
    def test_priority_order_within_tenant(self):
        queues = TenantQueues(max_running_per_tenant=8)
        queues.submit("a", 0, "low")
        queues.submit("a", 5, "high")
        queues.submit("a", 5, "high2")
        popped = [queues.next_job(timeout=0.1)[1] for _ in range(3)]
        assert popped == ["high", "high2", "low"]

    def test_global_bound_rejects(self):
        queues = TenantQueues(max_pending=2, max_pending_per_tenant=10)
        queues.submit("a", 0, "j1")
        queues.submit("b", 0, "j2")
        with pytest.raises(QueueFullError):
            queues.submit("c", 0, "j3")

    def test_tenant_quota_rejects(self):
        queues = TenantQueues(max_pending=100, max_pending_per_tenant=1)
        queues.submit("a", 0, "j1")
        with pytest.raises(QuotaExceededError):
            queues.submit("a", 0, "j2")
        queues.submit("b", 0, "j3")  # other tenants unaffected

    def test_running_quota_parks_tenant(self):
        queues = TenantQueues(max_running_per_tenant=1)
        queues.submit("a", 0, "a1")
        queues.submit("a", 0, "a2")
        queues.submit("b", 0, "b1")
        first = queues.next_job(timeout=0.1)
        assert first == ("a", "a1")
        # Tenant a is at its running quota: b runs next, then nothing.
        assert queues.next_job(timeout=0.1) == ("b", "b1")
        assert queues.next_job(timeout=0.05) is None
        queues.task_done("a")
        assert queues.next_job(timeout=0.1) == ("a", "a2")

    def test_remove_and_drain(self):
        queues = TenantQueues()
        queues.submit("a", 0, "j1")
        queues.submit("a", 1, "j2")
        assert queues.remove("a", "j1") is True
        assert queues.remove("a", "j1") is False
        assert queues.drain() == [("a", "j2")]
        assert queues.pending == 0
        with pytest.raises(QueueFullError):
            queues.submit("a", 0, "j3")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRunRegistry:
    def test_job_lifecycle_and_guarded_transitions(self):
        registry = RunRegistry(":memory:")
        registry.create_job("j1", "alice", "sweep", "key1", 2, {"x": 1})
        entry = registry.get_job("j1")
        assert entry["state"] == "queued"
        assert entry["payload"] == {"x": 1}
        assert registry.transition("j1", ("queued",), "running") is True
        # Illegal jump: the job is no longer queued.
        assert registry.transition("j1", ("queued",), "cancelled") is False
        registry.record_result("j1", {"energies": [1.0]}, cache_hits=3,
                               cache_misses=4)
        assert registry.transition("j1", ("running",), "done") is True
        entry = registry.get_job("j1")
        assert entry["state"] == "done"
        assert entry["result"] == {"energies": [1.0]}
        assert (entry["cache_hits"], entry["cache_misses"]) == (3, 4)
        assert entry["started_at"] is not None
        assert entry["finished_at"] is not None
        # Terminal rows never move again.
        assert registry.transition("j1", ("done",), "running") is False

    def test_event_log_is_append_only_and_ordered(self):
        registry = RunRegistry(":memory:")
        registry.create_job("j1", "t", "sweep", None, 0, {})
        seqs = [registry.append_event("j1", "partial", {"n": n})
                for n in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        tail = registry.events_since("j1", after_seq=3)
        assert [event["seq"] for event in tail] == [4, 5]
        assert tail[0]["data"] == {"n": 3}

    def test_find_inflight_and_counts(self):
        registry = RunRegistry(":memory:")
        registry.create_job("j1", "t", "sweep", "K", 0, {})
        registry.create_job("j2", "t", "sweep", "K2", 0, {})
        assert registry.find_inflight("K") == "j1"
        registry.transition("j1", ("queued",), "cancelled")
        assert registry.find_inflight("K") is None
        assert registry.counts() == {"queued": 1, "cancelled": 1}

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "registry.db")
        registry = RunRegistry(path)
        registry.create_job("j1", "t", "sweep", None, 0, {"x": 2})
        registry.append_event("j1", "partial", {"n": 0})
        registry.close()
        reopened = RunRegistry(path)
        assert reopened.get_job("j1")["payload"] == {"x": 2}
        assert len(reopened.events_since("j1")) == 1
        reopened.close()


# ---------------------------------------------------------------------------
# runner (deterministic, with stub jobs)
# ---------------------------------------------------------------------------


@pytest.fixture
def stub_runner(monkeypatch):
    """A JobRunner whose jobs block on events — fully deterministic."""
    started = {}
    release = {}

    def fake_prepare(kind, payload):
        name = payload["name"]
        started[name] = threading.Event()
        release[name] = threading.Event()

        def run(ctx):
            started[name].set()
            while not release[name].wait(0.02):
                ctx.checkpoint()
            if payload.get("fail"):
                raise RuntimeError("boom")
            ctx.emit("partial", {"name": name})
            return {"name": name}

        return PreparedJob(kind=kind, key=payload.get("key"), units=1,
                           run=run)

    monkeypatch.setattr(runner_module, "prepare_job", fake_prepare)
    registry = RunRegistry(":memory:")
    runner = JobRunner(Executor(), registry, TenantQueues(), workers=2)
    try:
        yield runner, started, release
    finally:
        for event in release.values():
            event.set()
        runner.shutdown(drain=True, timeout=10)


class TestJobRunner:
    def test_inflight_dedup_returns_same_job(self, stub_runner):
        runner, started, release = stub_runner
        job_id, deduped, _ = runner.submit("sweep", {"name": "a",
                                                     "key": "K"})
        assert not deduped
        dup_id, dup_deduped, _ = runner.submit("sweep", {"name": "a2",
                                                         "key": "K"})
        assert dup_deduped and dup_id == job_id
        # A keyless job never coalesces.
        other_id, other_deduped, _ = runner.submit("sweep", {"name": "b"})
        assert not other_deduped and other_id != job_id
        release["a"].set()
        release["b"].set()
        assert runner.wait_result(job_id, timeout=10)["state"] == "done"
        # Once terminal, the key is released: a resubmission is a new job.
        new_id, new_deduped, _ = runner.submit("sweep", {"name": "c",
                                                         "key": "K"})
        assert not new_deduped and new_id != job_id
        release["c"].set()
        runner.wait_result(new_id, timeout=10)

    def test_cancel_running_job(self, stub_runner):
        runner, started, release = stub_runner
        job_id, _, _ = runner.submit("sweep", {"name": "a"})
        assert started["a"].wait(timeout=10)
        assert runner.cancel(job_id) in ("running", "cancelled")
        entry = runner.wait_result(job_id, timeout=10)
        assert entry["state"] == "cancelled"

    def test_failed_job_records_error(self, stub_runner):
        runner, started, release = stub_runner
        job_id, _, _ = runner.submit("sweep", {"name": "a", "fail": True})
        release["a"].set()
        entry = runner.wait_result(job_id, timeout=10)
        assert entry["state"] == "failed"
        assert "boom" in entry["error"]

    def test_events_are_persisted_and_fanned_out(self, stub_runner):
        runner, started, release = stub_runner
        job_id, _, _ = runner.submit("sweep", {"name": "a"})
        feed = runner.subscribe(job_id)
        release["a"].set()
        runner.wait_result(job_id, timeout=10)
        kinds = [event["kind"]
                 for event in runner.registry.events_since(job_id)]
        assert kinds == ["state", "state", "partial", "cache", "state"]
        seqs = [event["seq"]
                for event in runner.registry.events_since(job_id)]
        assert seqs == [1, 2, 3, 4, 5]
        runner.unsubscribe(job_id, feed)

    def test_recovers_stale_jobs_from_dead_process(self, monkeypatch):
        """A restarted server requeues queued rows without spending an
        attempt, retries lease-expired running rows with budget left, and
        dead-letters lease-expired running rows whose budget is gone."""
        ran = []

        def fake_prepare(kind, payload):
            def run(ctx):
                ran.append(payload["name"])
                return {"name": payload["name"]}
            return PreparedJob(kind=kind, key=None, units=1, run=run)

        monkeypatch.setattr(runner_module, "prepare_job", fake_prepare)
        registry = RunRegistry(":memory:")
        # Queued when the old server died: it never ran.
        registry.create_job("q1", "t", "sweep", None, 0, {"name": "q1"},
                            max_attempts=1)
        # Running with an expired lease and budget left: retried.
        registry.create_job("r1", "t", "sweep", None, 0, {"name": "r1"},
                            max_attempts=2)
        assert registry.claim("r1", "dead-server", lease_seconds=0.0) == 1
        # Running with an expired lease and no budget left: dead-lettered.
        registry.create_job("r2", "t", "sweep", None, 0, {"name": "r2"},
                            max_attempts=1)
        assert registry.claim("r2", "dead-server", lease_seconds=0.0) == 1
        time.sleep(0.01)  # both leases are now strictly in the past
        runner = JobRunner(Executor(), registry, TenantQueues(), workers=1)
        try:
            assert runner.wait_result("q1", timeout=10)["state"] == "done"
            assert runner.wait_result("r1", timeout=10)["state"] == "done"
            # q1 never ran under the old server, so its recovered run is
            # attempt #1; r1's crashed attempt still counts.
            assert registry.get_job("q1")["attempts"] == 1
            assert registry.get_job("r1")["attempts"] == 2
            entry = registry.get_job("r2")
            assert entry["state"] == "failed"
            assert "orphaned" in entry["error"]
            assert sorted(ran) == ["q1", "r1"]
            # Event logs stayed append-only and replayable: the dead-letter
            # is the r2 log's terminal event.
            kinds = [event["kind"]
                     for event in registry.events_since("r2")]
            assert kinds[-1] == "state"
            assert registry.events_since("r2")[-1]["data"]["state"] == \
                "failed"
        finally:
            runner.shutdown(timeout=10)


# ---------------------------------------------------------------------------
# end-to-end over the unix socket
# ---------------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_sweep_results_bitwise_identical_to_in_process(self):
        template, points, observable = sweep_fixture()
        with Executor(use_cache=False) as reference:
            whole = reference.evaluate_sweep(template, points, observable)
            chunked = []
            for start in range(0, len(points), 2):
                chunked.extend(reference.evaluate_sweep(
                    template, points[start:start + 2], observable))
        with service() as handle:
            with ServiceClient(handle.socket_path) as client:
                # One chunk == the plain whole-batch in-process call.
                _, result = client.submit_and_stream(
                    "sweep", sweep_payload(template, points, observable))
                assert result.result["energies"] == list(whole)
                # chunk=2 == in-process calls of the same chunk shape.
                events = []
                _, result = client.submit_and_stream(
                    "sweep",
                    sweep_payload(template, points, observable, chunk=2),
                    on_event=events.append)
                assert result.result["energies"] == chunked
                partials = [e for e in events if e["kind"] == "partial"]
                assert len(partials) == 3
                assert [p["data"]["done"] for p in partials] == [2, 4, 6]

    def test_qec_stream_delivers_wilson_partials_before_result(self):
        payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                     shots=1024, seed=11, chunk_blocks=1)
        graph = repetition_code_graph(3, 2, 0.02)
        reference = run_memory_sampling(graph, MWPMDecoder(graph), 1024,
                                        seed=11)
        with service() as handle:
            with ServiceClient(handle.socket_path) as client:
                events = []
                _, result = client.submit_and_stream(
                    "qec_memory", payload, on_event=events.append)
        partials = [e for e in events if e["kind"] == "partial"]
        assert len(partials) >= 2  # streamed, not just a final dump
        for partial in partials:
            low, high = partial["data"]["wilson"]
            assert 0.0 <= low <= high <= 1.0
        shots_seen = [p["data"]["shots"] for p in partials]
        assert shots_seen == sorted(shots_seen)
        assert shots_seen[-1] == 1024
        # Bitwise identity with the in-process call.
        assert result.result["failures"] == reference.failures
        assert result.result["total_defects"] == reference.total_defects
        assert result.result["logical_error_rate"] == \
            reference.logical_error_rate

    def test_cross_client_dedup_single_engine_execution(self):
        template, points, observable = sweep_fixture(points=8)
        sweep = sweep_payload(template, points, observable)
        qec = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                 shots=2048, seed=5)
        with service(workers=1) as handle:
            executor = handle.server.executor
            with ServiceClient(handle.socket_path) as alice, \
                    ServiceClient(handle.socket_path) as bob:
                # One worker, occupied by an unkeyed blocker: everything
                # else stays queued, so the duplicate submissions below
                # are deterministically in flight together.
                blocker = alice.submit("qec_memory", BLOCKER).job_id
                wait_for_state(alice, blocker, "running")
                reset_sampling_stats()
                invocations_before = executor.stats.simulator_invocations

                first = alice.submit("sweep", sweep)
                second = bob.submit("sweep", sweep)
                assert not first.deduped
                assert second.deduped
                assert second.job_id == first.job_id

                qec_first = alice.submit("qec_memory", qec)
                qec_second = bob.submit("qec_memory", qec)
                assert qec_second.deduped
                assert qec_second.job_id == qec_first.job_id

                alice_result = alice.fetch(first.job_id)
                bob_result = bob.fetch(second.job_id)
                assert alice_result == bob_result  # same row, same bits
                alice.fetch(qec_first.job_id)
                bob.fetch(qec_second.job_id)

                # Counter verification: one sweep execution (8 points, no
                # cache hits) and one seeded QEC experiment — not two.
                invocations = executor.stats.simulator_invocations - \
                    invocations_before
                assert invocations == len(points)
                # The blocker itself counts as one experiment; the pair of
                # identical seeded submissions adds exactly ONE more (and
                # exactly one job's worth of freshly sampled shots).
                stats = sampling_stats()
                assert stats.experiments == 2
                assert stats.shots_sampled == BLOCKER["shots"] + 2048
                # The registry holds ONE row per deduplicated submission.
                rows = [row for row in alice.list_jobs()
                        if row["job_key"] is not None]
                assert len(rows) == 2
                dedup_events = [
                    event for event in
                    handle.server.registry.events_since(first.job_id)
                    if event["kind"] == "dedup"]
                assert len(dedup_events) == 1

    def test_crashed_client_reattaches_by_job_id(self):
        payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                     shots=4096, seed=13, chunk_blocks=1)
        graph = repetition_code_graph(3, 2, 0.02)
        reference = run_memory_sampling(graph, MWPMDecoder(graph), 4096,
                                        seed=13)
        with service() as handle:
            # Client A submits with streaming, reads two events, then dies
            # without closing the stream properly.
            victim = ServiceClient(handle.socket_path)
            submitted = victim.submit(
                "qec_memory", dict(payload), tenant="victim")
            job_id = submitted.job_id
            seen = []
            for event in victim.iter_events(job_id):
                seen.append(event)
                if len(seen) == 2:
                    break
            victim._socket.close()  # simulated crash: no goodbye
            last_seq = seen[-1]["seq"]

            # Client B (a different process in real life) reattaches by
            # job id and replays exactly the missed tail.
            with ServiceClient(handle.socket_path) as rescuer:
                tail = []
                result = rescuer.attach(job_id, after_seq=last_seq,
                                        on_event=tail.append)
                assert result.state == "done"
                assert result.result["failures"] == reference.failures
                assert result.result["total_defects"] == \
                    reference.total_defects
                seqs = [event["seq"] for event in seen + tail]
                assert seqs == list(range(1, seqs[-1] + 1))  # no gaps
                # The full result also survives in the SQLite registry.
                row = rescuer.status(job_id)
                assert row["state"] == "done"
                assert row["result"]["failures"] == reference.failures

    def test_backpressure_rejects_with_429(self):
        with service(workers=1, max_pending=1) as handle:
            with ServiceClient(handle.socket_path) as client:
                blocker = client.submit("qec_memory", BLOCKER).job_id
                wait_for_state(client, blocker, "running")
                client.submit("qec_memory", BLOCKER)  # fills the queue
                with pytest.raises(ServiceError) as caught:
                    client.submit("qec_memory", BLOCKER)
                assert caught.value.status == 429
                assert caught.value.code == "queue-full"

    def test_tenant_quota_rejects_with_429(self):
        with service(workers=1, max_pending_per_tenant=1) as handle:
            with ServiceClient(handle.socket_path) as client:
                blocker = client.submit("qec_memory", BLOCKER,
                                        tenant="greedy").job_id
                wait_for_state(client, blocker, "running")
                client.submit("qec_memory", BLOCKER, tenant="greedy")
                with pytest.raises(ServiceError) as caught:
                    client.submit("qec_memory", BLOCKER, tenant="greedy")
                assert caught.value.status == 429
                assert caught.value.code == "quota-exceeded"
                # Another tenant is not affected by the greedy one.
                other = client.submit("qec_memory", BLOCKER,
                                      tenant="modest")
                assert other.state == "queued"

    def test_cancel_queued_job(self):
        with service(workers=1) as handle:
            with ServiceClient(handle.socket_path) as client:
                blocker = client.submit("qec_memory", BLOCKER).job_id
                wait_for_state(client, blocker, "running")
                queued = client.submit("qec_memory", BLOCKER).job_id
                assert client.cancel(queued) == "cancelled"
                with pytest.raises(JobFailedError):
                    client.fetch(queued)

    def test_unknown_job_is_404(self):
        with service() as handle:
            with ServiceClient(handle.socket_path) as client:
                with pytest.raises(ServiceError) as caught:
                    client.status("nope")
                assert caught.value.status == 404

    def test_malformed_payload_rejected_at_submit(self):
        with service() as handle:
            with ServiceClient(handle.socket_path) as client:
                with pytest.raises(ServiceError) as caught:
                    client.submit("qec_memory", {"distance": 3})
                assert caught.value.status == 400
                assert client.list_jobs() == []  # nothing persisted

    def test_registry_survives_server_restart(self):
        tmp = tempfile.mkdtemp(dir="/tmp", prefix="rsvc")
        socket_path = os.path.join(tmp, "s.sock")
        db_path = os.path.join(tmp, "registry.db")
        payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                     shots=512, seed=3, chunk_blocks=1)
        try:
            handle = start_in_thread(ServiceConfig(
                socket_path=socket_path, db_path=db_path, workers=1))
            with ServiceClient(socket_path) as client:
                job_id = client.submit("qec_memory", payload).job_id
                first = client.fetch(job_id)
            handle.stop()
            # A brand-new server process over the same registry file still
            # serves the finished job's events and result.
            handle = start_in_thread(ServiceConfig(
                socket_path=socket_path, db_path=db_path, workers=1))
            with ServiceClient(socket_path) as client:
                replayed = []
                result = client.attach(job_id, on_event=replayed.append)
                assert result.state == "done"
                assert result.result == first
                assert any(e["kind"] == "partial" for e in replayed)
            handle.stop()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_service_cache_dir_env_shares_one_disk_cache(self, monkeypatch):
        template, points, observable = sweep_fixture()
        payload = sweep_payload(template, points, observable)
        tmp = tempfile.mkdtemp(dir="/tmp", prefix="rsvc")
        monkeypatch.setenv("REPRO_SERVICE_CACHE_DIR",
                           os.path.join(tmp, "cache"))
        try:
            config = ServiceConfig.from_env(
                socket_path=os.path.join(tmp, "s.sock"),
                db_path=":memory:", workers=1)
            assert config.cache_dir == os.path.join(tmp, "cache")
            with start_in_thread(config) as handle:
                with ServiceClient(handle.socket_path) as client:
                    first_id = client.submit("sweep", payload).job_id
                    client.fetch(first_id)
                    # Sequential resubmission: not in flight, so not
                    # deduped — served by the shared cache instead.
                    second_id = client.submit("sweep", payload).job_id
                    assert second_id != first_id
                    client.fetch(second_id)
                    first = client.status(first_id)
                    second = client.status(second_id)
                    assert first["cache_misses"] > 0
                    assert second["cache_hits"] > 0
                    assert second["cache_misses"] < \
                        first["cache_misses"]
                    stats = client.stats()
                    assert "disk_cache" in stats
                    # The per-job accounting also lands in the event log.
                    cache_events = [
                        e for e in
                        handle.server.registry.events_since(second_id)
                        if e["kind"] == "cache"]
                    assert cache_events and \
                        cache_events[0]["data"]["hits"] == \
                        second["cache_hits"]
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_http_transport(self):
        payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                     shots=512, seed=9, chunk_blocks=1)
        graph = repetition_code_graph(3, 2, 0.02)
        reference = run_memory_sampling(graph, MWPMDecoder(graph), 512,
                                        seed=9)
        with service(http_port=0) as handle:
            base = f"http://127.0.0.1:{handle.http_port}"
            pong = json.load(urllib.request.urlopen(base + "/v1/ping"))
            assert pong["server"] == "repro.service"
            request = urllib.request.Request(
                base + "/v1/jobs", method="POST",
                data=json.dumps({"kind": "qec_memory",
                                 "payload": payload}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request) as response:
                assert response.status == 202
                job_id = json.load(response)["job_id"]
            result = json.load(urllib.request.urlopen(
                base + f"/v1/jobs/{job_id}/result"))
            assert result["state"] == "done"
            assert result["result"]["failures"] == reference.failures
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(base + "/v1/jobs/nope")
            assert caught.value.code == 404

    def test_graceful_shutdown_drains_running_jobs(self):
        with service(workers=1) as handle:
            client = ServiceClient(handle.socket_path)
            running = client.submit("qec_memory", BLOCKER).job_id
            wait_for_state(client, running, "running")
            queued = client.submit("qec_memory", BLOCKER).job_id
            assert client.shutdown_server(drain=True) == "shutting down"
            client.close()
            handle.thread.join(timeout=60)
            assert not handle.thread.is_alive()
            # The running job finished; the queued one was cancelled.
            registry = RunRegistry(handle.server.config.db_path)
            try:
                assert registry.get_job(running)["state"] == "done"
                assert registry.get_job(queued)["state"] == "cancelled"
            finally:
                registry.close()


# ---------------------------------------------------------------------------
# foundations that ride along in this PR
# ---------------------------------------------------------------------------


class TestExecutorShutdown:
    def test_context_manager_flushes_disk_stats(self, tmp_path):
        template, points, observable = sweep_fixture(points=3)
        with Executor(cache_dir=str(tmp_path / "cache")) as executor:
            executor.evaluate_sweep(template, points, observable)
            assert executor.final_disk_stats is None
        assert executor.final_disk_stats is not None
        assert executor.final_disk_stats.writes > 0

    def test_engine_usable_after_shutdown(self):
        template, points, observable = sweep_fixture(points=2)
        executor = Executor()
        executor.evaluate_sweep(template, points, observable)
        executor.shutdown()
        # The process pool is recreated lazily: later work still runs.
        again = Executor()
        values = again.evaluate_sweep(template, points, observable)
        assert len(values) == 2


class TestStreamMemorySampling:
    def test_stream_is_bitwise_identical_to_batch(self):
        graph = repetition_code_graph(3, 4, 0.03)
        decoder = MWPMDecoder(graph)
        # Distinct executors: neither call may see the other's cache.
        reference = run_memory_sampling(graph, decoder, 2048, seed=21,
                                        executor=Executor())
        partials = list(stream_memory_sampling(graph, decoder, 2048,
                                               seed=21, chunk_blocks=2,
                                               executor=Executor()))
        assert len(partials) >= 2
        final = partials[-1]
        assert final.shots == reference.shots
        assert final.failures == reference.failures
        assert final.total_defects == reference.total_defects

    def test_warm_cache_yields_single_cached_partial(self):
        graph = repetition_code_graph(3, 2, 0.02)
        decoder = MWPMDecoder(graph)
        executor = Executor()
        run_memory_sampling(graph, decoder, 512, seed=8, executor=executor)
        partials = list(stream_memory_sampling(graph, decoder, 512, seed=8,
                                               executor=executor))
        assert len(partials) == 1
        assert partials[0].from_cache is True
