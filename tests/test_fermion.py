"""Tests for second-quantized fermionic operators and qubit mappings."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.fermion import (FermionicOperator, bravyi_kitaev,
                                     bravyi_kitaev_matrix, fermi_hubbard,
                                     jordan_wigner, map_to_qubits,
                                     molecular_fermionic_hamiltonian,
                                     molecular_hamiltonian_from_integrals,
                                     synthetic_molecular_integrals,
                                     _gf2_inverse)
from repro.operators.pauli import PauliSum


# ---------------------------------------------------------------------------
# FermionicOperator algebra
# ---------------------------------------------------------------------------

class TestFermionicOperatorAlgebra:
    def test_creation_and_annihilation_terms(self):
        op = FermionicOperator.creation(3, 1)
        assert op.num_terms == 1
        assert op.coefficient(((1, True),)) == 1.0

    def test_mode_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FermionicOperator(2).add_term(((5, True),), 1.0)

    def test_zero_operator_is_zero(self):
        assert FermionicOperator.zero(4).is_zero()

    def test_addition_merges_coefficients(self):
        a = FermionicOperator.creation(2, 0)
        b = FermionicOperator.creation(2, 0) * 2.0
        combined = a + b
        assert combined.coefficient(((0, True),)) == pytest.approx(3.0)

    def test_subtraction_cancels(self):
        a = FermionicOperator.number(3, 2)
        assert (a - a).is_zero()

    def test_scalar_multiplication(self):
        op = FermionicOperator.number(2, 1) * 0.5
        assert op.coefficient(((1, True), (1, False))) == pytest.approx(0.5)

    def test_operator_multiplication_concatenates(self):
        a_dag = FermionicOperator.creation(2, 0)
        a = FermionicOperator.annihilation(2, 0)
        product = a_dag * a
        assert product.coefficient(((0, True), (0, False))) == pytest.approx(1.0)

    def test_incompatible_mode_counts_rejected(self):
        with pytest.raises(ValueError):
            FermionicOperator.creation(2, 0) + FermionicOperator.creation(3, 0)

    def test_hermitian_conjugate_of_ladder(self):
        op = FermionicOperator.creation(2, 1)
        dagger = op.hermitian_conjugate()
        assert dagger.coefficient(((1, False),)) == pytest.approx(1.0)

    def test_number_operator_is_hermitian(self):
        assert FermionicOperator.number(3, 1).is_hermitian()

    def test_hopping_term_is_hermitian(self):
        hopping = FermionicOperator(2)
        hopping.add_term(((0, True), (1, False)), 1.0)
        hopping.add_term(((1, True), (0, False)), 1.0)
        assert hopping.is_hermitian()

    def test_non_hermitian_detected(self):
        op = FermionicOperator(2)
        op.add_term(((0, True), (1, False)), 1.0)
        assert not op.is_hermitian()

    def test_repr_mentions_modes(self):
        assert "modes=3" in repr(FermionicOperator.number(3, 0))


class TestNormalOrdering:
    def test_anticommutator_identity(self):
        """a_0 a_0† = 1 − a_0† a_0 after normal ordering."""
        num_modes = 2
        a = FermionicOperator.annihilation(num_modes, 0)
        a_dag = FermionicOperator.creation(num_modes, 0)
        ordered = (a * a_dag).normal_ordered()
        assert ordered.coefficient(()) == pytest.approx(1.0)
        assert ordered.coefficient(((0, True), (0, False))) == pytest.approx(-1.0)

    def test_different_modes_anticommute(self):
        """a_0 a_1† = −a_1† a_0 (no contraction across distinct modes)."""
        a0 = FermionicOperator.annihilation(2, 0)
        a1_dag = FermionicOperator.creation(2, 1)
        ordered = (a0 * a1_dag).normal_ordered()
        assert ordered.coefficient(((1, True), (0, False))) == pytest.approx(-1.0)
        assert ordered.coefficient(()) == 0.0

    def test_pauli_exclusion_zeroes_repeated_creation(self):
        op = FermionicOperator(2)
        op.add_term(((0, True), (0, True)), 1.0)
        assert op.normal_ordered().is_zero()

    def test_number_operator_squared_equals_number_operator(self):
        """n² = n for a fermionic number operator."""
        n = FermionicOperator.number(2, 0)
        assert (n * n).normal_ordered() == n

    def test_normal_ordering_preserves_spectrum_via_jw(self):
        """Normal ordering is an operator identity: JW matrices must agree."""
        op = FermionicOperator(3)
        op.add_term(((0, False), (1, True)), 0.7)
        op.add_term(((1, False), (0, True)), 0.7)
        op.add_term(((2, True), (2, False)), -0.3)
        raw = jordan_wigner(op).to_matrix()
        ordered = jordan_wigner(op.normal_ordered()).to_matrix()
        np.testing.assert_allclose(raw, ordered, atol=1e-10)


# ---------------------------------------------------------------------------
# GF(2) linear algebra and the BK matrix
# ---------------------------------------------------------------------------

class TestBravyiKitaevMatrix:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 12])
    def test_matrix_is_lower_triangular_with_unit_diagonal(self, n):
        beta = bravyi_kitaev_matrix(n)
        assert np.all(np.triu(beta, k=1) == 0)
        assert np.all(np.diag(beta) == 1)

    @pytest.mark.parametrize("n", [1, 2, 4, 7, 12])
    def test_gf2_inverse_roundtrip(self, n):
        beta = bravyi_kitaev_matrix(n)
        inverse = _gf2_inverse(beta)
        product = (beta.astype(int) @ inverse.astype(int)) % 2
        np.testing.assert_array_equal(product, np.eye(n, dtype=int))

    def test_gf2_inverse_rejects_singular(self):
        with pytest.raises(ValueError):
            _gf2_inverse(np.zeros((2, 2), dtype=np.uint8))

    def test_known_four_mode_matrix(self):
        expected = np.array([[1, 0, 0, 0],
                             [1, 1, 0, 0],
                             [0, 0, 1, 0],
                             [1, 1, 1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(bravyi_kitaev_matrix(4), expected)


# ---------------------------------------------------------------------------
# Jordan–Wigner and Bravyi–Kitaev mappings
# ---------------------------------------------------------------------------

def _spectrum(hamiltonian: PauliSum) -> np.ndarray:
    return np.sort(np.linalg.eigvalsh(hamiltonian.to_matrix()))


class TestJordanWigner:
    def test_number_operator_maps_to_half_one_minus_z(self):
        n = FermionicOperator.number(1, 0)
        qubit_op = jordan_wigner(n)
        matrix = qubit_op.to_matrix()
        np.testing.assert_allclose(matrix, np.diag([0.0, 1.0]), atol=1e-12)

    def test_identity_term_maps_to_identity(self):
        op = FermionicOperator.identity(2, 1.5)
        matrix = jordan_wigner(op).to_matrix()
        np.testing.assert_allclose(matrix, 1.5 * np.eye(4), atol=1e-12)

    def test_jw_of_hermitian_operator_is_hermitian(self):
        hopping = FermionicOperator(3)
        hopping.add_term(((0, True), (2, False)), 0.5)
        hopping.add_term(((2, True), (0, False)), 0.5)
        assert jordan_wigner(hopping).is_hermitian()

    def test_canonical_anticommutation_relations(self):
        """{a_p, a_q†} = δ_pq on the qubit side."""
        num_modes = 3
        for p in range(num_modes):
            for q in range(num_modes):
                a_p = jordan_wigner(FermionicOperator.annihilation(num_modes, p))
                a_q_dag = jordan_wigner(FermionicOperator.creation(num_modes, q))
                anticommutator = (a_p @ a_q_dag + a_q_dag @ a_p).simplify()
                matrix = anticommutator.to_matrix()
                expected = np.eye(2 ** num_modes) if p == q else np.zeros((8, 8))
                np.testing.assert_allclose(matrix, expected, atol=1e-10)

    def test_pauli_weight_grows_linearly(self):
        op = jordan_wigner(FermionicOperator.creation(8, 7))
        assert op.max_weight() == 8


class TestBravyiKitaev:
    def test_single_mode_matches_jw(self):
        n = FermionicOperator.number(1, 0)
        np.testing.assert_allclose(bravyi_kitaev(n).to_matrix(),
                                   jordan_wigner(n).to_matrix(), atol=1e-12)

    @pytest.mark.parametrize("num_modes", [2, 3, 4])
    def test_number_operator_spectrum_is_zero_one(self, num_modes):
        for mode in range(num_modes):
            op = bravyi_kitaev(FermionicOperator.number(num_modes, mode))
            eigenvalues = _spectrum(op)
            assert set(np.round(eigenvalues, 8)) <= {0.0, 1.0}

    @pytest.mark.parametrize("num_modes", [2, 3, 4])
    def test_bk_and_jw_spectra_agree(self, num_modes):
        """The two encodings are related by a basis change — same spectrum."""
        rng = np.random.default_rng(5)
        op = FermionicOperator(num_modes)
        for p in range(num_modes):
            op.add_term(((p, True), (p, False)), rng.normal())
            for q in range(p + 1, num_modes):
                value = rng.normal() * 0.5
                op.add_term(((p, True), (q, False)), value)
                op.add_term(((q, True), (p, False)), value)
        jw_spectrum = _spectrum(jordan_wigner(op))
        bk_spectrum = _spectrum(bravyi_kitaev(op))
        np.testing.assert_allclose(jw_spectrum, bk_spectrum, atol=1e-8)

    def test_bk_anticommutation_relations(self):
        num_modes = 4
        for p in range(num_modes):
            a_p = bravyi_kitaev(FermionicOperator.annihilation(num_modes, p))
            a_p_dag = bravyi_kitaev(FermionicOperator.creation(num_modes, p))
            anticommutator = (a_p @ a_p_dag + a_p_dag @ a_p).simplify()
            np.testing.assert_allclose(anticommutator.to_matrix(),
                                       np.eye(2 ** num_modes), atol=1e-10)

    def test_map_to_qubits_dispatch(self):
        op = FermionicOperator.number(2, 0)
        assert map_to_qubits(op, "jw") == jordan_wigner(op)
        assert map_to_qubits(op, "bravyi-kitaev") == bravyi_kitaev(op)
        with pytest.raises(ValueError):
            map_to_qubits(op, "parity")


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=10_000))
def test_property_quadratic_hermitian_operators_map_to_hermitian_paulisums(
        num_modes, seed):
    """Any Hermitian quadratic fermionic operator maps to a Hermitian PauliSum
    with matching spectra under JW and BK."""
    rng = np.random.default_rng(seed)
    op = FermionicOperator(num_modes)
    for p in range(num_modes):
        op.add_term(((p, True), (p, False)), rng.normal())
    p, q = rng.integers(0, num_modes, size=2)
    if p != q:
        value = rng.normal()
        op.add_term(((p, True), (q, False)), value)
        op.add_term(((q, True), (p, False)), value)
    jw = jordan_wigner(op)
    bk = bravyi_kitaev(op)
    assert jw.is_hermitian()
    assert bk.is_hermitian()
    np.testing.assert_allclose(_spectrum(jw), _spectrum(bk), atol=1e-8)


# ---------------------------------------------------------------------------
# Electronic-structure builders
# ---------------------------------------------------------------------------

class TestMolecularBuilders:
    def test_one_body_shape_validation(self):
        with pytest.raises(ValueError):
            molecular_fermionic_hamiltonian(np.zeros((2, 3)))

    def test_two_body_shape_validation(self):
        with pytest.raises(ValueError):
            molecular_fermionic_hamiltonian(np.eye(2), np.zeros((2, 2)))

    def test_quadratic_hamiltonian_ground_state_fills_negative_orbitals(self):
        """For H = Σ ε_p n_p the ground energy is the sum of negative ε_p."""
        energies = np.array([-1.5, -0.2, 0.7, 1.1])
        hamiltonian = molecular_fermionic_hamiltonian(np.diag(energies))
        qubit_op = jordan_wigner(hamiltonian)
        ground = qubit_op.ground_state_energy()
        assert ground == pytest.approx(energies[energies < 0].sum(), abs=1e-8)

    def test_constant_term_shifts_spectrum(self):
        base = molecular_fermionic_hamiltonian(np.diag([1.0, -1.0]))
        shifted = molecular_fermionic_hamiltonian(np.diag([1.0, -1.0]),
                                                  constant=2.5)
        e_base = jordan_wigner(base).ground_state_energy()
        e_shift = jordan_wigner(shifted).ground_state_energy()
        assert e_shift - e_base == pytest.approx(2.5, abs=1e-8)

    def test_synthetic_integrals_symmetry(self):
        integrals = synthetic_molecular_integrals("H2O", 1.0, num_modes=6)
        np.testing.assert_allclose(integrals.one_body, integrals.one_body.T,
                                   atol=1e-12)
        assert integrals.num_modes == 6

    def test_synthetic_integrals_deterministic(self):
        a = synthetic_molecular_integrals("LiH", 1.0, num_modes=6)
        b = synthetic_molecular_integrals("LiH", 1.0, num_modes=6)
        np.testing.assert_array_equal(a.one_body, b.one_body)
        np.testing.assert_array_equal(a.two_body, b.two_body)

    def test_synthetic_integrals_unknown_molecule(self):
        with pytest.raises(ValueError):
            synthetic_molecular_integrals("XeF4")

    def test_synthetic_integrals_require_even_modes(self):
        with pytest.raises(ValueError):
            synthetic_molecular_integrals("H2", num_modes=5)

    def test_bond_stretch_decays_hopping(self):
        near = synthetic_molecular_integrals("H6", 1.0, num_modes=6)
        far = synthetic_molecular_integrals("H6", 4.5, num_modes=6)
        near_offdiag = np.abs(near.one_body - np.diag(np.diag(near.one_body))).sum()
        far_offdiag = np.abs(far.one_body - np.diag(np.diag(far.one_body))).sum()
        assert far_offdiag < near_offdiag

    def test_end_to_end_pipeline_produces_hermitian_hamiltonian(self):
        hamiltonian = molecular_hamiltonian_from_integrals("H2", 1.0,
                                                           num_modes=4)
        assert isinstance(hamiltonian, PauliSum)
        assert hamiltonian.num_qubits == 4
        assert hamiltonian.is_hermitian()
        # A bound electronic state: ground energy below the identity offset.
        identity_offset = hamiltonian.identity_coefficient().real
        assert hamiltonian.ground_state_energy() < identity_offset


class TestFermiHubbard:
    def test_mode_count_is_twice_sites(self):
        model = fermi_hubbard(3)
        assert model.num_modes == 6

    def test_minimum_sites(self):
        with pytest.raises(ValueError):
            fermi_hubbard(1)

    def test_hubbard_is_hermitian(self):
        assert fermi_hubbard(2, tunneling=1.0, interaction=4.0).is_hermitian()

    def test_interaction_raises_energy_of_double_occupation(self):
        """With U > 0 the doubly-occupied site costs U."""
        model = fermi_hubbard(2, tunneling=0.0, interaction=4.0)
        qubit_op = jordan_wigner(model)
        # Diagonal Hamiltonian: spectrum contains 0 (empty) and U (one doublon).
        eigenvalues = np.round(_spectrum(qubit_op), 8)
        assert 0.0 in eigenvalues
        assert 4.0 in eigenvalues

    def test_known_two_site_ground_state_energy(self):
        """Half-filled 2-site Hubbard: E0 = (U − sqrt(U² + 16 t²)) / 2.

        Parameters are chosen (t > U) so the half-filled singlet is also the
        global ground state across particle-number sectors.
        """
        t, u = 2.0, 1.0
        model = fermi_hubbard(2, tunneling=t, interaction=u)
        qubit_op = jordan_wigner(model)
        expected = (u - math.sqrt(u ** 2 + 16 * t ** 2)) / 2.0
        assert qubit_op.ground_state_energy() == pytest.approx(expected, abs=1e-8)

    def test_periodic_flag_adds_wraparound_bond(self):
        open_chain = fermi_hubbard(3, periodic=False)
        ring = fermi_hubbard(3, periodic=True)
        assert ring.num_terms > open_chain.num_terms

    def test_chemical_potential_counts_particles(self):
        model = fermi_hubbard(2, tunneling=0.0, interaction=0.0,
                              chemical_potential=1.0)
        qubit_op = jordan_wigner(model)
        # Four modes, each contributing −μ when occupied: minimum = −4μ.
        assert qubit_op.ground_state_energy() == pytest.approx(-4.0, abs=1e-8)
