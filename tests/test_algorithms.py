"""Tests for QAOA, VQD and the variational quantum classifier."""


import numpy as np
import pytest

from repro.algorithms.qaoa import QAOA, QAOAAnsatz
from repro.algorithms.qml import (ClassificationDataset, VariationalClassifier,
                                  make_blobs_dataset, make_circles_dataset)
from repro.algorithms.vqd import VQD
from repro.ansatz import FullyConnectedAnsatz
from repro.core.regimes import NISQRegime
from repro.operators.graphs import (cut_value, maxcut_cost_hamiltonian,
                                    ring_graph)
from repro.operators.hamiltonians import ising_hamiltonian
from repro.operators.pauli import PauliString, PauliSum
from repro.simulators.statevector import StatevectorSimulator
from repro.vqe.energy import BackendEnergyEvaluator
from repro.vqe.optimizers import CobylaOptimizer


# ---------------------------------------------------------------------------
# QAOA
# ---------------------------------------------------------------------------

class TestQAOAAnsatz:
    def test_parameter_count_is_two_per_layer(self):
        hamiltonian = maxcut_cost_hamiltonian(ring_graph(5))
        assert QAOAAnsatz(hamiltonian, depth=3).num_parameters() == 6

    def test_cnot_count_two_per_edge_per_layer(self):
        graph = ring_graph(6)
        hamiltonian = maxcut_cost_hamiltonian(graph)
        ansatz = QAOAAnsatz(hamiltonian, depth=2)
        assert ansatz.cnot_count() == 2 * graph.number_of_edges() * 2

    def test_rotation_count_counts_cost_and_mixer_rotations(self):
        graph = ring_graph(4)
        ansatz = QAOAAnsatz(maxcut_cost_hamiltonian(graph), depth=1)
        # 4 ZZ terms + 0 Z terms + 4 mixer rotations.
        assert ansatz.rotation_count() == 8

    def test_rejects_non_diagonal_hamiltonian(self):
        hamiltonian = PauliSum(3)
        hamiltonian.add_term(PauliString("XXI"), 1.0)
        with pytest.raises(ValueError):
            QAOAAnsatz(hamiltonian)

    def test_rejects_three_body_terms(self):
        hamiltonian = PauliSum(3)
        hamiltonian.add_term(PauliString("ZZZ"), 1.0)
        with pytest.raises(ValueError):
            QAOAAnsatz(hamiltonian)

    def test_built_circuit_gate_profile(self):
        graph = ring_graph(4)
        ansatz = QAOAAnsatz(maxcut_cost_hamiltonian(graph), depth=1)
        circuit = ansatz.build().bind_parameters([0.3, 0.7])
        counts = circuit.count_ops()
        assert counts["h"] == 4
        assert counts["cx"] == 8
        assert counts["rz"] == 4
        assert counts["rx"] == 4

    def test_macro_schedule_contains_cost_clusters(self):
        graph = ring_graph(4)
        ansatz = QAOAAnsatz(maxcut_cost_hamiltonian(graph), depth=1)
        schedule = ansatz.macro_schedule()
        clusters = [op for op in schedule if op.kind == "cnot_cluster"]
        assert len(clusters) == graph.number_of_edges()

    def test_uniform_superposition_energy_at_zero_parameters(self):
        """At γ=β=0 the state is |+⟩^n, whose cut expectation is half the edges."""
        graph = ring_graph(6)
        hamiltonian = maxcut_cost_hamiltonian(graph)
        ansatz = QAOAAnsatz(hamiltonian, depth=1)
        circuit = ansatz.build().bind_parameters([0.0, 0.0])
        energy = StatevectorSimulator().expectation(circuit, hamiltonian)
        assert energy == pytest.approx(-0.5 * graph.number_of_edges(), abs=1e-9)


class TestQAOA:
    def test_qaoa_improves_over_random_guess_on_ring(self):
        graph = ring_graph(6)
        qaoa = QAOA(graph, depth=2, optimizer=CobylaOptimizer(max_iterations=150))
        result = qaoa.run(seed=3)
        # Depth-2 QAOA on an even ring should find a near-maximal cut.
        assert result.best_cut >= 4.0
        assert result.optimal_cut == 6.0
        assert result.approximation_ratio >= 4.0 / 6.0

    def test_qaoa_energy_bounded_below_by_ground_state(self):
        graph = ring_graph(4)
        qaoa = QAOA(graph, depth=1, optimizer=CobylaOptimizer(max_iterations=60))
        result = qaoa.run(seed=1)
        assert result.best_energy >= qaoa.hamiltonian.ground_state_energy() - 1e-9

    def test_most_probable_bitstring_is_valid(self):
        graph = ring_graph(4)
        qaoa = QAOA(graph, depth=1)
        bits = qaoa.most_probable_bitstring([0.4, 0.3])
        assert len(bits) == 4
        assert set(bits) <= {0, 1}

    def test_cut_of_reported_bitstring_matches_best_cut(self):
        graph = ring_graph(6)
        qaoa = QAOA(graph, depth=1, optimizer=CobylaOptimizer(max_iterations=80))
        result = qaoa.run(seed=5)
        assert cut_value(graph, result.best_bitstring) == result.best_cut

    def test_noisy_evaluator_can_be_injected(self):
        """QAOA accepts the density-matrix evaluator used for regime studies."""
        graph = ring_graph(4)
        hamiltonian = maxcut_cost_hamiltonian(graph)
        evaluator = BackendEnergyEvaluator.density_matrix(hamiltonian,
                                                 NISQRegime().noise_model())
        qaoa = QAOA(graph, depth=1, evaluator=evaluator,
                    optimizer=CobylaOptimizer(max_iterations=30))
        result = qaoa.run(seed=2)
        assert result.best_energy >= hamiltonian.ground_state_energy() - 1e-9
        assert evaluator.num_evaluations > 0


# ---------------------------------------------------------------------------
# VQD
# ---------------------------------------------------------------------------

class TestVQD:
    def test_input_validation(self):
        hamiltonian = ising_hamiltonian(4)
        with pytest.raises(ValueError):
            VQD(hamiltonian, FullyConnectedAnsatz(4, 1), num_states=0)
        with pytest.raises(ValueError):
            VQD(ising_hamiltonian(4), FullyConnectedAnsatz(6, 1))

    def test_ground_state_matches_vqe_quality(self):
        hamiltonian = ising_hamiltonian(4, coupling=1.0)
        vqd = VQD(hamiltonian, FullyConnectedAnsatz(4, 2), num_states=1,
                  optimizer_factory=lambda: CobylaOptimizer(max_iterations=300))
        result = vqd.run(seed=2)
        exact = hamiltonian.ground_state_energy()
        assert result.energies[0] == pytest.approx(exact, abs=0.3)

    def test_excited_states_are_ordered_and_separated(self):
        hamiltonian = ising_hamiltonian(4, coupling=0.5)
        vqd = VQD(hamiltonian, FullyConnectedAnsatz(4, 2), num_states=2,
                  optimizer_factory=lambda: CobylaOptimizer(max_iterations=300))
        result = vqd.run(seed=4)
        assert result.num_states == 2
        # Deflation must keep level 1 at or above level 0.
        assert result.energies[1] >= result.energies[0] - 0.1
        # Both levels respect the variational principle for their index.
        assert result.energies[0] >= result.reference_energies[0] - 1e-6

    def test_reference_spectrum_is_exact_eigenvalues(self):
        hamiltonian = ising_hamiltonian(4)
        vqd = VQD(hamiltonian, FullyConnectedAnsatz(4, 1), num_states=3)
        eigenvalues = np.sort(np.linalg.eigvalsh(hamiltonian.to_matrix()))
        assert vqd.reference_energies == pytest.approx(list(eigenvalues[:3]))

    def test_gaps_relative_to_ground(self):
        hamiltonian = ising_hamiltonian(4)
        vqd = VQD(hamiltonian, FullyConnectedAnsatz(4, 1), num_states=2,
                  optimizer_factory=lambda: CobylaOptimizer(max_iterations=120))
        result = vqd.run(seed=0)
        assert result.gaps[0] == 0.0
        assert result.errors() is not None


# ---------------------------------------------------------------------------
# Variational classifier
# ---------------------------------------------------------------------------

class TestDatasets:
    def test_blobs_shape_and_labels(self):
        dataset = make_blobs_dataset(num_samples=30, num_features=3)
        assert dataset.features.shape == (30, 3)
        assert set(np.unique(dataset.labels)) == {-1, 1}

    def test_circles_not_linearly_separable_structure(self):
        dataset = make_circles_dataset(num_samples=24)
        radii = np.linalg.norm(dataset.features, axis=1)
        inner_mean = radii[dataset.labels == 1].mean()
        outer_mean = radii[dataset.labels == -1].mean()
        assert inner_mean < outer_mean

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            ClassificationDataset("bad", np.zeros((3, 2)), np.array([0, 1, 1]))
        with pytest.raises(ValueError):
            ClassificationDataset("bad", np.zeros(3), np.array([1, -1, 1]))
        with pytest.raises(ValueError):
            make_blobs_dataset(num_samples=2)

    def test_split_is_disjoint_and_complete(self):
        dataset = make_blobs_dataset(num_samples=20)
        train, test = dataset.split(train_fraction=0.7, seed=1)
        assert train.num_samples + test.num_samples == 20
        with pytest.raises(ValueError):
            dataset.split(train_fraction=1.5)


class TestVariationalClassifier:
    def test_parameter_count(self):
        classifier = VariationalClassifier(num_qubits=3, num_layers=2)
        assert classifier.num_parameters() == 12

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            VariationalClassifier(num_qubits=1)
        with pytest.raises(ValueError):
            VariationalClassifier(num_qubits=2, num_layers=0)

    def test_decision_function_bounded(self):
        classifier = VariationalClassifier(num_qubits=2, num_layers=1)
        rng = np.random.default_rng(0)
        for _ in range(5):
            score = classifier.decision_function(rng.normal(size=2),
                                                 rng.normal(size=4))
            assert -1.0 - 1e-9 <= score <= 1.0 + 1e-9

    def test_variational_block_parameter_validation(self):
        classifier = VariationalClassifier(num_qubits=2, num_layers=1)
        with pytest.raises(ValueError):
            classifier.variational_block([0.1, 0.2])

    def test_training_reduces_loss_and_learns_blobs(self):
        dataset = make_blobs_dataset(num_samples=16, num_features=2, seed=3)
        classifier = VariationalClassifier(num_qubits=2, num_layers=2)
        initial_loss = classifier.loss(classifier.parameters, dataset)
        final_loss = classifier.fit(dataset,
                                    optimizer=CobylaOptimizer(max_iterations=120),
                                    seed=1)
        assert final_loss <= initial_loss + 1e-9
        assert classifier.accuracy(dataset) >= 0.75

    def test_noisy_inference_runs(self):
        dataset = make_blobs_dataset(num_samples=6, num_features=2, seed=5)
        classifier = VariationalClassifier(num_qubits=2, num_layers=1,
                                           noise_model=NISQRegime().noise_model())
        predictions = classifier.predict(dataset.features)
        assert predictions.shape == (6,)
        assert set(np.unique(predictions)) <= {-1, 1}
