"""Process-sharded execution: planner policy, determinism, picklability.

The PR-4 determinism satellite: every execution surface must produce the
same results for ``max_workers`` in {1, 2, 4} and for the thread, process
and inline paths (within 1e-12 — Monte-Carlo ensembles are in fact bitwise
identical thanks to per-trajectory ``SeedSequence.spawn`` seeding), plus
unit coverage of the :class:`~repro.execution.sharding.ShardPlanner`
capability-hint policy, the ``REPRO_WORKERS`` override, and backend/task
picklability (the process-pool transport contract).
"""

import pickle

import numpy as np
import pytest

from repro.ansatz import FullyConnectedAnsatz
from repro.circuits.circuit import QuantumCircuit
from repro.execution import (Backend, BackendCapabilities, ExecutionTask,
                             Executor, ShardPlanner, StabilizerBackend,
                             StatevectorBackend, execute, get_backend)
from repro.execution.sharding import (resolve_workers, split_evenly,
                                      _PROCESS_TASK_THRESHOLD)
from repro.operators import ising_hamiltonian
from repro.simulators.noise import NoiseModel, depolarizing_channel


def cx_noise():
    return NoiseModel().add_gate_error(depolarizing_channel(0.05, 2),
                                       ["cx", "cnot"]).add_readout_error(0.02)


def clifford_circuit(num_qubits, flips=()):
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    for q in flips:
        qc.x(q)
    return qc


class TestShardPlanner:
    def test_process_backends_run_inline_below_threshold(self):
        # The thread-overhead fix: small dense batches spin up NO pool.
        plan = ShardPlanner().plan(_PROCESS_TASK_THRESHOLD - 1,
                                   hints=("process",))
        assert plan.mode == "none"

    def test_process_backends_shard_at_threshold(self):
        plan = ShardPlanner(max_workers=4).plan(_PROCESS_TASK_THRESHOLD,
                                                hints=("process",))
        assert plan.mode == "process"
        assert plan.workers == 4

    def test_trajectory_ensembles_trigger_process_mode(self):
        plan = ShardPlanner(max_workers=4).plan(1, hints=("process",),
                                                trajectories=200)
        assert plan.mode == "process"

    def test_thread_hint_keeps_thread_pool(self):
        plan = ShardPlanner(max_workers=4).plan(8, hints=("thread",))
        assert plan.mode == "thread"

    def test_mixed_hints_fall_back_to_threads(self):
        plan = ShardPlanner(max_workers=4).plan(64,
                                                hints=("process", "thread"))
        assert plan.mode == "thread"

    def test_inline_hint_forces_inline(self):
        plan = ShardPlanner(max_workers=4).plan(64, hints=("inline",))
        assert plan.mode == "none"

    def test_explicit_modes_override_hints(self):
        assert ShardPlanner(max_workers=4).plan(
            4, hints=("process",), parallel="process").mode == "process"
        assert ShardPlanner(max_workers=4).plan(
            64, hints=("process",), parallel="thread").mode == "thread"
        assert ShardPlanner(max_workers=4).plan(
            64, hints=("process",), parallel="none").mode == "none"

    def test_single_item_never_parallel(self):
        plan = ShardPlanner(max_workers=4).plan(1, hints=("process",),
                                                parallel="process")
        assert plan.mode == "none"

    def test_one_worker_never_parallel(self):
        plan = ShardPlanner(max_workers=1).plan(64, hints=("process",),
                                                parallel="process")
        assert plan.mode == "none"

    def test_invalid_mode_rejected(self):
        from repro.execution import ExecutionError
        with pytest.raises(ExecutionError):
            ShardPlanner(parallel="fork-bomb")

    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(5) == 5  # explicit argument wins
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) >= 1

    def test_split_evenly(self):
        assert split_evenly(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert split_evenly([1], 4) == [[1]]
        assert sum(split_evenly(list(range(100)), 8), []) == list(range(100))


class TestPicklability:
    def test_backends_pickle(self):
        for name in ("statevector", "density_matrix", "stabilizer",
                     "pauli_propagation"):
            backend = get_backend(name)
            clone = pickle.loads(pickle.dumps(backend))
            assert clone.name == backend.name

    def test_seeded_backend_pickle_keeps_seed(self):
        clone = pickle.loads(pickle.dumps(StabilizerBackend(seed=13)))
        assert clone._seed == 13

    def test_parametric_template_task_roundtrip(self):
        template = FullyConnectedAnsatz(3, depth=1).build()
        clone = pickle.loads(pickle.dumps(template))
        theta = [0.1] * len(template.ordered_parameters())
        assert clone.bind_parameters(theta).fingerprint() \
            == template.bind_parameters(theta).fingerprint()

    def test_noisy_task_roundtrip(self):
        task = ExecutionTask(clifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0),
                             noise_model=cx_noise(), trajectories=10)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.cache_key("stabilizer") == task.cache_key("stabilizer")


class TestDeterminismAcrossWorkersAndModes:
    """Same results for max_workers in {1, 2, 4} and all dispatch paths."""

    def setup_method(self):
        self.hamiltonian = ising_hamiltonian(5, 1.0)
        self.noise = cx_noise()
        self.circuit = clifford_circuit(5)

    def _monte_carlo(self, parallel, max_workers):
        executor = Executor(use_cache=False)
        return executor.evaluate_observable(
            self.circuit, self.hamiltonian, noise_model=self.noise,
            backend=StabilizerBackend(seed=42), trajectories=48,
            parallel=parallel, max_workers=max_workers)[0]

    def test_monte_carlo_bitwise_identical_across_worker_counts(self):
        values = [self._monte_carlo("process", w) for w in (1, 2, 4)]
        assert values[0] == values[1] == values[2]

    def test_monte_carlo_bitwise_identical_across_modes(self):
        inline = self._monte_carlo("none", 1)
        threaded = self._monte_carlo("thread", 4)
        process = self._monte_carlo("process", 4)
        assert inline == threaded == process

    def test_execute_batch_matches_across_modes(self):
        tasks = [ExecutionTask(clifford_circuit(5, flips=(i % 5,)),
                               observable=self.hamiltonian)
                 for i in range(20)]
        reference = [r.value for r in
                     Executor(use_cache=False).run(
                         tasks, backend="statevector", parallel="none")]
        for parallel, workers in (("thread", 4), ("process", 2),
                                  ("process", 4)):
            values = [r.value for r in
                      Executor(use_cache=False).run(
                          tasks, backend="statevector", parallel=parallel,
                          max_workers=workers)]
            assert np.allclose(values, reference, atol=1e-12)

    def test_grouped_observable_matches_across_modes(self):
        circuits = [clifford_circuit(5, flips=(i % 5,)) for i in range(20)]
        reference = Executor(use_cache=False).evaluate_observable(
            circuits, self.hamiltonian, backend="statevector",
            parallel="none")
        for parallel, workers in (("thread", 4), ("process", 2),
                                  ("process", 4)):
            values = Executor(use_cache=False).evaluate_observable(
                circuits, self.hamiltonian, backend="statevector",
                parallel=parallel, max_workers=workers)
            assert np.allclose(values, reference, atol=1e-12)

    def test_sweep_matches_across_modes(self):
        template = FullyConnectedAnsatz(5, depth=1).build()
        rng = np.random.default_rng(7)
        points = rng.standard_normal(
            (24, len(template.ordered_parameters()))).tolist()
        reference = Executor(use_cache=False).evaluate_sweep(
            template, points, self.hamiltonian, backend="statevector",
            parallel="none")
        for workers in (2, 4):
            values = Executor(use_cache=False).evaluate_sweep(
                template, points, self.hamiltonian, backend="statevector",
                parallel="process", max_workers=workers)
            assert np.allclose(values, reference, atol=1e-12)

    def test_noisy_pauli_propagation_matches_across_modes(self):
        circuits = [clifford_circuit(5, flips=(i % 5,)) for i in range(20)]
        reference = Executor(use_cache=False).evaluate_observable(
            circuits, self.hamiltonian, noise_model=self.noise,
            backend="pauli_propagation", parallel="none")
        values = Executor(use_cache=False).evaluate_observable(
            circuits, self.hamiltonian, noise_model=self.noise,
            backend="pauli_propagation", parallel="process", max_workers=4)
        assert np.allclose(values, reference, atol=1e-12)


class TestProcessDispatchBehaviour:
    def test_process_shards_are_counted(self):
        executor = Executor(use_cache=False)
        circuits = [clifford_circuit(4, flips=(i % 4,)) for i in range(8)]
        executor.evaluate_observable(circuits, ising_hamiltonian(4, 1.0),
                                     backend="statevector",
                                     parallel="process", max_workers=2)
        assert executor.stats.process_shards >= 2
        assert executor.stats.simulator_invocations == 4  # unique circuits

    def test_auto_mode_runs_small_dense_batches_inline(self):
        executor = Executor(use_cache=False)
        tasks = [ExecutionTask(clifford_circuit(3, flips=(i % 3,)),
                               observable=ising_hamiltonian(3, 1.0))
                 for i in range(4)]
        executor.run(tasks, backend="statevector")
        assert executor.stats.process_shards == 0

    def test_process_dispatch_counts_backend_invocations(self):
        # Workers bump pickled backend copies; the parent must restore the
        # caller-side counter so monitoring code sees the same numbers as
        # under inline/thread dispatch.
        backend = StatevectorBackend()
        tasks = [ExecutionTask(clifford_circuit(6, flips=(i,)),
                               observable=ising_hamiltonian(6, 1.0))
                 for i in range(6)]
        Executor(use_cache=False).run(tasks, backend=backend,
                                      parallel="process", max_workers=2)
        assert backend.invocations == 6

    def test_results_keep_caller_task_objects(self):
        task = ExecutionTask(clifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0))
        other = ExecutionTask(clifford_circuit(3, flips=(0,)),
                              observable=ising_hamiltonian(3, 1.0))
        results = Executor(use_cache=False).run(
            [task, other], backend="statevector", parallel="process",
            max_workers=2)
        assert results[0].task is task  # not a pickled copy
        assert results[1].task is other

    def test_sampling_tasks_ride_process_shards(self):
        tasks = [ExecutionTask(clifford_circuit(3), shots=64)
                 for _ in range(4)]
        results = execute(tasks, backend="statevector", parallel="process",
                          max_workers=2)
        for result in results:
            assert sum(result.counts.values()) == 64

    def test_custom_thread_backend_still_works(self):
        class CountingBackend(Backend):
            def capabilities(self):
                return BackendCapabilities(name="counting",
                                           supports_noise=False)

            def _run_task(self, task):
                return 1.0

        backend = CountingBackend()
        results = Executor(use_cache=False).run(
            [ExecutionTask(clifford_circuit(6, flips=(i,)),
                           observable=ising_hamiltonian(6, 1.0))
             for i in range(6)], backend=backend)
        assert [r.value for r in results] == [1.0] * 6
        assert backend.invocations == 6

    def test_seeded_statevector_backend_unaffected_by_sharding(self):
        # Sampling seeds derive from (seed, task fingerprint), so process
        # sharding cannot change drawn shots either.
        tasks = [ExecutionTask(clifford_circuit(4, flips=(i % 4,)), shots=32)
                 for i in range(6)]
        inline = Executor(use_cache=False).run(
            tasks, backend=StatevectorBackend(seed=5), parallel="none")
        sharded = Executor(use_cache=False).run(
            tasks, backend=StatevectorBackend(seed=5), parallel="process",
            max_workers=3)
        assert [r.counts for r in inline] == [r.counts for r in sharded]
