"""Tests for decoding graphs, decoders and surface-code memory experiments."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qec.decoders.graph import (repetition_code_graph,
                                      rotated_surface_code_graph,
                                      rotated_surface_code_stabilizers)
from repro.qec.decoders.lookup import LookupDecoder, syndrome_of_edges
from repro.qec.decoders.mwpm import MWPMDecoder
from repro.qec.decoders.predecoder import CliquePredecoder
from repro.qec.decoders.union_find import UnionFindDecoder
from repro.qec.surface_memory import (SurfaceCodeMemory, decoder_comparison,
                                      logical_error_rate_curve,
                                      repetition_code_memory_experiment,
                                      surface_code_memory_experiment)


# ---------------------------------------------------------------------------
# Decoding graphs
# ---------------------------------------------------------------------------

class TestRepetitionCodeGraph:
    def test_detector_count(self):
        graph = repetition_code_graph(5, rounds=3, data_error_rate=1e-3)
        # (d − 1) stabilizers × (rounds + 1 perfect round)
        assert len(graph.detectors) == 4 * 4

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            repetition_code_graph(4, 3, 1e-3)
        with pytest.raises(ValueError):
            repetition_code_graph(1, 3, 1e-3)
        with pytest.raises(ValueError):
            repetition_code_graph(5, 0, 1e-3)

    def test_every_data_qubit_has_space_edges_each_round(self):
        distance, rounds = 5, 2
        graph = repetition_code_graph(distance, rounds, 1e-3)
        space = [edge for edge in graph.edges if edge.kind in ("space", "boundary")]
        assert len(space) == distance * (rounds + 1)

    def test_boundary_edges_at_chain_ends(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        boundary_qubits = {edge.data_qubit for edge in graph.edges
                           if edge.kind == "boundary"}
        assert boundary_qubits == {0, 2}

    def test_edge_weight_monotonic_in_probability(self):
        low = repetition_code_graph(3, 1, 1e-4)
        high = repetition_code_graph(3, 1, 1e-2)
        low_weight = low.space_edges()[0].weight
        high_weight = high.space_edges()[0].weight
        assert low_weight > high_weight

    def test_logical_support_is_single_qubit(self):
        graph = repetition_code_graph(5, 1, 1e-3)
        assert graph.logical_support == frozenset({0})


class TestRotatedSurfaceCodeGraph:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_stabilizer_count(self, distance):
        supports, _ = rotated_surface_code_stabilizers(distance)
        assert len(supports) == (distance ** 2 - 1) // 2

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_every_data_qubit_in_one_or_two_stabilizers(self, distance):
        supports, _ = rotated_surface_code_stabilizers(distance)
        membership = {qubit: 0 for qubit in range(distance ** 2)}
        for support in supports:
            for qubit in support:
                membership[qubit] += 1
        assert set(membership.values()) <= {1, 2}
        # Exactly the top and bottom rows touch a single Z stabilizer.
        single = {qubit for qubit, count in membership.items() if count == 1}
        expected = ({qubit for qubit in range(distance)}
                    | {qubit for qubit in range(distance * (distance - 1),
                                                distance ** 2)})
        assert single == expected

    @pytest.mark.parametrize("distance", [3, 5])
    def test_logical_support_crosses_the_lattice(self, distance):
        _, logical = rotated_surface_code_stabilizers(distance)
        assert len(logical) == distance

    @pytest.mark.parametrize("distance", [3, 5])
    def test_logical_x_columns_are_undetected_and_cross_logical_z(self, distance):
        """An X error on a full column is syndrome-free (every Z stabilizer
        overlaps it on an even number of qubits) and anticommutes with the
        logical-Z row — i.e. it is a logical X operator."""
        supports, logical = rotated_surface_code_stabilizers(distance)
        logical_set = set(logical)
        for column in range(distance):
            column_qubits = {row * distance + column for row in range(distance)}
            for support in supports:
                assert len(set(support) & column_qubits) % 2 == 0
            assert len(column_qubits & logical_set) % 2 == 1

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            rotated_surface_code_stabilizers(4)

    def test_graph_detector_count(self):
        distance, rounds = 3, 2
        graph = rotated_surface_code_graph(distance, rounds, 1e-3)
        assert len(graph.detectors) == 4 * (rounds + 1)

    def test_time_edges_connect_consecutive_rounds(self):
        graph = rotated_surface_code_graph(3, 2, 1e-3)
        time_edges = [edge for edge in graph.edges if edge.kind == "time"]
        assert len(time_edges) == 4 * 2
        for edge in time_edges:
            (stab_a, round_a), (stab_b, round_b) = edge.node_a, edge.node_b
            assert stab_a == stab_b
            assert abs(round_a - round_b) == 1


# ---------------------------------------------------------------------------
# Decoder correctness
# ---------------------------------------------------------------------------

def _decoder_factories():
    return {
        "mwpm": MWPMDecoder,
        "union_find": UnionFindDecoder,
        "lookup": lambda graph: LookupDecoder(graph, max_error_weight=2),
        "clique+mwpm": CliquePredecoder,
    }


def _syndrome_matches(graph, correction, defects):
    """The correction must reproduce exactly the observed defect set."""
    return syndrome_of_edges(correction) == frozenset(defects)


@pytest.mark.parametrize("decoder_name,factory", sorted(_decoder_factories().items()))
class TestDecoderContracts:
    def test_empty_syndrome_gives_empty_correction(self, decoder_name, factory):
        graph = rotated_surface_code_graph(3, 1, 1e-3)
        outcome = factory(graph).decode([])
        assert outcome.correction == []
        assert not outcome.flips_logical

    def test_unknown_detector_rejected(self, decoder_name, factory):
        graph = rotated_surface_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError):
            factory(graph).decode([(99, 99)])

    def test_single_error_corrections_are_valid_and_harmless(self, decoder_name,
                                                             factory):
        """Decoding the syndrome of any single elementary error must produce a
        correction with the same syndrome and no net logical flip."""
        graph = rotated_surface_code_graph(3, 2, 1e-3)
        decoder = factory(graph)
        for error_edge in graph.edges:
            defects = list(syndrome_of_edges([error_edge]))
            outcome = decoder.decode(defects)
            assert _syndrome_matches(graph, outcome.correction, defects), \
                f"{decoder_name} produced an inconsistent correction"
            assert outcome.flips_logical == error_edge.flips_logical, \
                f"{decoder_name} mis-corrected a single {error_edge.kind} error"

    def test_repetition_code_single_errors(self, decoder_name, factory):
        graph = repetition_code_graph(5, 2, 1e-3)
        decoder = factory(graph)
        for error_edge in graph.space_edges()[:10]:
            defects = list(syndrome_of_edges([error_edge]))
            outcome = decoder.decode(defects)
            assert _syndrome_matches(graph, outcome.correction, defects)
            assert outcome.flips_logical == error_edge.flips_logical


class TestMWPMSpecifics:
    def test_two_adjacent_errors_matched_cheaply(self):
        graph = repetition_code_graph(5, 1, 1e-3)
        decoder = MWPMDecoder(graph)
        # Two data errors on qubits 1 and 2 in round 0 leave defects on
        # checks 0 and 2 (the middle check is hit twice).
        edges = [edge for edge in graph.space_edges()
                 if edge.round_index == 0 and edge.data_qubit in (1, 2)]
        defects = list(syndrome_of_edges(edges))
        outcome = decoder.decode(defects)
        assert _syndrome_matches(graph, outcome.correction, defects)
        assert not outcome.flips_logical

    def test_weight_reflects_path_length(self):
        graph = repetition_code_graph(5, 1, 1e-3)
        decoder = MWPMDecoder(graph)
        single = decoder.decode([(0, 0), (1, 0)])
        double = decoder.decode([(0, 0), (3, 0)])
        assert double.total_weight > single.total_weight

    def test_duplicate_defects_deduplicated(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        decoder = MWPMDecoder(graph)
        outcome = decoder.decode([(0, 0), (0, 0), (1, 0)])
        assert _syndrome_matches(graph, outcome.correction, {(0, 0), (1, 0)})


class TestLookupDecoder:
    def test_table_contains_trivial_syndrome(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        decoder = LookupDecoder(graph, max_error_weight=1)
        assert decoder.table_size >= 1 + len(graph.edges) - 1

    def test_invalid_weight(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError):
            LookupDecoder(graph, max_error_weight=0)

    def test_fallback_used_for_heavy_syndromes(self):
        graph = repetition_code_graph(5, 2, 2e-2)
        decoder = LookupDecoder(graph, max_error_weight=1)
        # A three-error syndrome is outside a weight-1 table.
        edges = [edge for edge in graph.space_edges()
                 if edge.round_index == 0 and edge.data_qubit in (0, 2, 4)]
        defects = list(syndrome_of_edges(edges))
        outcome = decoder.decode(defects)
        assert decoder.fallback_count >= 1
        assert _syndrome_matches(graph, outcome.correction, defects)


class TestCliquePredecoder:
    def test_offload_fraction_tracks_isolated_pairs(self):
        graph = repetition_code_graph(7, 1, 1e-3)
        predecoder = CliquePredecoder(graph)
        # A single data error in the bulk creates one isolated adjacent pair.
        bulk_edge = next(edge for edge in graph.space_edges()
                         if edge.kind == "space" and edge.round_index == 0)
        defects = list(syndrome_of_edges([bulk_edge]))
        outcome = predecoder.decode(defects)
        assert _syndrome_matches(graph, outcome.correction, defects)
        assert predecoder.predecoded_defects == 2
        assert predecoder.offload_fraction == 1.0

    def test_hard_syndrome_forwarded_to_backing_decoder(self):
        graph = repetition_code_graph(7, 1, 1e-3)
        predecoder = CliquePredecoder(graph)
        # Errors on adjacent qubits produce defects two checks apart — not an
        # adjacent pair, so they must be forwarded.
        edges = [edge for edge in graph.space_edges()
                 if edge.round_index == 0 and edge.data_qubit in (2, 3)]
        defects = list(syndrome_of_edges(edges))
        outcome = predecoder.decode(defects)
        assert _syndrome_matches(graph, outcome.correction, defects)
        assert predecoder.forwarded_defects >= 1


# ---------------------------------------------------------------------------
# Memory experiments
# ---------------------------------------------------------------------------

class TestSurfaceCodeMemory:
    def test_zero_noise_never_fails(self):
        outcome = surface_code_memory_experiment(3, 1e-9, rounds=1, shots=50)
        assert outcome.logical_error_rate == 0.0

    def test_extreme_noise_often_fails(self):
        outcome = surface_code_memory_experiment(3, 0.4, rounds=2, shots=80,
                                                 seed=5)
        assert outcome.logical_error_rate > 0.1

    def test_logical_rate_decreases_with_distance_below_threshold(self):
        p = 0.01
        small = surface_code_memory_experiment(3, p, rounds=3, shots=300, seed=1)
        large = surface_code_memory_experiment(5, p, rounds=5, shots=300, seed=1)
        assert large.logical_error_rate <= small.logical_error_rate + 0.02

    def test_shots_validation(self):
        graph = rotated_surface_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError):
            SurfaceCodeMemory(graph).run(0)

    def test_per_round_rate_below_total(self):
        outcome = surface_code_memory_experiment(3, 0.05, rounds=3, shots=200,
                                                 seed=2)
        assert outcome.logical_error_per_round <= outcome.logical_error_rate + 1e-12

    def test_repetition_code_experiment_runs(self):
        outcome = repetition_code_memory_experiment(5, 0.02, shots=200, seed=4)
        assert 0.0 <= outcome.logical_error_rate <= 1.0
        assert outcome.code == "repetition"

    def test_decoder_comparison_runs_all_decoders(self):
        results = decoder_comparison(3, 0.02, _decoder_factories(), shots=60,
                                     code="repetition")
        assert set(results) == set(_decoder_factories())
        for outcome in results.values():
            assert 0.0 <= outcome.logical_error_rate <= 0.6

    def test_union_find_close_to_mwpm_at_low_noise(self):
        results = decoder_comparison(3, 0.01,
                                     {"mwpm": MWPMDecoder,
                                      "union_find": UnionFindDecoder},
                                     shots=300, code="repetition", seed=9)
        assert (results["union_find"].logical_error_rate
                <= results["mwpm"].logical_error_rate + 0.08)

    def test_logical_error_rate_curve_shape(self):
        curve = logical_error_rate_curve([3], [1e-3, 5e-2], shots=120,
                                         code="repetition")
        assert curve[(3, 1e-3)] <= curve[(3, 5e-2)] + 0.02


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_mwpm_corrections_always_match_syndrome(seed):
    """For random multi-error samples the MWPM correction must always
    reproduce the observed syndrome exactly."""
    graph = rotated_surface_code_graph(3, 2, 0.05)
    rng = np.random.default_rng(seed)
    edges = [edge for edge in graph.edges if rng.random() < 0.08]
    defects = list(syndrome_of_edges(edges))
    outcome = MWPMDecoder(graph).decode(defects)
    assert syndrome_of_edges(outcome.correction) == frozenset(defects)
