"""Shared pytest configuration: hypothesis profiles for the property suite.

Health-check suppression and deadline policy live here — centralized so
individual property tests never carry ad-hoc ``@settings`` overrides that
drift apart:

* ``dev`` (default): few examples, fast feedback while editing.  Deadlines
  are disabled because shared CI runners and first-call numpy warm-up make
  per-example wall-clock flaky.
* ``ci``: ≥200 examples per contract and ``derandomize=True`` so CI runs
  are reproducible (no fuzzing randomness in the pass/fail signal) while
  still exploring the strategy space deterministically.

Select with ``--hypothesis-profile=ci`` (hypothesis's built-in option).
"""

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is pinned in requirements
    settings = None

if settings is not None:
    _SUPPRESSED = [HealthCheck.too_slow, HealthCheck.data_too_large,
                   HealthCheck.filter_too_much]
    settings.register_profile(
        "dev",
        max_examples=25,
        deadline=None,
        suppress_health_check=_SUPPRESSED,
    )
    settings.register_profile(
        "ci",
        max_examples=200,
        deadline=None,
        derandomize=True,
        print_blob=True,
        suppress_health_check=_SUPPRESSED,
    )
    settings.load_profile("dev")
