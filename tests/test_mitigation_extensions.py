"""Tests for DD, CAFQA, QISMET, Pauli twirling and readout-matrix mitigation."""

import math

import numpy as np
import pytest

from repro.ansatz import FullyConnectedAnsatz, LinearAnsatz
from repro.circuits.circuit import QuantumCircuit
from repro.mitigation.cafqa import (CAFQABootstrappedVQE, cafqa_initialization,
                                    compare_initializations)
from repro.mitigation.dynamical_decoupling import (DD_SEQUENCES,
                                                   DynamicalDecouplingSelector,
                                                   dd_pulse_count, idle_windows,
                                                   insert_dd_sequences,
                                                   schedule_with_idle_drift,
                                                   total_idle_slots)
from repro.mitigation.qismet import (QISMETController, TransientNoiseInjector)
from repro.mitigation.readout import QubitConfusion, ReadoutCalibrationMatrix
from repro.mitigation.twirling import (pauli_twirl_circuit,
                                       propagate_pauli_through_cnot,
                                       twirled_ensemble_expectation)
from repro.operators.hamiltonians import ising_hamiltonian
from repro.operators.pauli import PauliString, PauliSum
from repro.simulators.statevector import StatevectorSimulator, circuit_unitary
from repro.synthesis.verification import operator_distance
from repro.vqe.energy import BackendEnergyEvaluator
from repro.vqe.optimizers import CobylaOptimizer, GeneticOptimizer


# ---------------------------------------------------------------------------
# Dynamical decoupling
# ---------------------------------------------------------------------------

def _staircase_circuit(num_qubits: int = 3, steps: int = 4) -> QuantumCircuit:
    """A circuit where qubit 0 works while the others idle for several layers."""
    circuit = QuantumCircuit(num_qubits)
    circuit.h(1)
    for _ in range(steps):
        circuit.rz(0.3, 0)
        circuit.x(0)
    circuit.cx(1, 2)
    return circuit


class TestDynamicalDecoupling:
    def test_idle_windows_detects_idle_qubits(self):
        windows = idle_windows(_staircase_circuit())
        assert windows, "the staircase circuit has idle qubits"
        assert all(1 in idle or 2 in idle for _, idle in windows)

    def test_total_idle_slots_positive(self):
        assert total_idle_slots(_staircase_circuit()) > 0

    def test_unknown_sequence_rejected(self):
        with pytest.raises(ValueError):
            insert_dd_sequences(_staircase_circuit(), "cpmg99")

    def test_none_sequence_adds_nothing(self):
        circuit = _staircase_circuit()
        assert insert_dd_sequences(circuit, "none").size() == circuit.size()

    def test_xx_insertion_adds_even_pulse_count(self):
        circuit = _staircase_circuit()
        count = dd_pulse_count(circuit, "xx")
        assert count > 0 and count % 2 == 0
        decorated = insert_dd_sequences(circuit, "xx")
        assert decorated.size() == circuit.size() + count

    def test_xy4_pulse_count_is_multiple_of_four(self):
        count = dd_pulse_count(_staircase_circuit(steps=9), "xy4")
        assert count > 0 and count % 4 == 0

    @pytest.mark.parametrize("sequence", ["xx", "xy4"])
    def test_insertion_preserves_ideal_unitary(self, sequence):
        circuit = _staircase_circuit(steps=9)
        decorated = insert_dd_sequences(circuit, sequence)
        distance = operator_distance(circuit_unitary(decorated),
                                     circuit_unitary(circuit))
        assert distance < 1e-9

    def test_xx_echo_cancels_coherent_drift(self):
        """With drift on idle slots, the XX-protected circuit stays closer to
        the ideal expectation value than the unprotected one."""
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        circuit = _staircase_circuit(steps=8)
        simulator = StatevectorSimulator()
        ideal = simulator.expectation(circuit, hamiltonian)
        drifted_plain = simulator.expectation(
            schedule_with_idle_drift(circuit, 0.25, "none"), hamiltonian)
        drifted_dd = simulator.expectation(
            schedule_with_idle_drift(circuit, 0.25, "xx"), hamiltonian)
        assert abs(drifted_dd - ideal) <= abs(drifted_plain - ideal) + 1e-9

    def test_selector_prefers_a_protective_sequence_under_drift(self):
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        evaluator = BackendEnergyEvaluator.exact(hamiltonian)
        selector = DynamicalDecouplingSelector(evaluator, drift_angle=0.3)
        # Use a circuit whose unprotected drift raises the energy.
        circuit = _staircase_circuit(steps=8)
        result = selector.select(circuit)
        assert result.best_sequence in DD_SEQUENCES
        assert result.energies[result.best_sequence] <= result.energies["none"] + 1e-9
        assert result.improvement >= 0.0


# ---------------------------------------------------------------------------
# CAFQA
# ---------------------------------------------------------------------------

class TestCAFQA:
    def test_initialization_angles_are_clifford(self):
        hamiltonian = ising_hamiltonian(4, coupling=1.0)
        ansatz = FullyConnectedAnsatz(4, 1)
        init = cafqa_initialization(hamiltonian, ansatz,
                                    optimizer=GeneticOptimizer(
                                        population_size=12, generations=6, seed=1),
                                    seed=1)
        assert init.angles.shape == (ansatz.num_parameters(),)
        for angle in init.angles:
            assert math.isclose(angle % (math.pi / 2), 0.0, abs_tol=1e-9) or \
                math.isclose(angle % (math.pi / 2), math.pi / 2, abs_tol=1e-9)

    def test_clifford_energy_is_reachable_by_the_continuous_model(self):
        hamiltonian = ising_hamiltonian(4, coupling=1.0)
        ansatz = FullyConnectedAnsatz(4, 1)
        init = cafqa_initialization(hamiltonian, ansatz,
                                    optimizer=GeneticOptimizer(
                                        population_size=12, generations=6, seed=3),
                                    seed=3)
        evaluator = BackendEnergyEvaluator.exact(hamiltonian)
        circuit = ansatz.bound_circuit(init.angles)
        assert evaluator(circuit) == pytest.approx(init.clifford_energy, abs=1e-6)

    def test_bootstrapped_vqe_never_worse_than_its_start(self):
        hamiltonian = ising_hamiltonian(4, coupling=0.5)
        ansatz = FullyConnectedAnsatz(4, 1)
        bootstrapped = CAFQABootstrappedVQE(
            hamiltonian, ansatz,
            optimizer=CobylaOptimizer(max_iterations=80),
            clifford_optimizer=GeneticOptimizer(population_size=12,
                                                generations=6, seed=2),
            seed=2)
        result = bootstrapped.run()
        assert result.best_energy <= bootstrapped.initialization.clifford_energy + 1e-6

    def test_compare_initializations_reports_advantage(self):
        hamiltonian = ising_hamiltonian(4, coupling=1.0)
        ansatz = FullyConnectedAnsatz(4, 1)
        report = compare_initializations(
            hamiltonian, ansatz,
            evaluator_factory=lambda: BackendEnergyEvaluator.exact(hamiltonian),
            optimizer_factory=lambda: CobylaOptimizer(max_iterations=50),
            seed=5)
        assert set(report) == {"random", "cafqa", "advantage", "initialization"}
        assert report["cafqa"].best_energy <= report["random"].best_energy + 0.5


# ---------------------------------------------------------------------------
# QISMET
# ---------------------------------------------------------------------------

class TestQISMET:
    def _evaluator_pair(self, transient_probability=0.3, seed=7):
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        base = BackendEnergyEvaluator.exact(hamiltonian)
        injector = TransientNoiseInjector(base,
                                          transient_probability=transient_probability,
                                          transient_magnitude=5.0, seed=seed)
        return hamiltonian, injector

    def test_injector_adds_transients(self):
        hamiltonian, injector = self._evaluator_pair(transient_probability=1.0)
        circuit = LinearAnsatz(3, 1).bound_circuit(
            np.zeros(LinearAnsatz(3, 1).num_parameters()))
        clean = BackendEnergyEvaluator.exact(hamiltonian)(circuit)
        noisy = injector(circuit)
        assert noisy > clean + 1.0
        assert injector.transients_injected == 1

    def test_injector_probability_validation(self):
        hamiltonian = ising_hamiltonian(3)
        with pytest.raises(ValueError):
            TransientNoiseInjector(BackendEnergyEvaluator.exact(hamiltonian),
                                   transient_probability=1.5)

    def test_controller_parameter_validation(self):
        hamiltonian = ising_hamiltonian(3)
        base = BackendEnergyEvaluator.exact(hamiltonian)
        with pytest.raises(ValueError):
            QISMETController(base, threshold=0.0)
        with pytest.raises(ValueError):
            QISMETController(base, window=0)
        with pytest.raises(ValueError):
            QISMETController(base, max_retries=0)

    def test_controller_flags_and_retries_transients(self):
        _, injector = self._evaluator_pair(transient_probability=0.5, seed=3)
        controller = QISMETController(injector, threshold=1.0, max_retries=3)
        ansatz = LinearAnsatz(3, 1)
        circuit = ansatz.bound_circuit(np.zeros(ansatz.num_parameters()))
        for _ in range(20):
            controller(circuit)
        assert controller.statistics.flagged > 0
        assert controller.statistics.retries >= controller.statistics.flagged

    def test_controller_filters_transients_from_the_accepted_stream(self):
        """The values the controller hands to the optimizer track the true
        energy far better than the raw transient-corrupted stream."""
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        ansatz = LinearAnsatz(3, 1)
        circuit = ansatz.bound_circuit(0.1 * np.ones(ansatz.num_parameters()))
        true_energy = BackendEnergyEvaluator.exact(hamiltonian)(circuit)
        calls = 40

        def observed_mean(with_controller: bool, seed: int = 11) -> float:
            base = BackendEnergyEvaluator.exact(hamiltonian)
            injector = TransientNoiseInjector(base, transient_probability=0.35,
                                              transient_magnitude=6.0, seed=seed)
            evaluator = (QISMETController(injector, threshold=0.5, max_retries=3)
                         if with_controller else injector)
            values = [evaluator(circuit) for _ in range(calls)]
            return float(np.mean(values))

        raw_bias = abs(observed_mean(False) - true_energy)
        filtered_bias = abs(observed_mean(True) - true_energy)
        assert raw_bias > 0.5          # transients visibly corrupt the stream
        assert filtered_bias < 0.5 * raw_bias


# ---------------------------------------------------------------------------
# Pauli twirling
# ---------------------------------------------------------------------------

class TestTwirling:
    def test_propagation_table_is_consistent_with_matrices(self):
        """CX·(P_c⊗P_t) and (P'_c⊗P'_t)·CX must agree up to a global phase."""
        from repro.synthesis.verification import gate_matrix
        # Control on qubit 0 (the least-significant bit), target on qubit 1.
        cx = np.array([[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]],
                      dtype=complex)
        paulis = {"i": np.eye(2), "x": gate_matrix("x"), "y": gate_matrix("y"),
                  "z": gate_matrix("z")}
        for control in paulis:
            for target in paulis:
                after_c, after_t = propagate_pauli_through_cnot(control, target)
                # Qubit 0 = control is the least-significant factor.
                before_matrix = np.kron(paulis[target], paulis[control])
                after_matrix = np.kron(paulis[after_t], paulis[after_c])
                assert operator_distance(cx @ before_matrix,
                                         after_matrix @ cx) < 1e-12

    def test_twirled_circuit_preserves_unitary(self):
        ansatz = FullyConnectedAnsatz(3, 1)
        circuit = ansatz.bound_circuit(0.3 * np.arange(ansatz.num_parameters()))
        for seed in range(4):
            twirled = pauli_twirl_circuit(circuit, seed=seed)
            assert operator_distance(circuit_unitary(twirled),
                                     circuit_unitary(circuit)) < 1e-9

    def test_twirling_adds_only_single_qubit_paulis(self):
        ansatz = LinearAnsatz(3, 1)
        circuit = ansatz.bound_circuit(np.zeros(ansatz.num_parameters()))
        twirled = pauli_twirl_circuit(circuit, seed=1)
        original_counts = circuit.count_ops()
        twirled_counts = twirled.count_ops()
        assert twirled_counts.get("cx", 0) == original_counts.get("cx", 0)
        extra = twirled.size() - circuit.size()
        assert extra >= 0

    def test_ensemble_expectation_matches_ideal_without_noise(self):
        hamiltonian = ising_hamiltonian(3)
        ansatz = LinearAnsatz(3, 1)
        circuit = ansatz.bound_circuit(0.2 * np.ones(ansatz.num_parameters()))
        ideal = StatevectorSimulator().expectation(circuit, hamiltonian)
        result = twirled_ensemble_expectation(circuit, hamiltonian,
                                              noise_model=None, num_twirls=5)
        assert result.mean == pytest.approx(ideal, abs=1e-9)
        assert result.standard_error == pytest.approx(0.0, abs=1e-9)

    def test_ensemble_size_validation(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            twirled_ensemble_expectation(circuit, PauliSum(2), num_twirls=0)


# ---------------------------------------------------------------------------
# Readout calibration matrix
# ---------------------------------------------------------------------------

class TestReadoutCalibration:
    def test_confusion_validation(self):
        with pytest.raises(ValueError):
            QubitConfusion(0.6, 0.1)

    def test_matrix_is_column_stochastic(self):
        matrix = QubitConfusion(0.03, 0.08).matrix
        np.testing.assert_allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_uniform_constructor(self):
        calibration = ReadoutCalibrationMatrix.uniform(3, 0.05)
        assert calibration.num_qubits == 3
        assert calibration.confusion(1).p0_given_1 == 0.05

    def test_from_calibration_counts(self):
        zero_counts = [{"0": 95, "1": 5}, {"0": 90, "1": 10}]
        one_counts = [{"0": 4, "1": 96}, {"0": 8, "1": 92}]
        calibration = ReadoutCalibrationMatrix.from_calibration_counts(
            zero_counts, one_counts)
        assert calibration.confusion(0).p1_given_0 == pytest.approx(0.05)
        assert calibration.confusion(1).p0_given_1 == pytest.approx(0.08)

    def test_mitigate_counts_inverts_uniform_readout_noise(self):
        """Applying the confusion matrix then its inverse recovers the ideal
        distribution for a deterministic |01⟩ preparation."""
        error = 0.08
        calibration = ReadoutCalibrationMatrix.uniform(2, error)
        # Ideal state |q0=1, q1=0⟩ → bitstring "10"; simulate readout noise on
        # a large ensemble analytically.
        noisy = {
            "10": (1 - error) * (1 - error),
            "00": error * (1 - error),
            "11": (1 - error) * error,
            "01": error * error,
        }
        counts = {bits: int(round(prob * 100000)) for bits, prob in noisy.items()}
        mitigated = calibration.mitigate_counts(counts)
        assert mitigated["10"] == pytest.approx(1.0, abs=5e-3)

    def test_mitigate_expectation_restores_damped_value(self):
        calibration = ReadoutCalibrationMatrix.uniform(2, 0.06)
        pauli = PauliString("ZZ")
        true_value = 0.8
        damped = true_value * calibration.expectation_damping(pauli)
        assert calibration.mitigate_expectation(pauli, damped) == pytest.approx(
            true_value, abs=1e-9)

    def test_mitigate_diagonal_energy(self):
        hamiltonian = PauliSum(2)
        hamiltonian.add_term(PauliString("ZI"), 0.5)
        hamiltonian.add_term(PauliString("ZZ"), 1.0)
        hamiltonian.add_term(PauliString.identity(2), -0.25)
        calibration = ReadoutCalibrationMatrix.uniform(2, 0.05)
        true_values = {PauliString("ZI").key()[1]: 0.9,
                       PauliString("ZZ").key()[1]: -0.4}
        damped = {key: value * calibration.expectation_damping(pauli)
                  for (pauli, _), (key, value) in zip(
                      [(PauliString("ZI"), None), (PauliString("ZZ"), None)],
                      true_values.items())}
        energy = calibration.mitigate_diagonal_energy(hamiltonian, damped)
        expected = 0.5 * 0.9 + 1.0 * (-0.4) - 0.25
        assert energy == pytest.approx(expected, abs=1e-9)

    def test_missing_term_raises(self):
        hamiltonian = PauliSum(2)
        hamiltonian.add_term(PauliString("ZZ"), 1.0)
        calibration = ReadoutCalibrationMatrix.uniform(2, 0.05)
        with pytest.raises(KeyError):
            calibration.mitigate_diagonal_energy(hamiltonian, {})

    def test_empty_counts_rejected(self):
        calibration = ReadoutCalibrationMatrix.uniform(1, 0.05)
        with pytest.raises(ValueError):
            calibration.mitigate_counts({})
