"""Tests for layout geometry, bus routing, placement and the EFT compiler."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import (BlockedAllToAllAnsatz, FullyConnectedAnsatz,
                          LinearAnsatz)
from repro.architecture.layouts import ProposedLayout, make_layout
from repro.architecture.pipeline import CompilationResult, EFTCompiler
from repro.architecture.placement import (PlacedAnsatz, annealed_placement,
                                          greedy_placement, identity_placement,
                                          optimize_placement, placement_cost)
from repro.architecture.routing import (BusRouter, ContentionAwareScheduler,
                                        ProposedLayoutGeometry)
from repro.architecture.scheduler import schedule_on_layout
from repro.core.regimes import PQECRegime
from repro.core.resources import EFTDevice
from repro.operators.hamiltonians import ising_hamiltonian


# ---------------------------------------------------------------------------
# Layout geometry
# ---------------------------------------------------------------------------

class TestProposedLayoutGeometry:
    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_tile_counts_match_packing_efficiency_formula(self, k):
        geometry = ProposedLayoutGeometry(k)
        assert geometry.num_data_qubits == 4 * k + 4
        assert geometry.total_tiles == 6 * (k + 2)
        assert geometry.packing_efficiency() == pytest.approx(
            ProposedLayout.packing_efficiency_formula(k))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ProposedLayoutGeometry(0)

    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_every_data_qubit_is_adjacent_to_injection_space(self, k):
        assert ProposedLayoutGeometry(k).every_data_qubit_touches_the_bus()

    def test_magic_state_slot_count_matches_layout(self):
        for k in (3, 6, 9):
            geometry = ProposedLayoutGeometry(k)
            assert len(geometry.magic_state_tiles()) == 2 * (k // 3)

    def test_data_tile_lookup_and_bounds(self):
        geometry = ProposedLayoutGeometry(3)
        tile = geometry.data_tile(0)
        assert tile.kind == "data" and tile.qubit == 0
        with pytest.raises(ValueError):
            geometry.data_tile(999)

    def test_bus_graph_is_connected(self):
        import networkx as nx
        graph = ProposedLayoutGeometry(4).bus_graph()
        assert nx.is_connected(graph)

    def test_route_exists_between_any_pair(self):
        geometry = ProposedLayoutGeometry(2)
        for a in range(0, geometry.num_data_qubits, 3):
            for b in range(1, geometry.num_data_qubits, 4):
                if a == b:
                    continue
                route = geometry.route(a, b)
                assert route, f"no route between {a} and {b}"

    def test_route_respects_blocked_tiles(self):
        geometry = ProposedLayoutGeometry(2)
        free_route = geometry.route(0, 1)
        assert free_route is not None
        blocked = geometry.route(0, 1, blocked=set(free_route))
        # Either an alternative route exists that avoids the blocked tiles,
        # or routing correctly reports congestion.
        if blocked is not None:
            assert not (set(blocked) & set(free_route))


class TestBusRouterAndContention:
    def test_reservations_block_and_release(self):
        geometry = ProposedLayoutGeometry(3)
        router = BusRouter(geometry)
        first = router.try_reserve([0, 1], cycle=0.0, duration=4.0,
                                   operation_index=0)
        assert first is not None
        assert router.blocked_tiles(1.0) == set(first.tiles)
        router.release_expired(5.0)
        assert router.active_reservations == 0

    def test_contention_scheduler_matches_or_exceeds_analytic_cycles(self):
        """The explicit-routing schedule can never beat the analytic model's
        contention-free cycle count."""
        for num_qubits in (8, 12):
            ansatz = BlockedAllToAllAnsatz(num_qubits, 1)
            geometry = ProposedLayoutGeometry((num_qubits - 4) // 4)
            contention = ContentionAwareScheduler(geometry).schedule(ansatz)
            analytic = schedule_on_layout(ansatz,
                                          make_layout("proposed", num_qubits))
            assert contention.total_cycles >= analytic.cycles * 0.5
            assert contention.total_cycles > 0
            assert contention.total_tiles == geometry.total_tiles

    def test_contention_scheduler_rejects_oversized_ansatz(self):
        ansatz = FullyConnectedAnsatz(16, 1)
        geometry = ProposedLayoutGeometry(1)   # hosts only 8 data qubits
        with pytest.raises(ValueError):
            ContentionAwareScheduler(geometry).schedule(ansatz)

    def test_schedule_respects_program_order_per_qubit(self):
        ansatz = LinearAnsatz(8, 1)
        geometry = ProposedLayoutGeometry(1)
        result = ContentionAwareScheduler(geometry).schedule(ansatz)
        last_finish = {}
        for op in result.operations:
            for qubit in op.qubits:
                assert op.start_cycle >= last_finish.get(qubit, 0.0) - 1e-9
                last_finish[qubit] = op.finish_cycle


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------

class TestPlacement:
    def test_placed_ansatz_requires_permutation(self):
        ansatz = FullyConnectedAnsatz(8, 1)
        with pytest.raises(ValueError):
            PlacedAnsatz(ansatz, [0] * 8)

    def test_identity_placement_costs_match_direct_scheduling(self):
        ansatz = FullyConnectedAnsatz(8, 1)
        layout = make_layout("proposed", 8)
        identity_cost = placement_cost(ansatz, identity_placement(8), layout)
        direct = sum(layout.cluster_cycles(control, targets)
                     for control, targets in ansatz.entangling_clusters())
        assert identity_cost == pytest.approx(direct)

    def test_placed_ansatz_preserves_counts(self):
        ansatz = FullyConnectedAnsatz(8, 1)
        placed = PlacedAnsatz(ansatz, greedy_placement(ansatz))
        assert placed.cnot_count() == ansatz.cnot_count()
        assert placed.num_parameters() == ansatz.num_parameters()

    def test_greedy_placement_is_a_permutation(self):
        ansatz = FullyConnectedAnsatz(12, 1)
        placement = greedy_placement(ansatz)
        assert sorted(placement) == list(range(12))

    def test_annealed_placement_never_worse_than_its_start(self):
        ansatz = FullyConnectedAnsatz(12, 1)
        layout = make_layout("proposed", 12)
        start = identity_placement(12)
        annealed = annealed_placement(ansatz, layout, initial=start,
                                      iterations=150, seed=3)
        assert placement_cost(ansatz, annealed, layout) <= \
            placement_cost(ansatz, start, layout) + 1e-9

    def test_optimize_placement_report(self):
        ansatz = FullyConnectedAnsatz(12, 1)
        report = optimize_placement(ansatz, anneal_iterations=100, seed=1)
        assert report.identity_cycles > 0
        assert min(report.greedy_cycles, report.annealed_cycles) <= \
            report.identity_cycles + 1e-9
        assert 0.0 <= report.improvement <= 1.0

    def test_blocked_ansatz_needs_no_placement_improvement(self):
        """The layout-aware ansatz is already placed optimally by construction."""
        ansatz = BlockedAllToAllAnsatz(12, 1)
        report = optimize_placement(ansatz, anneal_iterations=60, seed=1)
        assert min(report.greedy_cycles, report.annealed_cycles) == pytest.approx(
            report.identity_cycles, rel=0.05)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_property_random_placements_never_beat_annealed(seed):
    ansatz = FullyConnectedAnsatz(8, 1)
    layout = make_layout("proposed", 8)
    rng = np.random.default_rng(seed)
    random_placement = tuple(rng.permutation(8).tolist())
    annealed = annealed_placement(ansatz, layout, iterations=120, seed=11)
    assert placement_cost(ansatz, annealed, layout) <= \
        placement_cost(ansatz, random_placement, layout) + 1e-9


# ---------------------------------------------------------------------------
# Compiler pipeline
# ---------------------------------------------------------------------------

class TestEFTCompiler:
    @pytest.fixture(scope="class")
    def compiler(self):
        return EFTCompiler(optimize_qubit_placement=False)

    def test_compile_pqec_result_fields(self, compiler):
        ansatz = FullyConnectedAnsatz(12, 1)
        hamiltonian = ising_hamiltonian(12, 1.0)
        result = compiler.compile(ansatz, PQECRegime(), hamiltonian,
                                  workload_name="ising12")
        assert isinstance(result, CompilationResult)
        assert result.workload_name == "ising12"
        assert result.fits_device
        assert 0.0 < result.estimated_fidelity <= 1.0
        assert result.execution_cycles > 0
        assert result.measurement_budget.num_groups >= 2
        summary = result.summary()
        assert summary["regime"] == "pqec"
        assert summary["logical_qubits"] == 12

    def test_placement_stage_is_optional(self):
        with_placement = EFTCompiler(optimize_qubit_placement=True,
                                     placement_anneal_iterations=40)
        result = with_placement.compile(FullyConnectedAnsatz(8, 1), PQECRegime())
        assert result.placement is not None
        without = EFTCompiler(optimize_qubit_placement=False)
        assert without.compile(FullyConnectedAnsatz(8, 1),
                               PQECRegime()).placement is None

    def test_compare_regimes_covers_all_four(self, compiler):
        results = compiler.compare_regimes(FullyConnectedAnsatz(12, 1))
        assert set(results) == {"nisq", "pqec", "qec_conventional",
                                "qec_cultivation"}

    def test_pqec_recommended_for_medium_vqa(self, compiler):
        """The paper's headline: pQEC is the best regime for 12+-qubit VQAs on
        a 10k-qubit device."""
        best, results = compiler.recommend_regime(FullyConnectedAnsatz(16, 1))
        assert best == "pqec"
        assert results["pqec"].estimated_fidelity >= \
            results["nisq"].estimated_fidelity

    def test_oversized_program_flagged_infeasible(self):
        small_device = EFTDevice(physical_qubits=2000)
        compiler = EFTCompiler(device=small_device,
                               optimize_qubit_placement=False)
        result = compiler.compile(FullyConnectedAnsatz(16, 1), PQECRegime())
        assert not result.fits_device

    def test_compilation_scales_with_circuit_size(self, compiler):
        small = compiler.compile(FullyConnectedAnsatz(8, 1), PQECRegime())
        large = compiler.compile(FullyConnectedAnsatz(20, 1), PQECRegime())
        assert large.spacetime_volume > small.spacetime_volume
        assert large.estimated_fidelity <= small.estimated_fidelity + 1e-12
