"""Tests for the ansatz families and the Sec. 4.4 gate-count design rules."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ansatz import (BlockedAllToAllAnsatz, FullyConnectedAnsatz,
                          LinearAnsatz, UCCSDAnsatz, blocked_cnot_count,
                          blocked_ratio_formula, cnot_to_rz_ratio,
                          fche_cnot_count, k_for_qubits, linear_cnot_count,
                          make_ansatz, pqec_crossover_qubits,
                          regime_preference, rotation_count)
from repro.circuits.transpile import gate_census
from repro.simulators.statevector import StatevectorSimulator


class TestHardwareEfficient:
    def test_linear_counts_match_formulas(self):
        ansatz = LinearAnsatz(6, depth=2)
        assert ansatz.cnot_count() == linear_cnot_count(6, 2)
        assert ansatz.rotation_count() == rotation_count(6, 2)
        assert ansatz.num_parameters() == 2 * 6 * 2

    def test_fche_counts_match_formulas(self):
        ansatz = FullyConnectedAnsatz(8, depth=1)
        assert ansatz.cnot_count() == fche_cnot_count(8, 1) == 28

    def test_built_circuit_matches_counts(self):
        ansatz = FullyConnectedAnsatz(5, depth=2)
        circuit = ansatz.build()
        counts = circuit.count_ops()
        assert counts["cx"] == ansatz.cnot_count()
        assert counts["rx"] + counts["rz"] == ansatz.rotation_count()
        assert circuit.num_parameters == ansatz.num_parameters()

    def test_bound_circuit_has_no_free_parameters(self):
        ansatz = LinearAnsatz(4)
        values = np.linspace(0, 1, ansatz.num_parameters())
        assert ansatz.bound_circuit(values).num_parameters == 0

    def test_macro_schedule_structure(self):
        ansatz = LinearAnsatz(4, depth=1)
        schedule = ansatz.macro_schedule()
        kinds = [op.kind for op in schedule]
        assert kinds[0] == "rotation_layer"
        assert kinds[-1] == "measure_layer"
        assert kinds.count("cnot_cluster") == 4

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            LinearAnsatz(1)

    def test_zero_parameters_prepare_computational_state(self):
        ansatz = FullyConnectedAnsatz(4)
        circuit = ansatz.bound_circuit([0.0] * ansatz.num_parameters())
        state = StatevectorSimulator().run(circuit)
        assert abs(state.data[0]) == pytest.approx(1.0)


class TestBlockedAllToAll:
    def test_requires_4k_plus_4_qubits(self):
        with pytest.raises(ValueError):
            BlockedAllToAllAnsatz(10)
        assert k_for_qubits(20) == 4

    @pytest.mark.parametrize("num_qubits", [8, 12, 16, 20, 40])
    def test_cnot_count_matches_paper_formula(self, num_qubits):
        ansatz = BlockedAllToAllAnsatz(num_qubits)
        assert ansatz.cnot_count() == ansatz.expected_cnot_count_formula()
        assert ansatz.cnot_count() == blocked_cnot_count(num_qubits, 1)

    def test_blocks_partition_the_fast_rows(self):
        ansatz = BlockedAllToAllAnsatz(20)
        assert len(ansatz.block_a) == len(ansatz.block_b) == 8
        assert set(ansatz.block_a).isdisjoint(ansatz.block_b)
        assert len(ansatz.extra_qubits) == 4

    def test_exactly_eight_linking_cnots(self):
        for num_qubits in (12, 20, 40):
            ansatz = BlockedAllToAllAnsatz(num_qubits)
            assert len(ansatz.linking_pairs()) == 8

    def test_built_circuit_census_matches_counts(self):
        ansatz = BlockedAllToAllAnsatz(12, depth=2)
        census = gate_census(ansatz.build().bind_parameters(
            [0.1] * ansatz.num_parameters()))
        assert census.cnot == ansatz.cnot_count()


class TestUCCSD:
    def test_parameter_count(self):
        ansatz = UCCSDAnsatz(6, depth=1)
        assert ansatz.num_parameters() == len(ansatz.single_excitations()) + len(
            ansatz.double_excitations())

    def test_builds_and_binds(self):
        ansatz = UCCSDAnsatz(4, depth=1)
        circuit = ansatz.bound_circuit([0.1] * ansatz.num_parameters())
        assert circuit.num_parameters == 0
        assert circuit.count_ops()["cx"] == ansatz.cnot_count()

    def test_zero_angles_give_identity(self):
        ansatz = UCCSDAnsatz(4, depth=1)
        circuit = ansatz.bound_circuit([0.0] * ansatz.num_parameters())
        state = StatevectorSimulator().run(circuit)
        assert abs(state.data[0]) == pytest.approx(1.0)

    def test_cnot_to_rz_ratio_scales_linearly(self):
        small = UCCSDAnsatz(6).cnot_to_rz_ratio()
        large = UCCSDAnsatz(12).cnot_to_rz_ratio()
        assert large >= small


class TestDesignRules:
    def test_blocked_ratio_closed_form(self):
        for n in (8, 16, 24, 48):
            assert cnot_to_rz_ratio("blocked_all_to_all", n) == pytest.approx(
                blocked_ratio_formula(n), rel=1e-12)

    def test_linear_ratio_is_one_quarter(self):
        assert cnot_to_rz_ratio("linear", 32) == pytest.approx(0.25)

    def test_paper_crossover_near_13_qubits(self):
        # The paper quotes N ≥ 13 (ratio 0.7596 vs the rounded 0.76 threshold);
        # with the exact 23/30 break-even the first integer crossing is 14.
        assert pqec_crossover_qubits("blocked_all_to_all") in (13, 14)
        assert pqec_crossover_qubits("blocked_all_to_all",
                                     break_even=0.7595) == 13

    def test_linear_never_prefers_pqec(self):
        assert pqec_crossover_qubits("linear", max_qubits=500) is None

    def test_fche_prefers_pqec_beyond_small_sizes(self):
        crossover = pqec_crossover_qubits("fully_connected")
        assert crossover is not None and crossover <= 16

    def test_regime_preference_object(self):
        pref = regime_preference("blocked_all_to_all", 16)
        assert pref.prefers_pqec
        pref_small = regime_preference("blocked_all_to_all", 8)
        assert not pref_small.prefers_pqec

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            cnot_to_rz_ratio("star", 10)

    def test_make_ansatz_factory(self):
        assert isinstance(make_ansatz("linear", 6), LinearAnsatz)
        with pytest.raises(ValueError):
            make_ansatz("unknown", 6)


@given(num_qubits=st.sampled_from([8, 12, 16, 20, 24, 28]),
       depth=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_blocked_counts_formula_property(num_qubits, depth):
    ansatz = BlockedAllToAllAnsatz(num_qubits, depth)
    n = num_qubits
    assert ansatz.cnot_count() == int((n * n / 2 - 5 * n + 20) * depth)
    assert ansatz.rotation_count() == 2 * n * depth
