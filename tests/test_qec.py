"""Tests for the QEC substrates: surface-code model, factories, cultivation,
Clifford+T synthesis, matching decoder and memory experiments."""

import math

import numpy as np
import pytest

from repro.qec import (CultivationFarm, CultivationUnit, FactoryFarm,
                       LogicalOperationErrorModel, MatchingDecoder,
                       RepetitionCodeMemory, SurfaceCodePatch,
                       best_factory_for_budget, get_factory, list_factories,
                       logical_error_rate, manhattan_distance,
                       max_factories_fitting, max_units_fitting,
                       minimum_distance_for_target, patches_fitting_budget,
                       repetition_code_decoder, sequence_length_for_precision,
                       synthesis_overhead, synthesize_rz, synthesized_circuit,
                       t_count_for_precision)
from repro.circuits.gates import rz_matrix
from repro.simulators.statevector import circuit_unitary


class TestSurfaceCode:
    def test_paper_operating_point_gives_1e7(self):
        assert logical_error_rate(11, 1e-3) == pytest.approx(1e-7, rel=1e-6)

    def test_error_rate_decreases_with_distance(self):
        rates = [logical_error_rate(d, 1e-3) for d in (3, 5, 7, 9, 11)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_above_threshold_distance_hurts(self):
        assert logical_error_rate(11, 2e-2) > logical_error_rate(3, 2e-2)

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            logical_error_rate(4, 1e-3)

    def test_minimum_distance_for_target(self):
        d = minimum_distance_for_target(1e-7, 1e-3)
        assert d == 11

    def test_patch_qubit_counts(self):
        patch = SurfaceCodePatch(11)
        assert patch.data_qubits == 121
        assert patch.ancilla_qubits == 120
        assert patch.physical_qubits == 241

    def test_logical_operation_model_at_paper_point(self):
        model = LogicalOperationErrorModel()
        assert model.memory == pytest.approx(1e-7, rel=1e-6)
        assert model.cnot == pytest.approx(4e-7, rel=1e-6)
        assert model.as_dict()["measure"] == pytest.approx(1e-7, rel=1e-6)

    def test_patches_fitting_budget(self):
        assert patches_fitting_budget(10_000, 11) == 41


class TestDistillation:
    def test_catalogue_has_paper_configs(self):
        names = {factory.label for factory in list_factories()}
        assert "(15-to-1)7,3,3" in names
        assert "(15-to-1)17,7,7" in names

    def test_paper_quoted_numbers(self):
        small = get_factory("15-to-1_7,3,3")
        assert small.physical_qubits == 810
        assert small.cycles_per_batch == pytest.approx(22.0)
        assert small.output_error(1e-3) == pytest.approx(5.4e-4)
        large = get_factory("15-to-1_17,7,7")
        assert large.output_error(1e-3) == pytest.approx(4.5e-8)
        assert large.cycles_per_batch == pytest.approx(42.0)

    def test_output_error_scales_cubically(self):
        factory = get_factory("15-to-1_11,5,5")
        assert factory.output_error(1e-4) == pytest.approx(
            factory.output_error(1e-3) / 1000.0)

    def test_farm_throughput_and_stalls(self):
        factory = get_factory("15-to-1_7,3,3")
        farm = FactoryFarm(factory, count=2)
        assert farm.cycles_per_tstate() == pytest.approx(11.0)
        assert farm.stall_cycles_per_tstate(1.0) == pytest.approx(10.0)
        assert farm.stall_cycles_per_tstate(20.0) == 0.0
        assert FactoryFarm(factory, 0).stall_cycles_per_tstate(1.0) == math.inf

    def test_max_factories_fitting(self):
        factory = get_factory("15-to-1_7,3,3")
        assert max_factories_fitting(factory, 10_000) == 12
        assert max_factories_fitting(factory, 100) == 0

    def test_best_factory_prefers_lowest_error_that_fits(self):
        best = best_factory_for_budget(5_000)
        assert best.name == "15-to-1_17,7,7"
        small_budget = best_factory_for_budget(1_000)
        assert small_budget.name == "15-to-1_7,3,3"
        with pytest.raises(ValueError):
            best_factory_for_budget(100)

    def test_unknown_factory_rejected(self):
        with pytest.raises(ValueError):
            get_factory("30-to-1")


class TestCultivation:
    def test_unit_footprint_and_rate(self):
        unit = CultivationUnit()
        assert unit.physical_qubits == math.ceil(1.5 * 241)
        assert unit.expected_cycles_per_tstate() == pytest.approx(
            unit.attempt_cycles / unit.acceptance_probability)

    def test_output_error_scaling(self):
        unit = CultivationUnit()
        assert unit.output_error(1e-3) == pytest.approx(2e-9)
        assert unit.output_error(2e-3) == pytest.approx(8e-9)

    def test_farm_scaling(self):
        unit = CultivationUnit()
        farm = CultivationFarm(unit, 4)
        assert farm.cycles_per_tstate() == pytest.approx(
            unit.expected_cycles_per_tstate() / 4)
        assert CultivationFarm(unit, 0).cycles_per_tstate() == math.inf

    def test_units_fitting(self):
        unit = CultivationUnit()
        assert max_units_fitting(unit, 10 * unit.physical_qubits) == 10


class TestCliffordTSynthesis:
    def test_t_count_grows_logarithmically(self):
        assert t_count_for_precision(1e-3) < t_count_for_precision(1e-6)
        assert t_count_for_precision(1e-6) == pytest.approx(
            3 * math.log2(1e6) + 4, abs=1.0)

    def test_sequence_length_exceeds_t_count(self):
        assert sequence_length_for_precision(1e-6) > t_count_for_precision(1e-6)

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            t_count_for_precision(2.0)

    def test_paper_sec25_overheads_scale(self):
        # 20-qubit depth-1 FCHE: ~40 rotations, ~230 gates, depth ~25.
        overhead = synthesis_overhead(num_rotations=40, original_gate_count=230,
                                      original_depth=25, precision=1e-6)
        assert overhead.gate_count_multiplier > 10
        assert overhead.depth_multiplier > 3
        assert overhead.total_t_count == 40 * overhead.t_count_per_rotation

    def test_synthesize_rz_error_decreases_with_budget(self):
        coarse = synthesize_rz(0.7, max_t_count=1, max_states=2000)
        fine = synthesize_rz(0.7, max_t_count=6, max_states=6000)
        assert fine.error <= coarse.error
        assert fine.t_count <= 6

    def test_synthesize_clifford_angle_is_exact(self):
        result = synthesize_rz(math.pi / 2, max_t_count=2, max_states=2000)
        assert result.error == pytest.approx(0.0, abs=1e-7)

    def test_reported_error_matches_actual_unitary(self):
        result = synthesize_rz(0.9, max_t_count=5, max_states=4000)
        circuit = synthesized_circuit(0.9, 0, 1, max_t_count=5)
        unitary = circuit_unitary(circuit)
        target = rz_matrix(0.9)
        overlap = abs(np.trace(target.conj().T @ unitary)) / 2.0
        actual_error = math.sqrt(max(0.0, 1.0 - min(overlap, 1.0) ** 2))
        assert actual_error == pytest.approx(result.error, abs=1e-6)


class TestDecoderAndMemory:
    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5

    def test_two_defects_pair_together(self):
        decoder = MatchingDecoder()
        pairs = decoder.decode([(0.0, 0.0), (1.0, 0.0)])
        assert len(pairs) == 1
        assert not pairs[0].to_boundary

    def test_single_defect_needs_boundary(self):
        with pytest.raises(ValueError):
            MatchingDecoder().decode([(0.0, 0.0)])
        decoder = MatchingDecoder(boundary_fn=lambda d: 1.0)
        pairs = decoder.decode([(0.0, 0.0)])
        assert pairs[0].to_boundary

    def test_repetition_decoder_prefers_cheap_boundary(self):
        decoder = repetition_code_decoder(distance=9)
        # Two far-apart defects each sit next to a boundary: matching to the
        # boundaries (cost 1 + 1) beats matching them together (cost 7).
        pairs = decoder.decode([(0.0, 0.0), (7.0, 0.0)])
        assert all(pair.to_boundary for pair in pairs)

    def test_memory_experiment_logical_rate_decreases_with_distance(self):
        rate_small = RepetitionCodeMemory(3, physical_error_rate=0.02,
                                          seed=5).run(300).logical_error_rate
        rate_large = RepetitionCodeMemory(9, physical_error_rate=0.02,
                                          seed=5).run(300).logical_error_rate
        assert rate_large <= rate_small

    def test_memory_experiment_zero_noise_never_fails(self):
        result = RepetitionCodeMemory(5, physical_error_rate=0.0,
                                      measurement_error_rate=0.0, seed=1).run(50)
        assert result.logical_failures == 0
        assert result.logical_error_per_round == 0.0

    def test_memory_experiment_heavy_noise_fails_often(self):
        result = RepetitionCodeMemory(3, physical_error_rate=0.4, seed=2).run(200)
        assert result.logical_error_rate > 0.2
