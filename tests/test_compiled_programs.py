"""Tests for the circuit-compile layer and batched parameter-sweep execution.

Covers the compile/bind/batch pipeline of :mod:`repro.simulators.program`:
compiled-vs-interpreted equality on randomized circuits (including barriers,
measurements, resets and the diagonal/permutation fast paths), fused-vs-
unfused equality, batch-vs-loop equality, program-cache keying (fingerprint +
``NoiseModel.version``), the ``evaluate_sweep`` pipeline and its cache/stats
accounting, the batched-objective optimizer protocol, and the satellite
perf fixes (``Gate.matrix`` caching, vectorized ``sample_counts``).
"""

import math

import numpy as np
import pytest

from repro.algorithms.qml import VariationalClassifier, make_blobs_dataset
from repro.algorithms.vqd import VQD
from repro.ansatz import FullyConnectedAnsatz, LinearAnsatz
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.parameters import Parameter
from repro.execution import Executor
from repro.operators import heisenberg_hamiltonian, ising_hamiltonian
from repro.simulators.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.simulators.kernels import (statevector_term_expectations,
                                      statevector_term_expectations_batch)
from repro.simulators.noise import (NoiseModel, RESET_CHANNEL,
                                    amplitude_damping_channel,
                                    bit_flip_channel, depolarizing_channel)
from repro.simulators.program import (OP_DIAG, OP_PERM, OP_UNITARY,
                                      compile_circuit, program_cache_counters,
                                      run_batch, run_interpreted)
from repro.simulators.statevector import (StatevectorSimulator, Statevector,
                                          circuit_unitary,
                                          counts_from_outcomes)
from repro.vqe.clifford_vqe import CliffordVQE
from repro.vqe.energy import BackendEnergyEvaluator
from repro.vqe.optimizers import GeneticOptimizer, SPSAOptimizer
from repro.vqe.runner import VQE


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

_GATE_POOL = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx",
              "rx", "ry", "rz", "u3", "cx", "cz", "swap", "rzz",
              "barrier", "measure"]


def random_circuit(num_qubits, depth, rng, pool=_GATE_POOL):
    """A random circuit over the full gate pool (no resets)."""
    circuit = QuantumCircuit(num_qubits)
    for _ in range(depth):
        name = pool[int(rng.integers(len(pool)))]
        if name == "barrier":
            circuit.barrier()
            continue
        if name == "measure":
            circuit.measure(int(rng.integers(num_qubits)))
            continue
        if name in ("cx", "cz", "swap", "rzz"):
            a, b = rng.choice(num_qubits, size=2, replace=False)
            if name == "rzz":
                circuit.rzz(float(rng.uniform(-np.pi, np.pi)), int(a), int(b))
            else:
                getattr(circuit, name)(int(a), int(b))
            continue
        qubit = int(rng.integers(num_qubits))
        if name in ("rx", "ry", "rz"):
            getattr(circuit, name)(float(rng.uniform(-np.pi, np.pi)), qubit)
        elif name == "u3":
            circuit.u3(*(float(v) for v in rng.uniform(-np.pi, np.pi, 3)),
                       qubit)
        else:
            getattr(circuit, name)(qubit)
    return circuit


def naive_density_matrix_run(simulator, circuit, apply_measure_noise=False):
    """The pre-compile per-instruction density-matrix loop (reference)."""
    num_qubits = circuit.num_qubits
    rho = DensityMatrix.zero_state(num_qubits).data.copy()
    noise = simulator.noise_model
    idle = noise.idle_channel if noise is not None else None
    for layer in circuit.layers():
        busy = set()
        for inst in layer:
            busy.update(inst.qubits)
            if inst.name == "measure":
                if apply_measure_noise and noise is not None \
                        and noise.readout_error > 0:
                    rho = simulator._apply_channel(
                        rho, bit_flip_channel(noise.readout_error),
                        inst.qubits, num_qubits)
                continue
            if inst.name == "reset":
                rho = simulator._apply_reset(rho, inst.qubits[0], num_qubits)
                continue
            if inst.name == "barrier":
                continue
            rho = simulator._apply_unitary(rho, inst.gate.matrix(),
                                           inst.qubits, num_qubits)
            if noise is not None:
                for channel in noise.gate_channels(inst.name):
                    rho = simulator._apply_channel(rho, channel, inst.qubits,
                                                   num_qubits)
        if idle is not None:
            for qubit in range(num_qubits):
                if qubit not in busy:
                    rho = simulator._apply_channel(rho, idle, (qubit,),
                                                   num_qubits)
    return rho


def make_noise_model():
    noise = NoiseModel()
    noise.add_gate_error(depolarizing_channel(0.01, 2), ["cx", "cz", "swap"])
    noise.add_gate_error(depolarizing_channel(0.003), ["h", "x", "rz", "rx"])
    noise.add_idle_error(amplitude_damping_channel(0.01))
    noise.add_readout_error(0.02)
    return noise


# ---------------------------------------------------------------------------
# Compiled-vs-interpreted equality
# ---------------------------------------------------------------------------

class TestCompiledStatevector:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_match_interpreter(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(4, 40, rng)
        compiled = compile_circuit(circuit).run_statevector()
        reference = run_interpreted(circuit)
        np.testing.assert_allclose(compiled, reference, atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_fused_matches_unfused(self, seed):
        rng = np.random.default_rng(100 + seed)
        circuit = random_circuit(4, 40, rng)
        fused = compile_circuit(circuit, fuse=True).run_statevector()
        unfused = compile_circuit(circuit, fuse=False).run_statevector()
        np.testing.assert_allclose(fused, unfused, atol=1e-12)

    def test_diagonal_fast_path(self):
        circuit = QuantumCircuit(3)
        for qubit in range(3):
            circuit.h(qubit)
        circuit.rz(0.7, 0).t(1).s(2).z(0)
        circuit.cz(0, 1).rzz(-1.3, 1, 2).sdg(0).tdg(2)
        program = compile_circuit(circuit, fuse=False)
        kinds = {op.kind for op in program.ops}
        assert OP_DIAG in kinds  # rz/cz/rzz/z/s/t lowered to phase vectors
        np.testing.assert_allclose(program.run_statevector(),
                                   run_interpreted(circuit), atol=1e-12)

    def test_permutation_fast_path_collapses_cnot_ladder(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        for a in range(4):
            for b in range(a + 1, 4):
                circuit.cx(a, b)
        circuit.x(2).y(3).swap(0, 1)
        program = compile_circuit(circuit)
        perm_ops = [op for op in program.ops if op.kind == OP_PERM]
        # The whole monomial-gate run fuses into a single gather op.
        assert len(perm_ops) == 1
        np.testing.assert_allclose(program.run_statevector(),
                                   run_interpreted(circuit), atol=1e-12)

    def test_adjacent_1q_gates_fuse(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rx(0.3, 0).ry(0.2, 0)
        circuit.h(1)
        program = compile_circuit(circuit)
        gate_ops = [op for op in program.ops
                    if op.kind in (OP_UNITARY, OP_DIAG, OP_PERM)]
        assert len(gate_ops) == 2  # one fused op per qubit
        np.testing.assert_allclose(program.run_statevector(),
                                   run_interpreted(circuit), atol=1e-12)

    def test_deterministic_reset(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).reset(0).h(1)
        state = StatevectorSimulator(seed=1).run(circuit)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[2] = 1.0 / math.sqrt(2.0)
        np.testing.assert_allclose(state.data, expected, atol=1e-12)

    def test_initial_state_and_measure_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).measure(0).cx(0, 1)
        initial = Statevector.from_bitstring([0, 1])
        out = StatevectorSimulator().run(circuit, initial).data
        reference = run_interpreted(circuit, initial_state=initial.data)
        np.testing.assert_allclose(out, reference, atol=1e-12)

    def test_circuit_unitary_matches_interpreted_columns(self):
        rng = np.random.default_rng(7)
        circuit = random_circuit(3, 20, rng,
                                 pool=[g for g in _GATE_POOL
                                       if g != "measure"])
        unitary = circuit_unitary(circuit)
        for basis in range(8):
            data = np.zeros(8, dtype=complex)
            data[basis] = 1.0
            column = run_interpreted(circuit.without_measurements(),
                                     initial_state=data)
            np.testing.assert_allclose(unitary[:, basis], column, atol=1e-12)


class TestCompiledDensityMatrix:
    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_run_matches_naive_loop(self, seed):
        rng = np.random.default_rng(200 + seed)
        circuit = random_circuit(3, 25, rng)
        circuit.reset(int(rng.integers(3)))
        circuit.measure_all()
        simulator = DensityMatrixSimulator(make_noise_model())
        for apply_measure_noise in (False, True):
            compiled = simulator.run(
                circuit, apply_measure_noise=apply_measure_noise).data
            reference = naive_density_matrix_run(
                simulator, circuit, apply_measure_noise=apply_measure_noise)
            np.testing.assert_allclose(compiled, reference, atol=1e-12)

    def test_noiseless_run_matches_statevector(self):
        rng = np.random.default_rng(11)
        circuit = random_circuit(3, 25, rng,
                                 pool=[g for g in _GATE_POOL
                                       if g != "measure"])
        rho = DensityMatrixSimulator().run(circuit).data
        state = run_interpreted(circuit)
        np.testing.assert_allclose(rho, np.outer(state, state.conj()),
                                   atol=1e-12)

    def test_reset_channel_constant(self):
        # The hoisted module constant is the projective-reset channel.
        rho = np.array([[0.25, 0.1], [0.1, 0.75]], dtype=complex)
        out = RESET_CHANNEL.apply_to_density_matrix(rho)
        np.testing.assert_allclose(out, [[1.0, 0.0], [0.0, 0.0]], atol=1e-12)


# ---------------------------------------------------------------------------
# Binding and batching
# ---------------------------------------------------------------------------

class TestBindAndBatch:
    def test_bind_refreshes_only_parametric_ops(self):
        theta = [Parameter(f"t{i}") for i in range(2)]
        circuit = QuantumCircuit(2)
        circuit.h(0).rx(theta[0], 0).cx(0, 1).rz(theta[1], 1)
        template = compile_circuit(circuit)
        assert template.is_parametric and not template.is_bound
        bound_a = template.bind([0.3, -0.4])
        bound_b = template.bind([0.1, 0.2])
        static_indices = [index for index, op in enumerate(template.ops)
                          if not op.is_parametric]
        for index in static_indices:
            assert bound_a.ops[index] is template.ops[index]
            assert bound_b.ops[index] is template.ops[index]
        reference = circuit.bind_parameters({theta[0]: 0.3, theta[1]: -0.4})
        np.testing.assert_allclose(bound_a.run_statevector(),
                                   run_interpreted(reference), atol=1e-12)

    @pytest.mark.parametrize("num_qubits,depth", [(3, 1), (5, 2)])
    def test_batch_matches_loop(self, num_qubits, depth):
        rng = np.random.default_rng(31)
        template = LinearAnsatz(num_qubits, depth=depth).build()
        program = compile_circuit(template)
        sweep = rng.standard_normal((6, len(template.ordered_parameters())))
        states = run_batch([program.bind(point) for point in sweep])
        assert states.shape == (6, 2 ** num_qubits)
        for row, point in enumerate(sweep):
            reference = run_interpreted(template.bind_parameters(list(point)))
            np.testing.assert_allclose(states[row], reference, atol=1e-12)

    def test_run_sweep_convenience(self):
        template = LinearAnsatz(3, depth=1).build()
        program = compile_circuit(template)
        sweep = [[0.1] * 6, [0.2] * 6]
        states = program.run_sweep(sweep)
        np.testing.assert_allclose(
            states[1],
            program.bind(sweep[1]).run_statevector(), atol=1e-12)

    def test_mixed_origin_batch_with_distinct_monomials(self):
        # Two structure-compatible programs whose PERM ops differ (cx vs
        # swap) must each apply their *own* gather, not the lead's.
        circuit_a = QuantumCircuit(2)
        circuit_a.h(0).cx(0, 1)
        circuit_b = QuantumCircuit(2)
        circuit_b.h(0).swap(0, 1)
        program_a = compile_circuit(circuit_a)
        program_b = compile_circuit(circuit_b)
        assert program_a.structure_key() == program_b.structure_key()
        states = run_batch([program_a, program_b])
        np.testing.assert_allclose(states[0], run_interpreted(circuit_a),
                                   atol=1e-12)
        np.testing.assert_allclose(states[1], run_interpreted(circuit_b),
                                   atol=1e-12)

    def test_batch_rejects_mixed_structures(self):
        circuit_a = QuantumCircuit(2)
        circuit_a.h(0)
        circuit_b = QuantumCircuit(2)
        circuit_b.cx(0, 1)
        with pytest.raises(ValueError, match="structure"):
            run_batch([compile_circuit(circuit_a),
                       compile_circuit(circuit_b)])

    def test_batch_rejects_resets_and_noise(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).reset(0)
        with pytest.raises(ValueError, match="reset"):
            run_batch([compile_circuit(circuit)])
        noisy = compile_circuit(QuantumCircuit(2).h(0),
                                noise_model=make_noise_model())
        with pytest.raises(ValueError, match="nois"):
            run_batch([noisy])

    def test_batch_kernel_matches_single(self):
        rng = np.random.default_rng(17)
        hamiltonian = heisenberg_hamiltonian(4)
        states = rng.standard_normal((5, 16)) + 1j * rng.standard_normal((5, 16))
        states /= np.linalg.norm(states, axis=1, keepdims=True)
        batch = statevector_term_expectations_batch(states,
                                                    observable=hamiltonian)
        for row in range(5):
            single = statevector_term_expectations(states[row],
                                                   observable=hamiltonian)
            np.testing.assert_allclose(batch[row], single, atol=1e-12)


# ---------------------------------------------------------------------------
# Program cache
# ---------------------------------------------------------------------------

class TestProgramCache:
    def test_repeat_compile_hits(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        first = compile_circuit(circuit)
        compiled_before, hits_before = program_cache_counters()
        again = compile_circuit(circuit)
        compiled_after, hits_after = program_cache_counters()
        assert again is first
        assert hits_after == hits_before + 1
        assert compiled_after == compiled_before

    def test_equal_circuits_share_programs(self):
        def build():
            circuit = QuantumCircuit(2)
            return circuit.h(0).rz(0.25, 1)
        assert compile_circuit(build()) is compile_circuit(build())

    def test_noise_version_bump_invalidates(self):
        noise = make_noise_model()
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        first = compile_circuit(circuit, noise_model=noise)
        assert compile_circuit(circuit, noise_model=noise) is first
        noise.add_readout_error(0.05)  # bumps NoiseModel.version
        recompiled = compile_circuit(circuit, noise_model=noise)
        assert recompiled is not first
        compiled_before, _ = program_cache_counters()
        assert compile_circuit(circuit, noise_model=noise) is recompiled
        assert program_cache_counters()[0] == compiled_before

    def test_noiseless_and_noisy_programs_are_distinct(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        noiseless = compile_circuit(circuit)
        noisy = compile_circuit(circuit, noise_model=make_noise_model())
        assert noiseless is not noisy
        assert noisy.has_channels and not noiseless.has_channels

    def test_equal_templates_with_distinct_parameters_bind_by_mapping(self):
        # Structurally identical templates built from distinct Parameter
        # objects share a fingerprint, but each must get a program holding
        # its *own* Parameter identities so mapping-based bind() works.
        def build():
            theta = Parameter("θ")
            circuit = QuantumCircuit(1)
            circuit.h(0).rx(theta, 0)
            return circuit, theta
        circuit_a, theta_a = build()
        circuit_b, theta_b = build()
        assert circuit_a.fingerprint() == circuit_b.fingerprint()
        program_a = compile_circuit(circuit_a)
        program_b = compile_circuit(circuit_b)
        assert program_a is not program_b
        np.testing.assert_allclose(
            program_b.bind({theta_b: 0.7}).run_statevector(),
            run_interpreted(circuit_b.bind_parameters({theta_b: 0.7})),
            atol=1e-12)
        assert compile_circuit(circuit_a) is program_a  # identity-keyed hit

    def test_shared_vs_distinct_parameters_never_collide(self):
        # One θ reused twice and two distinct θs of the same name are
        # different templates; the fingerprint-keyed program cache must not
        # hand one the other's binding pattern.
        shared = Parameter("θ")
        reused = QuantumCircuit(2)
        reused.rx(shared, 0).rx(shared, 1)
        distinct = QuantumCircuit(2)
        distinct.rx(Parameter("θ"), 0).rx(Parameter("θ"), 1)
        assert reused.fingerprint() != distinct.fingerprint()
        program_reused = compile_circuit(reused)
        program_distinct = compile_circuit(distinct)
        assert program_reused is not program_distinct
        np.testing.assert_allclose(
            program_reused.bind([0.3]).run_statevector(),
            run_interpreted(reused.bind_parameters([0.3])), atol=1e-12)
        np.testing.assert_allclose(
            program_distinct.bind([0.3, -0.8]).run_statevector(),
            run_interpreted(distinct.bind_parameters([0.3, -0.8])),
            atol=1e-12)

    def test_rebinding_reuses_cached_template(self):
        theta = Parameter("θ")
        circuit = QuantumCircuit(1)
        circuit.h(0).rx(theta, 0)
        template = compile_circuit(circuit)
        _, hits_before = program_cache_counters()
        template_again = compile_circuit(circuit)
        assert template_again is template
        assert program_cache_counters()[1] == hits_before + 1
        bound = template.bind([0.4])
        assert bound is not template and bound.is_bound
        # Binding alone never recompiles the structure.
        compiled_now, _ = program_cache_counters()
        template.bind([0.8])
        assert program_cache_counters()[0] == compiled_now


# ---------------------------------------------------------------------------
# evaluate_sweep pipeline
# ---------------------------------------------------------------------------

class TestEvaluateSweep:
    def setup_method(self):
        self.hamiltonian = ising_hamiltonian(5, coupling=1.0)
        self.template = FullyConnectedAnsatz(5, depth=1).build()
        rng = np.random.default_rng(23)
        self.sweep = rng.standard_normal(
            (6, len(self.template.ordered_parameters())))

    def test_matches_grouped_per_circuit_path(self):
        executor = Executor()
        energies = executor.evaluate_sweep(self.template, self.sweep,
                                           self.hamiltonian,
                                           backend="statevector")
        reference = Executor().evaluate_observable(
            [self.template.bind_parameters(list(point))
             for point in self.sweep],
            self.hamiltonian, backend="statevector")
        np.testing.assert_allclose(energies, reference, atol=1e-10)
        assert executor.stats.backend_invocations["statevector"] == 6

    def test_second_sweep_is_cache_served(self):
        executor = Executor()
        first = executor.evaluate_sweep(self.template, self.sweep,
                                        self.hamiltonian,
                                        backend="statevector")
        invocations = executor.stats.simulator_invocations
        second = executor.evaluate_sweep(self.template, self.sweep,
                                         self.hamiltonian,
                                         backend="statevector")
        assert second == first
        assert executor.stats.simulator_invocations == invocations
        # The fully cached repeat sweep never reaches the compile layer:
        # no new lowering, no program-cache probe — term values come
        # straight from the expectation cache.
        assert executor.stats.programs_compiled == 1
        assert executor.stats.program_cache_hits == 0
        assert executor.stats.term_cache_hits \
            >= len(self.sweep) * self.hamiltonian.num_terms

    def test_duplicate_points_dedup(self):
        executor = Executor()
        duplicated = [list(self.sweep[0])] * 3 + [list(self.sweep[1])]
        executor.evaluate_sweep(self.template, duplicated, self.hamiltonian,
                                backend="statevector")
        assert executor.stats.backend_invocations["statevector"] == 2
        assert executor.stats.dedup_hits == 2

    def test_noisy_sweep_falls_back_to_grouped(self):
        noise = make_noise_model()
        executor = Executor()
        energies = executor.evaluate_sweep(
            self.template, self.sweep[:2], self.hamiltonian,
            noise_model=noise, backend="density_matrix")
        evaluator = BackendEnergyEvaluator.density_matrix(self.hamiltonian, noise,
                                                 canonicalize=False)
        for point, energy in zip(self.sweep[:2], energies):
            circuit = self.template.bind_parameters(list(point))
            assert abs(evaluator(circuit) - energy) < 1e-10

    def test_auto_routing_clifford_points_fall_back(self):
        # All-zero angles make the ansatz Clifford: auto routing sends the
        # sweep to the stabilizer engine rather than the batched kets.
        executor = Executor()
        zeros = [[0.0] * len(self.template.ordered_parameters())]
        energies = executor.evaluate_sweep(self.template, zeros,
                                           self.hamiltonian, backend="auto")
        assert "statevector" not in executor.stats.backend_invocations
        reference = Executor().evaluate_sweep(self.template, zeros,
                                              self.hamiltonian,
                                              backend="statevector")
        np.testing.assert_allclose(energies, reference, atol=1e-10)

    def test_chunked_batches_match_single_batch(self, monkeypatch):
        # A tiny amplitude budget forces several stacked sub-batches; the
        # energies must not change.
        from repro.execution import executor as executor_module
        monkeypatch.setattr(executor_module, "_SWEEP_BATCH_AMPLITUDES",
                            2 ** self.template.num_qubits * 2)
        chunked = Executor().evaluate_sweep(self.template, self.sweep,
                                            self.hamiltonian,
                                            backend="statevector")
        reference = Executor().evaluate_observable(
            [self.template.bind_parameters(list(point))
             for point in self.sweep],
            self.hamiltonian, backend="statevector")
        np.testing.assert_allclose(chunked, reference, atol=1e-10)

    def test_parameter_count_validation(self):
        from repro.execution.errors import ExecutionError
        with pytest.raises(ExecutionError, match="free parameters"):
            Executor().evaluate_sweep(self.template, [[0.1, 0.2]],
                                      self.hamiltonian)

    def test_evaluator_evaluate_sweep(self):
        evaluator = BackendEnergyEvaluator.exact(self.hamiltonian)
        energies = evaluator.evaluate_sweep(self.template, self.sweep)
        assert evaluator.num_evaluations == len(self.sweep)
        for point, energy in zip(self.sweep, energies):
            circuit = self.template.bind_parameters(list(point))
            assert abs(BackendEnergyEvaluator.exact(self.hamiltonian)(circuit)
                       - energy) < 1e-10

    def test_evaluator_presets_match_shims(self):
        exact = BackendEnergyEvaluator.exact(self.hamiltonian)
        assert exact.backend == "statevector"
        noise = make_noise_model()
        density = BackendEnergyEvaluator.density_matrix(self.hamiltonian,
                                                        noise)
        assert density.backend == "density_matrix"
        assert density.canonicalize and density.noise_model is noise
        clifford = BackendEnergyEvaluator.clifford(self.hamiltonian)
        assert clifford.backend == "pauli_propagation"
        monte_carlo = BackendEnergyEvaluator.monte_carlo_stabilizer(
            self.hamiltonian, trajectories=64, seed=3)
        # Seeded ensembles are deterministic (per-trajectory seed spawning),
        # so the seeded preset caches; the unseeded one draws fresh
        # randomness every call and must not.
        assert monte_carlo.trajectories == 64 and monte_carlo.use_cache
        unseeded = BackendEnergyEvaluator.monte_carlo_stabilizer(
            self.hamiltonian, trajectories=64)
        assert not unseeded.use_cache


# ---------------------------------------------------------------------------
# Optimizer batching protocol
# ---------------------------------------------------------------------------

class _CountingObjective:
    """Quadratic objective counting scalar vs batched evaluations."""

    def __init__(self):
        self.single_calls = 0
        self.batch_calls = 0

    def __call__(self, parameters):
        self.single_calls += 1
        return float(np.sum(np.asarray(parameters) ** 2))

    def evaluate_batch(self, parameter_sets):
        self.batch_calls += 1
        return [float(np.sum(np.asarray(p) ** 2)) for p in parameter_sets]


class TestOptimizerBatching:
    def test_spsa_uses_batches_and_matches_scalar_path(self):
        objective = _CountingObjective()
        result = SPSAOptimizer(max_iterations=10, seed=5).minimize(
            objective, [0.5, -0.3])
        assert objective.batch_calls == 10
        assert objective.single_calls == 2  # initial + final tracking
        scalar = SPSAOptimizer(max_iterations=10, seed=5).minimize(
            lambda p: float(np.sum(np.asarray(p) ** 2)), [0.5, -0.3])
        np.testing.assert_allclose(result.best_parameters,
                                   scalar.best_parameters, atol=1e-12)
        assert result.history == scalar.history

    def test_genetic_uses_batches_and_matches_scalar_path(self):
        objective = _CountingObjective()
        ga = GeneticOptimizer(population_size=8, generations=4, seed=9)
        result = ga.minimize(objective, 3)
        assert objective.batch_calls == 5  # initial + one per generation
        assert objective.single_calls == 0
        scalar = GeneticOptimizer(population_size=8, generations=4,
                                  seed=9).minimize(
            lambda p: float(np.sum(np.asarray(p) ** 2)), 3)
        assert result.best_value == scalar.best_value
        np.testing.assert_array_equal(result.best_parameters,
                                      scalar.best_parameters)

    def test_vqe_spsa_batched_run(self):
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        vqe = VQE(hamiltonian, LinearAnsatz(3, depth=1),
                  BackendEnergyEvaluator.exact(hamiltonian),
                  SPSAOptimizer(max_iterations=12, seed=2))
        result = vqe.run(seed=2)
        assert result.best_energy <= vqe.energy(
            np.zeros(vqe.ansatz.num_parameters())) + 1e-9

    def test_vqe_energy_sweep_matches_energy(self):
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        vqe = VQE(hamiltonian, LinearAnsatz(3, depth=1),
                  BackendEnergyEvaluator.exact(hamiltonian))
        rng = np.random.default_rng(4)
        sweep = rng.standard_normal((4, vqe.ansatz.num_parameters()))
        energies = vqe.energy_sweep(sweep)
        for point, energy in zip(sweep, energies):
            assert abs(vqe.energy(point) - energy) < 1e-10

    def test_clifford_vqe_population_batch(self):
        hamiltonian = ising_hamiltonian(4, coupling=1.0)
        vqe = CliffordVQE(hamiltonian, LinearAnsatz(4, depth=1),
                          optimizer=GeneticOptimizer(population_size=6,
                                                     generations=2, seed=1))
        result = vqe.run()
        rescored = vqe.energy_from_indices(result.parameter_indices)
        assert abs(rescored - result.best_energy) < 1e-9
        batch = vqe.energy_from_population([result.parameter_indices] * 2)
        np.testing.assert_allclose(batch, [rescored, rescored], atol=1e-9)


# ---------------------------------------------------------------------------
# Algorithm consumers
# ---------------------------------------------------------------------------

class TestAlgorithmConsumers:
    def test_classifier_batch_matches_per_sample_circuits(self):
        from repro.execution import evaluate_observable
        dataset = make_blobs_dataset(num_samples=10, seed=3)
        classifier = VariationalClassifier(num_qubits=3, num_layers=1)
        rng = np.random.default_rng(6)
        weights = 0.3 * rng.standard_normal(classifier.num_parameters())
        scores = classifier.decision_scores(dataset.features, weights)
        circuits = [classifier.model_circuit(sample, weights)
                    for sample in dataset.features]
        reference = evaluate_observable(circuits, classifier._observable,
                                        backend="statevector")
        np.testing.assert_allclose(scores, reference, atol=1e-10)

    def test_vqd_evaluate_levels_batched(self):
        hamiltonian = ising_hamiltonian(3, coupling=1.0)
        vqd = VQD(hamiltonian, LinearAnsatz(3, depth=1), num_states=2)
        result = vqd.run(seed=11)
        rescored = vqd.evaluate_levels(result, backend="statevector")
        np.testing.assert_allclose(rescored, result.energies, atol=1e-6)


# ---------------------------------------------------------------------------
# Satellite perf fixes
# ---------------------------------------------------------------------------

class TestSatellites:
    def test_static_gate_matrices_are_cached_and_read_only(self):
        first = Gate("h").matrix()
        second = Gate("h").matrix()
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = 2.0

    def test_parametric_gate_matrices_are_memoized(self):
        first = Gate("rx", (0.375,)).matrix()
        second = Gate("rx", (0.375,)).matrix()
        assert first is second
        assert not first.flags.writeable
        other = Gate("rx", (0.5,)).matrix()
        assert other is not first

    def test_counts_from_outcomes_matches_bitstring_loop(self):
        rng = np.random.default_rng(13)
        outcomes = rng.integers(0, 16, size=200)
        expected = {}
        for outcome in outcomes:
            bits = "".join(str((outcome >> q) & 1) for q in range(4))
            expected[bits] = expected.get(bits, 0) + 1
        assert counts_from_outcomes(outcomes, 4) == expected

    def test_sample_counts_distribution(self):
        state = Statevector.from_bitstring([1, 0, 1])
        counts = state.sample_counts(50, np.random.default_rng(0))
        assert counts == {"101": 50}
        rho = DensityMatrix.from_statevector(state)
        assert rho.sample_counts(50, np.random.default_rng(0)) == {"101": 50}

    def test_statevector_sampling_statistics(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        counts = StatevectorSimulator(seed=5).sample(circuit, 4000)
        assert set(counts) == {"0", "1"}
        assert abs(counts["0"] - 2000) < 200
