"""Tests for circuit rewriting passes (Clifford+Rz basis, snapping, census)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (Parameter, QuantumCircuit, decompose_to_clifford_rz,
                            gate_census, merge_rz_runs, remove_barriers,
                            snap_to_clifford)
from repro.circuits.transpile import bind_and_canonicalize
from repro.simulators.statevector import circuit_unitary


def unitaries_equal_up_to_phase(a, b, atol=1e-8):
    overlap = abs(np.trace(a.conj().T @ b)) / a.shape[0]
    return overlap == pytest.approx(1.0, abs=atol)


class TestDecomposition:
    @given(theta=st.floats(-math.pi, math.pi, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_rx_decomposition_preserves_unitary(self, theta):
        original = QuantumCircuit(1)
        original.rx(theta, 0)
        rewritten = decompose_to_clifford_rz(original)
        assert unitaries_equal_up_to_phase(circuit_unitary(original),
                                           circuit_unitary(rewritten))

    @given(theta=st.floats(-math.pi, math.pi, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_ry_decomposition_preserves_unitary(self, theta):
        original = QuantumCircuit(1)
        original.ry(theta, 0)
        rewritten = decompose_to_clifford_rz(original)
        assert unitaries_equal_up_to_phase(circuit_unitary(original),
                                           circuit_unitary(rewritten))

    @given(theta=st.floats(-math.pi, math.pi, allow_nan=False))
    @settings(max_examples=15, deadline=None)
    def test_rzz_decomposition_preserves_unitary(self, theta):
        original = QuantumCircuit(2)
        original.rzz(theta, 0, 1)
        rewritten = decompose_to_clifford_rz(original)
        assert unitaries_equal_up_to_phase(circuit_unitary(original),
                                           circuit_unitary(rewritten))

    def test_only_rz_rotations_remain(self):
        qc = QuantumCircuit(2)
        qc.rx(0.3, 0).ry(0.7, 1).rzz(0.2, 0, 1).u3(0.1, 0.2, 0.3, 0)
        rewritten = decompose_to_clifford_rz(qc)
        rotation_names = {inst.name for inst in rewritten if inst.gate.is_rotation}
        assert rotation_names <= {"rz"}

    def test_symbolic_parameters_survive(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        rewritten = decompose_to_clifford_rz(qc)
        assert theta in rewritten.parameters


class TestMergeRz:
    def test_adjacent_rz_gates_fuse(self):
        qc = QuantumCircuit(1)
        qc.rz(0.2, 0).rz(0.3, 0)
        merged = merge_rz_runs(qc)
        assert merged.count_ops()["rz"] == 1
        assert merged[0].params[0] == pytest.approx(0.5)

    def test_cancellation_drops_identity(self):
        qc = QuantumCircuit(1)
        qc.rz(0.4, 0).rz(-0.4, 0)
        assert merge_rz_runs(qc).size() == 0

    def test_intervening_gate_breaks_run(self):
        qc = QuantumCircuit(1)
        qc.rz(0.2, 0).h(0).rz(0.3, 0)
        assert merge_rz_runs(qc).count_ops()["rz"] == 2

    def test_angles_normalized_into_principal_range(self):
        qc = QuantumCircuit(1)
        qc.rz(3 * math.pi, 0)
        merged = merge_rz_runs(qc)
        assert abs(float(merged[0].params[0])) <= math.pi + 1e-9


class TestSnapping:
    def test_snapped_circuit_is_clifford(self):
        qc = QuantumCircuit(2)
        qc.rx(0.5, 0).ry(1.1, 1).cx(0, 1).rz(2.0, 1)
        snapped = snap_to_clifford(qc)
        assert snapped.is_clifford()

    def test_exact_multiples_map_to_named_cliffords(self):
        qc = QuantumCircuit(1)
        qc.rz(math.pi / 2, 0).rz(math.pi, 0).rz(3 * math.pi / 2, 0)
        snapped = snap_to_clifford(qc)
        assert [inst.name for inst in snapped] == ["s", "z", "sdg"]

    def test_snapping_t_gate_raises(self):
        qc = QuantumCircuit(1)
        qc.t(0)
        with pytest.raises(ValueError):
            snap_to_clifford(qc)


class TestCensus:
    def test_counts_for_mixed_circuit(self):
        qc = QuantumCircuit(3)
        qc.rx(0.3, 0).cx(0, 1).rz(math.pi / 2, 2).rz(0.1, 2).t(1).measure_all()
        census = gate_census(qc)
        assert census.cnot == 1
        assert census.measure == 3
        # rx -> one rz; the two rz on qubit 2 merge into one non-Clifford; t counts too.
        assert census.rz == 3
        assert census.nonclifford_rz == 3

    def test_ratio_is_infinite_without_rotations(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        assert gate_census(qc).cnot_to_rz_ratio == math.inf

    def test_remove_barriers(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().cx(0, 1)
        assert all(inst.name != "barrier" for inst in remove_barriers(qc))

    def test_bind_and_canonicalize_produces_clifford_rz(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(2)
        qc.rx(theta, 0).cx(0, 1)
        bound = bind_and_canonicalize(qc, {theta: 0.7})
        assert bound.num_parameters == 0
        assert all(inst.name in {"h", "rz", "cx"} for inst in bound)

    def test_bind_and_canonicalize_clifford_only(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        snapped = bind_and_canonicalize(qc, {theta: 0.7}, clifford_only=True)
        assert snapped.is_clifford()
