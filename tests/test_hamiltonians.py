"""Tests for the benchmark Hamiltonians (Ising, Heisenberg, MaxCut, molecules)."""

import numpy as np
import pytest

from repro.operators import (PauliString, available_molecules,
                             chemistry_benchmark_suite, exact_ground_state,
                             heisenberg_hamiltonian, ising_hamiltonian,
                             maxcut_hamiltonian, molecular_hamiltonian,
                             molecule_spec, physics_benchmark_suite)


class TestIsing:
    def test_term_count_open_chain(self):
        h = ising_hamiltonian(5, coupling=0.5)
        # 4 XX bonds + 5 Z fields.
        assert h.num_terms == 9

    def test_coupling_coefficients(self):
        h = ising_hamiltonian(3, coupling=0.25)
        assert h.coefficient(PauliString("XXI")) == pytest.approx(0.25)
        assert h.coefficient(PauliString("ZII")) == pytest.approx(1.0)

    def test_periodic_chain_adds_wraparound_bond(self):
        open_chain = ising_hamiltonian(4)
        ring = ising_hamiltonian(4, periodic=True)
        assert ring.num_terms == open_chain.num_terms + 1

    def test_two_qubit_ground_state_energy(self):
        # H = J XX + Z1 + Z2 has eigenvalues ±sqrt(4 + J²) and ±J.
        coupling = 0.5
        h = ising_hamiltonian(2, coupling=coupling)
        expected = -np.sqrt(4 + coupling ** 2)
        assert h.ground_state_energy() == pytest.approx(expected, abs=1e-9)

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            ising_hamiltonian(1)


class TestHeisenberg:
    def test_term_count(self):
        h = heisenberg_hamiltonian(4, coupling=1.0)
        assert h.num_terms == 9  # 3 bonds × 3 couplings

    def test_two_site_ground_state_is_singlet(self):
        # J(XX+YY) + ZZ has the singlet at -2J - 1 for J > 0.5.
        h = heisenberg_hamiltonian(2, coupling=1.0)
        assert h.ground_state_energy() == pytest.approx(-3.0, abs=1e-9)

    def test_hermiticity(self):
        assert heisenberg_hamiltonian(5, 0.25).is_hermitian()

    def test_exact_ground_state_vector_is_eigenvector(self):
        h = heisenberg_hamiltonian(3, 0.5)
        energy, state = exact_ground_state(h)
        matrix = h.to_matrix()
        np.testing.assert_allclose(matrix @ state, energy * state, atol=1e-8)


class TestMaxCut:
    def test_triangle_maxcut_value(self):
        h = maxcut_hamiltonian([(0, 1), (1, 2), (0, 2)])
        # The best cut of a triangle cuts 2 edges: minimum energy = -2.
        assert h.ground_state_energy() == pytest.approx(-2.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            maxcut_hamiltonian([(0, 0)])


class TestBenchmarkSuites:
    def test_physics_suite_covers_paper_couplings(self):
        suite = physics_benchmark_suite([4, 6])
        assert len(suite) == 2 * 2 * 3  # sizes × families × couplings
        families = {instance.family for instance in suite}
        assert families == {"ising", "heisenberg"}

    def test_chemistry_suite_matches_paper_counts(self):
        suite = chemistry_benchmark_suite(reduced_terms=None)
        by_family = {inst.family: inst.hamiltonian.num_terms for inst in suite}
        assert by_family["h2o"] == 367
        assert by_family["h6"] == 919
        assert by_family["lih"] == 631

    def test_chemistry_suite_reduced_terms_for_ci(self):
        suite = chemistry_benchmark_suite(num_qubits=6, reduced_terms=40)
        assert all(inst.hamiltonian.num_terms == 40 for inst in suite)
        assert all(inst.num_qubits == 6 for inst in suite)


class TestMolecules:
    def test_available_molecules(self):
        assert set(available_molecules()) == {"H2O", "H6", "LiH"}

    def test_construction_is_deterministic(self):
        a = molecular_hamiltonian("LiH", 1.0)
        b = molecular_hamiltonian("LiH", 1.0)
        assert a == b

    def test_bond_lengths_give_different_hamiltonians(self):
        near = molecular_hamiltonian("H6", 1.0, num_qubits=8, num_terms=60)
        far = molecular_hamiltonian("H6", 4.5, num_qubits=8, num_terms=60)
        assert near != far

    def test_case_insensitive_lookup(self):
        assert molecular_hamiltonian("lih", 1.0, num_qubits=6, num_terms=30).num_terms == 30

    def test_unknown_molecule_rejected(self):
        with pytest.raises(ValueError):
            molecular_hamiltonian("C60")

    def test_spec_reports_paper_term_counts(self):
        spec = molecule_spec("H2O")
        assert spec.num_terms == 367
        assert spec.num_qubits == 12

    def test_hamiltonians_are_hermitian(self):
        h = molecular_hamiltonian("H2O", 4.5, num_qubits=8, num_terms=80)
        assert h.is_hermitian()

    def test_ground_state_below_identity_offset(self):
        h = molecular_hamiltonian("LiH", 1.0, num_qubits=6, num_terms=50)
        offset = float(np.real(h.identity_coefficient()))
        assert h.ground_state_energy() < offset
