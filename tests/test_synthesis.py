"""Tests for Clifford+T synthesis: Clifford group, ε-net, Solovay–Kitaev."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.statevector import circuit_unitary
from repro.synthesis.clifford_group import (CLIFFORD_WORDS,
                                            clifford_group_elements,
                                            clifford_word_for,
                                            closest_clifford,
                                            is_clifford_unitary,
                                            merge_clifford_prefix)
from repro.synthesis.gridsynth import (approximate_rz, build_epsilon_net,
                                       sequence_to_circuit,
                                       synthesize_circuit_rotations,
                                       t_count_of_sequence)
from repro.synthesis.solovay_kitaev import (SolovayKitaevSynthesizer,
                                            bloch_axis_angle,
                                            group_commutator_decompose,
                                            rotation_matrix)
from repro.synthesis.verification import (gate_matrix, invert_sequence,
                                          operator_distance, process_fidelity,
                                          rz_unitary, sequence_unitary,
                                          verify_sequence)


# ---------------------------------------------------------------------------
# Verification primitives
# ---------------------------------------------------------------------------

class TestVerification:
    def test_gate_matrix_unknown_gate(self):
        with pytest.raises(ValueError):
            gate_matrix("toffoli")

    def test_all_gate_matrices_are_unitary(self):
        for name in ("h", "s", "sdg", "t", "tdg", "x", "y", "z", "sx", "i"):
            matrix = gate_matrix(name)
            np.testing.assert_allclose(matrix @ matrix.conj().T, np.eye(2),
                                       atol=1e-12)

    def test_sequence_unitary_order(self):
        """['h', 't'] means H first, so the matrix is T·H."""
        expected = gate_matrix("t") @ gate_matrix("h")
        np.testing.assert_allclose(sequence_unitary(["h", "t"]), expected,
                                   atol=1e-12)

    def test_invert_sequence_roundtrip(self):
        word = ("h", "t", "s", "tdg", "h")
        product = sequence_unitary(word + invert_sequence(word))
        assert operator_distance(product, np.eye(2)) < 1e-12

    def test_invert_sequence_unknown_gate(self):
        with pytest.raises(ValueError):
            invert_sequence(["cx"])

    def test_operator_distance_phase_invariance(self):
        target = rz_unitary(0.3)
        assert operator_distance(target, np.exp(1j * 1.1) * target) < 1e-12

    def test_operator_distance_positive_for_distinct(self):
        assert operator_distance(gate_matrix("h"), gate_matrix("t")) > 0.1

    def test_process_fidelity_bounds(self):
        assert process_fidelity(gate_matrix("h"), gate_matrix("h")) == pytest.approx(1.0)
        assert 0.0 <= process_fidelity(gate_matrix("h"), gate_matrix("t")) < 1.0

    def test_verify_sequence(self):
        assert verify_sequence(["t", "t"], gate_matrix("s"), 1e-10)
        assert not verify_sequence(["t"], gate_matrix("s"), 1e-10)

    def test_rz_unitary_composition(self):
        product = rz_unitary(0.4) @ rz_unitary(0.6)
        np.testing.assert_allclose(product, rz_unitary(1.0), atol=1e-12)


# ---------------------------------------------------------------------------
# Clifford group
# ---------------------------------------------------------------------------

class TestCliffordGroup:
    def test_group_has_24_elements(self):
        assert len(clifford_group_elements()) == 24
        assert len(CLIFFORD_WORDS) == 24

    def test_elements_are_distinct_up_to_phase(self):
        elements = clifford_group_elements()
        for i in range(len(elements)):
            for j in range(i + 1, len(elements)):
                assert operator_distance(elements[i].matrix,
                                         elements[j].matrix) > 1e-6

    def test_words_reproduce_matrices(self):
        for element in clifford_group_elements():
            np.testing.assert_allclose(sequence_unitary(element.word),
                                       element.matrix, atol=1e-12)

    def test_group_closure_under_multiplication(self):
        elements = clifford_group_elements()
        rng = np.random.default_rng(3)
        for _ in range(20):
            a, b = rng.integers(0, 24, size=2)
            product = elements[a].matrix @ elements[b].matrix
            assert is_clifford_unitary(product)

    def test_closest_clifford_identity(self):
        element, distance = closest_clifford(np.eye(2))
        assert element.word == ()
        assert distance < 1e-12

    def test_closest_clifford_shape_check(self):
        with pytest.raises(ValueError):
            closest_clifford(np.eye(4))

    def test_t_gate_is_not_clifford(self):
        assert not is_clifford_unitary(gate_matrix("t"))

    def test_clifford_word_for_rejects_non_clifford(self):
        with pytest.raises(ValueError):
            clifford_word_for(gate_matrix("t"))

    def test_s_gate_equals_two_t_gates_word(self):
        word = clifford_word_for(sequence_unitary(["t", "t"]))
        assert operator_distance(sequence_unitary(word), gate_matrix("s")) < 1e-10

    def test_merge_clifford_prefix_preserves_unitary_and_t_count(self):
        word = ("h", "s", "h", "t", "x", "z", "s", "t", "h", "h")
        merged = merge_clifford_prefix(word)
        assert t_count_of_sequence(merged) == t_count_of_sequence(word)
        assert operator_distance(sequence_unitary(merged),
                                 sequence_unitary(word)) < 1e-10
        assert len(merged) <= len(word)


# ---------------------------------------------------------------------------
# ε-net synthesis (gridsynth stand-in)
# ---------------------------------------------------------------------------

class TestEpsilonNet:
    def test_net_grows_with_t_count(self):
        small = build_epsilon_net(2)
        large = build_epsilon_net(4)
        assert large.size > small.size

    def test_net_contains_cliffords_at_zero_t(self):
        net = build_epsilon_net(2)
        zero_t = [point for point in net.points() if point.t_count == 0]
        assert len(zero_t) == 24

    def test_net_points_have_consistent_t_counts(self):
        net = build_epsilon_net(3)
        for point in net.points():
            assert t_count_of_sequence(point.word) == point.t_count

    def test_nearest_exact_for_clifford_angles(self):
        net = build_epsilon_net(2)
        point, distance = net.nearest(rz_unitary(math.pi / 2))
        assert distance < 1e-8
        assert point.t_count == 0

    def test_nearest_t_budget(self):
        net = build_epsilon_net(4)
        point, _ = net.nearest(rz_unitary(math.pi / 4), t_budget=1)
        assert point.t_count <= 1
        with pytest.raises(ValueError):
            net.nearest(rz_unitary(0.3), t_budget=-1)

    def test_resolution_improves_with_t_count(self):
        coarse = build_epsilon_net(2).resolution(num_samples=16)
        fine = build_epsilon_net(5).resolution(num_samples=16)
        assert fine < coarse


class TestApproximateRz:
    def test_clifford_angle_needs_no_t_gates(self):
        result = approximate_rz(math.pi, target_error=1e-6)
        assert result.t_count == 0
        assert result.achieved_error < 1e-8
        assert result.explicit

    def test_t_angle_synthesizes_exactly(self):
        result = approximate_rz(math.pi / 4, target_error=1e-6)
        assert result.achieved_error < 1e-8
        assert result.t_count == 1

    def test_generic_angle_meets_loose_target(self):
        result = approximate_rz(0.37, target_error=0.15, max_net_t_count=5)
        assert result.meets_target
        assert result.sequence

    def test_sequence_implements_reported_error(self):
        result = approximate_rz(1.234, target_error=0.2, max_net_t_count=5)
        measured = operator_distance(sequence_unitary(result.sequence),
                                     rz_unitary(1.234))
        assert measured == pytest.approx(result.achieved_error, abs=1e-9)

    def test_model_fallback_for_tight_precision(self):
        result = approximate_rz(0.61, target_error=1e-9, max_net_t_count=3,
                                use_solovay_kitaev=False)
        assert not result.explicit
        # The fallback T-count follows the Ross–Selinger scaling model.
        assert result.t_count >= 3 * math.log2(1.0 / 1e-9) - 10

    def test_invalid_target_error(self):
        with pytest.raises(ValueError):
            approximate_rz(0.5, target_error=0.0)

    def test_sequence_to_circuit(self):
        result = approximate_rz(math.pi / 4, target_error=1e-6)
        circuit = sequence_to_circuit(result.sequence, qubit=0)
        np.testing.assert_allclose(
            np.abs(circuit_unitary(circuit)),
            np.abs(sequence_unitary(result.sequence)), atol=1e-10)

    def test_synthesize_circuit_rotations_replaces_rz(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(math.pi / 4, 0)
        circuit.cx(0, 1)
        circuit.rz(math.pi / 2, 1)
        synthesized, reports = synthesize_circuit_rotations(circuit,
                                                            target_error=1e-6)
        assert len(reports) == 2
        assert synthesized.count_ops().get("rz", 0) == 0
        assert synthesized.count_ops().get("cx", 0) == 1

    @pytest.mark.parametrize("gate,theta", [("rx", math.pi / 2),
                                            ("ry", math.pi / 2)])
    def test_synthesize_circuit_rotations_axis_conjugation(self, gate, theta):
        """Synthesized rx/ry rotations implement the original unitary."""
        circuit = QuantumCircuit(1)
        getattr(circuit, gate)(theta, 0)
        synthesized, _ = synthesize_circuit_rotations(circuit,
                                                      target_error=1e-6)
        distance = operator_distance(circuit_unitary(synthesized),
                                     circuit_unitary(circuit))
        assert distance < 1e-6


# ---------------------------------------------------------------------------
# Solovay–Kitaev
# ---------------------------------------------------------------------------

class TestBlochGeometry:
    @pytest.mark.parametrize("axis,angle", [
        ([0, 0, 1], 0.7), ([1, 0, 0], 1.3), ([0, 1, 0], 2.1),
        ([1, 1, 1], 0.4),
    ])
    def test_axis_angle_roundtrip(self, axis, angle):
        matrix = rotation_matrix(axis, angle)
        recovered_axis, recovered_angle = bloch_axis_angle(matrix)
        expected_axis = np.asarray(axis, dtype=float)
        expected_axis = expected_axis / np.linalg.norm(expected_axis)
        assert recovered_angle == pytest.approx(angle, abs=1e-9)
        np.testing.assert_allclose(recovered_axis, expected_axis, atol=1e-9)

    def test_identity_has_zero_angle(self):
        _, angle = bloch_axis_angle(np.eye(2))
        assert angle == pytest.approx(0.0, abs=1e-12)

    def test_group_commutator_reconstructs_rotation(self):
        target = rotation_matrix([0.3, -0.5, 0.81], 0.9)
        v, w = group_commutator_decompose(target)
        commutator = v @ w @ v.conj().T @ w.conj().T
        assert operator_distance(commutator, target) < 1e-8

    def test_group_commutator_of_identity(self):
        v, w = group_commutator_decompose(np.eye(2))
        np.testing.assert_allclose(v, np.eye(2), atol=1e-12)
        np.testing.assert_allclose(w, np.eye(2), atol=1e-12)


class TestSolovayKitaev:
    @pytest.fixture(scope="class")
    def synthesizer(self):
        return SolovayKitaevSynthesizer(build_epsilon_net(4))

    def test_depth_zero_matches_basic_approximation(self, synthesizer):
        target = rz_unitary(0.37)
        assert (synthesizer.synthesize(target, depth=0)
                == synthesizer.basic_approximation(target))

    def test_recursion_never_degrades_accuracy(self, synthesizer):
        for theta in (0.37, 1.111, 2.5):
            target = rz_unitary(theta)
            error_0 = synthesizer.synthesis_error(target, depth=0)
            error_1 = synthesizer.synthesis_error(target, depth=1)
            error_2 = synthesizer.synthesis_error(target, depth=2)
            assert error_1 <= error_0 + 1e-12
            assert error_2 <= error_1 + 1e-12

    def test_recursion_improves_generic_target(self, synthesizer):
        target = rz_unitary(0.37)
        assert (synthesizer.synthesis_error(target, depth=2)
                < synthesizer.synthesis_error(target, depth=0))

    def test_input_validation(self, synthesizer):
        with pytest.raises(ValueError):
            synthesizer.synthesize(np.eye(4), depth=1)
        with pytest.raises(ValueError):
            synthesizer.synthesize(np.eye(2), depth=-1)


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.05, max_value=2 * math.pi - 0.05))
def test_property_synthesis_error_matches_reported(theta):
    """approximate_rz always reports the error its sequence actually achieves."""
    result = approximate_rz(theta, target_error=0.3, max_net_t_count=4,
                            use_solovay_kitaev=False)
    measured = operator_distance(sequence_unitary(result.sequence),
                                 rz_unitary(theta))
    assert measured == pytest.approx(result.achieved_error, abs=1e-9)
    assert result.t_count >= t_count_of_sequence(result.sequence) or result.explicit
