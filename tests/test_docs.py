"""Documentation health checks.

Three gates keep the docs truthful as the code evolves:

* every ``python`` code fence in ``README.md`` must *execute* cleanly
  against the installed package (quickstarts that rot are worse than none);
* every ``python`` code fence in ``docs/*.md`` must at least compile
  (some intentionally reference user-defined placeholder classes);
* every relative link in README/docs must point at a file that exists, and
  every exported name in ``repro.__all__`` must carry a real docstring.
"""

import inspect
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md"))

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)\)")


def python_snippets(path):
    return _FENCE.findall(path.read_text())


def test_readme_exists_with_required_sections():
    text = README.read_text()
    for heading in ("Install", "Quickstart", "Package map",
                    "Running the tests", "Running the benchmarks"):
        assert heading in text, f"README.md is missing the {heading!r} section"


def test_readme_snippets_execute():
    snippets = python_snippets(README)
    assert snippets, "README.md should contain python quickstart snippets"
    for index, snippet in enumerate(snippets):
        namespace = {}
        try:
            exec(compile(snippet, f"README.md[snippet {index}]", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"README snippet {index} failed: {error}\n{snippet}")


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_compile(doc):
    for index, snippet in enumerate(python_snippets(doc)):
        compile(snippet, f"{doc.name}[snippet {index}]", "exec")


@pytest.mark.parametrize("path", [README] + DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    text = path.read_text()
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), \
            f"{path.name} links to missing file {target!r}"


def test_architecture_doc_covers_the_subsystem():
    doc = (REPO_ROOT / "docs" / "architecture.md").read_text()
    for term in ("Backend", "registry", "route_task", "NoiseModel",
                 "version", "term_cache_key", "evaluate_observable",
                 "lifecycle", "kernels"):
        assert term in doc, f"architecture.md should document {term!r}"


def test_every_public_export_has_a_docstring():
    import repro

    missing = []
    for name in repro.__all__:
        if name == "__version__":
            continue
        doc = inspect.getdoc(getattr(repro, name)) or ""
        if len(doc) < 60:
            missing.append(name)
    assert not missing, \
        f"public exports lack substantial docstrings: {missing}"
