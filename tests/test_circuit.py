"""Tests for the QuantumCircuit IR."""

import math

import pytest

from repro.circuits import Parameter, ParameterVector, QuantumCircuit
from repro.circuits.circuit import Instruction
from repro.circuits.gates import Gate


class TestConstruction:
    def test_gate_helpers_append_instructions(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.3, 2).measure_all()
        counts = qc.count_ops()
        assert counts == {"h": 1, "cx": 1, "rz": 1, "measure": 3}

    def test_qubit_bounds_checked(self):
        qc = QuantumCircuit(2)
        with pytest.raises(IndexError):
            qc.h(2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Gate("cx"), (1, 1))

    def test_needs_at_least_one_qubit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_size_excludes_barriers(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().cx(0, 1)
        assert qc.size() == 2


class TestStructure:
    def test_depth_of_serial_chain(self):
        qc = QuantumCircuit(1)
        for _ in range(5):
            qc.h(0)
        assert qc.depth() == 5

    def test_depth_of_parallel_gates(self):
        qc = QuantumCircuit(3)
        qc.h(0).h(1).h(2)
        assert qc.depth() == 1

    def test_two_qubit_depth_only_counts_entanglers(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).h(2).cx(1, 2)
        assert qc.two_qubit_depth() == 2

    def test_layers_partition_all_instructions(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).cx(0, 1).cx(2, 3).h(2)
        layers = qc.layers()
        total = sum(len(layer) for layer in layers)
        assert total == qc.size()
        for layer in layers:
            qubits = [q for inst in layer for q in inst.qubits]
            assert len(qubits) == len(set(qubits))

    def test_nonclifford_count(self):
        qc = QuantumCircuit(2)
        qc.h(0).t(0).rz(math.pi / 2, 1).rz(0.3, 1)
        assert qc.num_nonclifford_gates() == 2

    def test_is_clifford(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).s(1)
        assert qc.is_clifford()
        qc.t(0)
        assert not qc.is_clifford()


class TestParameters:
    def test_ordered_parameters_follow_first_appearance(self):
        theta = ParameterVector("t", 3)
        qc = QuantumCircuit(2)
        qc.rz(theta[2], 0).rx(theta[0], 1).rz(theta[1], 0)
        names = [p.name for p in qc.ordered_parameters()]
        assert names == ["t[2]", "t[0]", "t[1]"]

    def test_bind_parameters_by_sequence(self):
        theta = ParameterVector("t", 2)
        qc = QuantumCircuit(1)
        qc.rz(theta[0], 0).rx(theta[1], 0)
        bound = qc.bind_parameters([0.1, 0.2])
        assert bound.num_parameters == 0
        assert bound[0].params[0] == pytest.approx(0.1)

    def test_bind_parameters_length_mismatch_raises(self):
        theta = ParameterVector("t", 2)
        qc = QuantumCircuit(1)
        qc.rz(theta[0], 0).rx(theta[1], 0)
        with pytest.raises(ValueError):
            qc.bind_parameters([0.1])

    def test_binding_expression_parameters(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rz(2 * theta, 0)
        bound = qc.bind_parameters({theta: 0.25})
        assert bound[0].params[0] == pytest.approx(0.5)


class TestTransformations:
    def test_compose_appends_on_mapped_qubits(self):
        a = QuantumCircuit(3)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b, qubits=[2, 1])
        assert combined[-1].qubits == (2, 1)

    def test_compose_size_mismatch_raises(self):
        a = QuantumCircuit(1)
        b = QuantumCircuit(3)
        with pytest.raises(ValueError):
            a.compose(b)

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).s(1)
        inv = qc.inverse()
        assert [inst.name for inst in inv] == ["sdg", "cx", "h"]

    def test_inverse_of_measurement_raises(self):
        qc = QuantumCircuit(1)
        qc.measure(0)
        with pytest.raises(ValueError):
            qc.inverse()

    def test_without_measurements(self):
        qc = QuantumCircuit(2)
        qc.h(0).measure_all()
        assert not qc.without_measurements().has_measurements()

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        copy = qc.copy()
        copy.x(0)
        assert qc.size() == 1
        assert copy.size() == 2

    def test_equality(self):
        a = QuantumCircuit(2)
        a.h(0).cx(0, 1)
        b = QuantumCircuit(2)
        b.h(0).cx(0, 1)
        assert a == b
        b.x(1)
        assert a != b

    def test_draw_lists_instructions(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert "h" in qc.draw()


class TestFingerprint:
    def test_identical_construction_matches(self):
        a = QuantumCircuit(3)
        a.h(0).cx(0, 1).rz(0.25, 2)
        b = QuantumCircuit(3)
        b.h(0).cx(0, 1).rz(0.25, 2)
        assert a.fingerprint() == b.fingerprint()

    def test_name_and_metadata_do_not_contribute(self):
        a = QuantumCircuit(2, name="first")
        a.h(0)
        b = QuantumCircuit(2, name="second")
        b.h(0)
        b.metadata["ansatz"] = "whatever"
        assert a.fingerprint() == b.fingerprint()

    def test_parameter_value_sensitivity(self):
        a = QuantumCircuit(1)
        a.rz(0.3, 0)
        b = QuantumCircuit(1)
        b.rz(0.3 + 1e-12, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_gate_order_sensitivity(self):
        a = QuantumCircuit(2)
        a.h(0).x(1)
        b = QuantumCircuit(2)
        b.x(1).h(0)
        assert a.fingerprint() != b.fingerprint()

    def test_qubit_index_sensitivity(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_qubit_count_sensitivity(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(3)
        b.h(0)
        assert a.fingerprint() != b.fingerprint()

    def test_gate_name_not_confusable_with_qubit_bytes(self):
        a = QuantumCircuit(2)
        a.h(0).h(1)
        b = QuantumCircuit(2)
        b.h(1).h(0)
        assert a.fingerprint() != b.fingerprint()

    def test_symbolic_parameters_hash_by_expression(self):
        theta = Parameter("theta")
        a = QuantumCircuit(1)
        a.rz(theta, 0)
        b = QuantumCircuit(1)
        b.rz(Parameter("theta"), 0)
        c = QuantumCircuit(1)
        c.rz(Parameter("phi"), 0)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_binding_changes_fingerprint(self):
        theta = Parameter("theta")
        template = QuantumCircuit(1)
        template.rz(theta, 0)
        bound_a = template.bind_parameters({theta: 0.1})
        bound_b = template.bind_parameters({theta: 0.2})
        bound_a2 = template.bind_parameters({theta: 0.1})
        assert bound_a.fingerprint() != template.fingerprint()
        assert bound_a.fingerprint() != bound_b.fingerprint()
        assert bound_a.fingerprint() == bound_a2.fingerprint()

    def test_fingerprint_is_stable_hex_string(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        fp = qc.fingerprint()
        assert fp == qc.fingerprint()
        assert isinstance(fp, str) and len(fp) == 32
        int(fp, 16)  # valid hex

    def test_bound_template_matches_directly_built_circuit(self):
        theta = Parameter("theta")
        template = QuantumCircuit(1)
        template.rz(theta, 0)
        direct = QuantumCircuit(1)
        direct.rz(0.375, 0)
        assert template.bind_parameters({theta: 0.375}).fingerprint() \
            == direct.fingerprint()
