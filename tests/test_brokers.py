"""Distributed shard brokers (PR 9): ExecutionPolicy + spool semantics.

The broker seam keeps one invariant sacred: values are bitwise independent
of *where* shards run.  That makes every distributed scenario testable by
exact equality — the suite covers:

* :class:`ExecutionPolicy` — legacy-keyword coercion, resolution order,
  the single ``from_env`` reader, the wire (payload) form, and the
  ``max_workers <= 0`` bugfix (ValueError, never a silent clamp);
* :func:`make_broker` — spec resolution (None/"local"/path/"spool:PATH"/
  instance passthrough) and rejection of junk;
* spool mechanics — atomic claim-by-rename under thread contention,
  lease expiry and requeue (with the injected fault directive stripped),
  the claimed-without-lease grace period, result files surviving ``ack``
  (the warm-resume checkpoint) but not ``nack``;
* the parent's work-stealing path (a spool with zero workers drains);
* elastic ``repro-worker`` subprocesses — a two-worker sweep bitwise
  equal to the pooled run and 1e-12-equal to inline, a SIGKILLed worker
  mid-shard whose lease expires and whose shard another worker finishes
  (counted in the FaultReport), and a killed sweep resuming warm from the
  checkpoint cache with zero recomputation of flushed points.

NOTE: spool-brokered QEC assertions elsewhere must check failure *counts*
only — the parent steal path executes in-process, so decoder diagnostic
counters can double-count for stolen shards.
"""

import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.ansatz import FullyConnectedAnsatz
from repro.execution import (ExecutionError, ExecutionPolicy, Executor,
                             FilesystemBroker, LocalProcessBroker,
                             ShardRetryPolicy, ShardSpec, TransientFault,
                             inject_faults, make_broker, resolve_workers)
from repro.execution.broker import BROKER_SPOOL_ENV, SpoolLayout
from repro.execution.sharding import (SHARD_RETRIES_ENV, WORKERS_ENV,
                                      ShardPlanner, run_sharded)
from repro.operators import ising_hamiltonian
from repro.worker import WorkerAgent

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"deterministic failure for {value}")


_FLAKY_CALLS = {"count": 0}


def _flaky_square(value):
    """Fails transiently once; runs in-parent via the broker steal path,
    so the module-global attempt counter is visible to the test."""
    _FLAKY_CALLS["count"] += 1
    if _FLAKY_CALLS["count"] == 1:
        raise TransientFault("first attempt fails")
    return value * value


def _process_plan(workers, items):
    return ShardPlanner(max_workers=workers).plan(items, hints=("process",),
                                                  parallel="process")


def _fast_policy(**overrides):
    defaults = dict(max_retries=3, backoff_base=0.0)
    defaults.update(overrides)
    return ShardRetryPolicy(**defaults)


def _sweep_fixture(num_qubits=4, points=24, seed=7):
    template = FullyConnectedAnsatz(num_qubits, depth=1).build()
    rng = np.random.default_rng(seed)
    parameter_sets = rng.standard_normal(
        (points, len(template.ordered_parameters()))).tolist()
    return template, parameter_sets, ising_hamiltonian(num_qubits)


def _spawn_worker(spool, *extra):
    """One elastic repro-worker subprocess attached to ``spool``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.worker", "--spool", os.fspath(spool),
         "--poll-interval", "0.01", *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait_for_census(spool, count, timeout=60.0):
    """Block until ``count`` workers have censused (imports are slow)."""
    layout = SpoolLayout(spool)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            names = [name for name in os.listdir(layout.workers)
                     if name.endswith(".json")]
        except FileNotFoundError:
            names = []
        if len(names) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"{count} worker(s) never appeared in the census")


def _stop_workers(spool, procs):
    layout = SpoolLayout(spool)
    try:
        with open(layout.stop_file, "w", encoding="utf-8") as handle:
            handle.write("stop")
    except OSError:
        pass
    for proc in procs:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _census(spool):
    layout = SpoolLayout(spool)
    records = []
    for name in sorted(os.listdir(layout.workers)):
        if name.endswith(".json"):
            with open(os.path.join(layout.workers, name),
                      encoding="utf-8") as handle:
                records.append(json.load(handle))
    return records


# ---------------------------------------------------------------------------
# ExecutionPolicy
# ---------------------------------------------------------------------------


class TestExecutionPolicy:

    def test_kwargs_win_over_policy(self):
        base = ExecutionPolicy(parallel="none", max_workers=3)
        coerced = ExecutionPolicy.coerce(base, parallel="process")
        assert coerced.parallel == "process"
        assert coerced.max_workers == 3

    def test_coerce_accepts_payload_dict(self):
        coerced = ExecutionPolicy.coerce({"parallel": "thread"},
                                         max_workers=2)
        assert coerced == ExecutionPolicy(parallel="thread", max_workers=2)

    def test_invalid_parallel_mode_rejected(self):
        with pytest.raises(ExecutionError, match="parallel"):
            ExecutionPolicy(parallel="bogus")

    def test_retry_type_checked(self):
        with pytest.raises(ExecutionError, match="ShardRetryPolicy"):
            ExecutionPolicy(retry=5)

    @pytest.mark.parametrize("workers", [0, -2])
    def test_zero_or_negative_workers_rejected(self, workers):
        # The bugfix: an explicit nonsense worker count is an error that
        # names the env-var escape hatch, never a silent clamp to 1.
        with pytest.raises(ValueError, match=WORKERS_ENV):
            ExecutionPolicy(max_workers=workers)

    def test_zero_workers_rejected_everywhere(self):
        with pytest.raises(ValueError, match="max_workers"):
            Executor(max_workers=0)
        with pytest.raises(ValueError):
            resolve_workers(0)
        template, points, observable = _sweep_fixture(num_qubits=2, points=2)
        with pytest.raises(ValueError, match="max_workers"):
            Executor(use_cache=False).evaluate_sweep(
                template, points, observable, backend="statevector",
                max_workers=-1)

    def test_from_env_reads_all_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WORKERS_ENV, "3")
        monkeypatch.setenv(BROKER_SPOOL_ENV, str(tmp_path / "spool"))
        monkeypatch.setenv(SHARD_RETRIES_ENV, "5")
        policy = ExecutionPolicy.from_env()
        assert policy.max_workers == 3
        assert policy.broker == str(tmp_path / "spool")
        assert policy.retry.max_retries == 5

    def test_from_env_rejects_zero_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            ExecutionPolicy.from_env()

    def test_merged_over_precedence(self):
        call = ExecutionPolicy(parallel="process")
        base = ExecutionPolicy(parallel="none", max_workers=4,
                               broker="local")
        merged = call.merged_over(base)
        assert merged.parallel == "process"  # the more specific layer wins
        assert merged.max_workers == 4       # unset fields fall through
        assert merged.broker == "local"

    def test_payload_round_trip(self):
        policy = ExecutionPolicy(
            parallel="process", max_workers=2, broker="spool:/tmp/q",
            retry=ShardRetryPolicy(max_retries=7, backoff_base=0.0,
                                   backoff_cap=1.0, timeout=9.0))
        assert ExecutionPolicy.from_payload(policy.to_payload()) == policy

    def test_payload_drops_live_broker_instance(self, tmp_path):
        policy = ExecutionPolicy(broker=FilesystemBroker(tmp_path / "s"))
        assert "broker" not in policy.to_payload()

    def test_from_payload_rejects_unknown_keys(self):
        with pytest.raises(ExecutionError, match="unknown"):
            ExecutionPolicy.from_payload({"parallelism": 4})
        with pytest.raises(ExecutionError, match="unknown"):
            ExecutionPolicy.from_payload({"retry": {"attempts": 2}})


# ---------------------------------------------------------------------------
# make_broker
# ---------------------------------------------------------------------------


class TestMakeBroker:

    def test_default_is_local(self):
        assert isinstance(make_broker(None, 2), LocalProcessBroker)
        assert isinstance(make_broker("local", 2), LocalProcessBroker)
        assert make_broker(None, 2).name == "local"

    def test_path_string_is_filesystem(self, tmp_path):
        broker = make_broker(str(tmp_path / "spool"), 2)
        assert isinstance(broker, FilesystemBroker)
        assert broker.spool == str(tmp_path / "spool")

    def test_spool_prefix_and_pathlike(self, tmp_path):
        broker = make_broker("spool:" + str(tmp_path / "a"), 2)
        assert broker.spool == str(tmp_path / "a")
        assert isinstance(make_broker(tmp_path / "b", 2), FilesystemBroker)

    def test_instance_passes_through(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "spool")
        assert make_broker(broker, 4) is broker

    def test_junk_rejected(self):
        with pytest.raises(ExecutionError):
            make_broker(42, 2)


# ---------------------------------------------------------------------------
# spool mechanics (in-process)
# ---------------------------------------------------------------------------


class TestSpoolMechanics:

    def test_claim_is_atomic_under_contention(self, tmp_path):
        spool = tmp_path / "spool"
        broker = FilesystemBroker(spool, steal=False)
        specs = [ShardSpec(i, _square, (i,)) for i in range(24)]
        submitted = broker.submit(specs)
        claimed, lock = [], threading.Lock()

        def worker(identity):
            agent = WorkerAgent(spool, worker_id=f"claimant-{identity}")
            while True:
                shard_id = agent._claim_one()
                if shard_id is None:
                    return
                with lock:
                    claimed.append(shard_id)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every task claimed exactly once: rename has exactly one winner.
        assert sorted(claimed) == sorted(submitted)
        assert len(set(claimed)) == len(specs)
        assert SpoolLayout(spool).pending_task_ids() == []

    def test_lease_expiry_requeues_and_strips_directive(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "spool", lease_seconds=0.2,
                                  steal=False)
        [shard_id] = broker.submit(
            [ShardSpec(0, _square, (3,), directive="chaos-kill")])
        layout = broker.layout
        envelope = layout.load_envelope(layout.task(shard_id))
        assert envelope["directive"] == "chaos-kill"
        # A claimant takes the task, leases it, then dies (lease in the
        # past, never renewed).
        os.rename(layout.task(shard_id), layout.claim(shard_id))
        layout.write_lease(shard_id, "ghost", -1.0)
        assert broker.heartbeat() == [shard_id]
        # Requeued for the next claimant — without the kill directive, so
        # a chaos fault fires once instead of killing every claimant.
        assert os.path.exists(layout.task(shard_id))
        assert not os.path.exists(layout.claim(shard_id))
        assert layout.load_envelope(layout.task(shard_id))["directive"] \
            is None

    def test_claim_without_lease_gets_grace_period(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "spool", lease_seconds=0.3,
                                  steal=False)
        [shard_id] = broker.submit([ShardSpec(0, _square, (2,))])
        layout = broker.layout
        os.rename(layout.task(shard_id), layout.claim(shard_id))
        # Claimed, lease not yet written: the claimant gets one lease
        # period before being declared dead.
        assert broker.heartbeat() == []
        time.sleep(0.4)
        assert broker.heartbeat() == [shard_id]

    def test_result_survives_ack_for_warm_resume(self, tmp_path):
        spool = tmp_path / "spool"
        broker = FilesystemBroker(spool)  # steal: parent computes
        [shard_id] = broker.submit([ShardSpec(0, _square, (9,))])
        [outcome] = broker.poll(10.0)
        assert outcome.ok and outcome.value == 81
        broker.ack(shard_id)
        layout = SpoolLayout(spool)
        results = os.listdir(layout.results)
        assert len(results) == 1  # the content-named checkpoint stays
        # An identical resubmission (same fn, same payload → same digest)
        # is served from the persisted result without recomputing: no
        # stealing, no workers, still instantly done.
        warm = FilesystemBroker(spool, steal=False)
        [resumed_id] = warm.submit([ShardSpec(0, _square, (9,))])
        [cached] = warm.poll(10.0)
        assert cached.ok and cached.value == 81
        assert warm.stolen == 0
        warm.ack(resumed_id)

    def test_nack_drops_the_result(self, tmp_path):
        spool = tmp_path / "spool"
        broker = FilesystemBroker(spool)
        [shard_id] = broker.submit([ShardSpec(0, _square, (5,))])
        assert broker.poll(10.0)[0].ok
        broker.nack(shard_id, "timeout")
        assert os.listdir(SpoolLayout(spool).results) == []


# ---------------------------------------------------------------------------
# run_sharded over a FilesystemBroker (parent steal path)
# ---------------------------------------------------------------------------


class TestRunShardedFilesystem:

    def test_spool_with_no_workers_drains_by_stealing(self, tmp_path):
        payloads = [(value,) for value in range(8)]
        broker = FilesystemBroker(tmp_path / "spool", poll_interval=0.01)
        results = run_sharded(_process_plan(2, len(payloads)), _square,
                              payloads, policy=_fast_policy(),
                              broker=broker)
        assert results == [value * value for value in range(8)]
        assert broker.stolen == len(payloads)

    def test_transient_fault_retried_and_reported(self, tmp_path):
        _FLAKY_CALLS["count"] = 0
        reports = []
        broker = FilesystemBroker(tmp_path / "spool", poll_interval=0.01)
        results = run_sharded(_process_plan(2, 3), _flaky_square,
                              [(1,), (2,), (3,)], policy=_fast_policy(),
                              broker=broker, on_fault=reports.append)
        assert results == [1, 4, 9]
        assert len(reports) == 1
        assert reports[0].broker == "filesystem"
        assert any(cause.startswith("TransientFault")
                   for cause in reports[0].causes)

    def test_clean_run_stays_callback_free(self, tmp_path):
        reports = []
        broker = FilesystemBroker(tmp_path / "spool", poll_interval=0.01)
        run_sharded(_process_plan(2, 3), _square, [(1,), (2,), (3,)],
                    policy=_fast_policy(), broker=broker,
                    on_fault=reports.append)
        assert reports == []

    def test_deterministic_error_propagates(self, tmp_path):
        broker = FilesystemBroker(tmp_path / "spool", poll_interval=0.01)
        with pytest.raises(ValueError, match="deterministic"):
            run_sharded(_process_plan(2, 3), _boom, [(1,), (2,), (3,)],
                        policy=_fast_policy(), broker=broker)


# ---------------------------------------------------------------------------
# elastic repro-worker subprocesses
# ---------------------------------------------------------------------------


class TestElasticWorkers:

    def test_two_worker_sweep_matches_pooled_and_inline(self, tmp_path):
        template, points, observable = _sweep_fixture()
        inline = Executor(use_cache=False).evaluate_sweep(
            template, points, observable, backend="statevector",
            parallel="none")
        pooled = Executor(use_cache=False).evaluate_sweep(
            template, points, observable, backend="statevector",
            parallel="process", max_workers=2)
        spool = tmp_path / "spool"
        procs = [_spawn_worker(spool, "--idle-exit", "30")
                 for _ in range(2)]
        try:
            _wait_for_census(spool, 2)
            brokered = Executor(use_cache=False).evaluate_sweep(
                template, points, observable, backend="statevector",
                policy=ExecutionPolicy(parallel="process", max_workers=2,
                                       broker=str(spool)))
        finally:
            _stop_workers(spool, procs)
        # Point blocks depend only on qubit/point counts, so pooled and
        # spool-brokered dispatch submit byte-identical shard payloads:
        # the results are bitwise equal, and both match inline to 1e-12.
        assert np.array_equal(brokered, pooled)
        assert np.allclose(brokered, inline, atol=1e-12)
        census = _census(spool)
        assert len(census) == 2
        # The workers (not the parent steal path) did all twelve blocks.
        assert sum(record["shards_done"] for record in census) == 12

    def test_sigkilled_worker_lease_expires_and_run_recovers(self, tmp_path):
        spool = tmp_path / "spool"
        payloads = [(2, exponent) for exponent in range(6)]
        procs = [_spawn_worker(spool, "--lease-seconds", "0.5",
                               "--idle-exit", "30") for _ in range(2)]
        reports = []
        try:
            _wait_for_census(spool, 2)
            broker = FilesystemBroker(spool, lease_seconds=0.5,
                                      poll_interval=0.01, steal=False)
            with inject_faults("shard.kill=1/1"):
                results = run_sharded(_process_plan(2, len(payloads)), pow,
                                      payloads, policy=_fast_policy(),
                                      broker=broker,
                                      on_fault=reports.append)
        finally:
            _stop_workers(spool, procs)
        # The SIGKILLed worker's shard was requeued on lease expiry and
        # finished (directive stripped) by the surviving worker — bitwise
        # the same answer, and the expiry shows up in the FaultReport.
        assert results == [pow(2, exponent) for exponent in range(6)]
        assert len(reports) == 1
        assert reports[0].broker == "filesystem"
        assert reports[0].lease_expiries >= 1
        # Exactly one worker died: one exited cleanly via the stop file.
        exit_codes = sorted(proc.returncode for proc in procs)
        assert exit_codes.count(0) == 1

    def test_killed_sweep_resumes_warm_from_checkpoint_cache(self, tmp_path):
        template, points, observable = _sweep_fixture()
        inline = Executor(use_cache=False).evaluate_sweep(
            template, points, observable, backend="statevector",
            parallel="none")
        cache_dir = tmp_path / "cache"
        spool = tmp_path / "spool"
        policy = ExecutionPolicy(parallel="process", max_workers=2,
                                 broker=str(spool))
        # A "killed" multi-worker run: only half the sweep's blocks landed
        # (and were flushed through the disk cache) before it died.
        Executor(cache_dir=str(cache_dir)).evaluate_sweep(
            template, points[:12], observable, backend="statevector",
            policy=policy)
        # Resume against the same spool + cache: the flushed points are
        # served from the checkpoint cache, only the rest is computed.
        resumed = Executor(cache_dir=str(cache_dir))
        values = resumed.evaluate_sweep(template, points, observable,
                                        backend="statevector", policy=policy)
        assert np.allclose(values, inline, atol=1e-12)
        assert resumed.stats.backend_invocations.get("statevector", 0) == 12
        assert resumed.stats.term_cache_hits > 0
        # A full re-run recomputes nothing at all.
        rerun = Executor(cache_dir=str(cache_dir))
        again = rerun.evaluate_sweep(template, points, observable,
                                     backend="statevector", policy=policy)
        assert np.array_equal(again, values)
        assert rerun.stats.backend_invocations == {}
        assert rerun.stats.process_shards == 0
