"""Tests for gate definitions and their unitary matrices."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits.gates import (CX_MATRIX, Gate, H_MATRIX, S_MATRIX,
                                  T_MATRIX, controlled_on_matrix, gate_arity,
                                  gate_fidelity, is_clifford_angle, rx_matrix,
                                  ry_matrix, rz_matrix, rzz_matrix, u3_matrix,
                                  X_MATRIX, Z_MATRIX)
from repro.circuits.parameters import Parameter


def assert_unitary(matrix):
    dim = matrix.shape[0]
    np.testing.assert_allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


class TestStaticMatrices:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "sdg", "t", "tdg",
                                      "sx", "cx", "cz", "swap"])
    def test_all_static_gates_are_unitary(self, name):
        assert_unitary(Gate(name).matrix())

    def test_hadamard_squares_to_identity(self):
        np.testing.assert_allclose(H_MATRIX @ H_MATRIX, np.eye(2), atol=1e-12)

    def test_s_squared_is_z(self):
        np.testing.assert_allclose(S_MATRIX @ S_MATRIX, Z_MATRIX, atol=1e-12)

    def test_t_squared_is_s(self):
        np.testing.assert_allclose(T_MATRIX @ T_MATRIX, S_MATRIX, atol=1e-12)

    def test_cx_little_endian_control_is_bit_zero(self):
        # |control=1, target=0> is index 1; CX maps it to |1,1> = index 3.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        out = CX_MATRIX @ state
        assert abs(out[3]) == pytest.approx(1.0)

    def test_controlled_on_matrix_matches_cx_for_x(self):
        np.testing.assert_allclose(controlled_on_matrix(X_MATRIX), CX_MATRIX,
                                   atol=1e-12)


class TestRotations:
    @given(theta=st.floats(-2 * math.pi, 2 * math.pi, allow_nan=False))
    def test_rotations_are_unitary(self, theta):
        for build in (rx_matrix, ry_matrix, rz_matrix, rzz_matrix):
            assert_unitary(build(theta))

    def test_rz_pi_equals_z_up_to_phase(self):
        rz = rz_matrix(math.pi)
        phase = rz[0, 0] / Z_MATRIX[0, 0]
        np.testing.assert_allclose(rz, phase * Z_MATRIX, atol=1e-12)

    def test_rx_pi_equals_x_up_to_phase(self):
        rx = rx_matrix(math.pi)
        phase = rx[0, 1] / X_MATRIX[0, 1]
        np.testing.assert_allclose(rx, phase * X_MATRIX, atol=1e-12)

    def test_u3_reduces_to_ry(self):
        np.testing.assert_allclose(u3_matrix(0.7, 0.0, 0.0), ry_matrix(0.7),
                                   atol=1e-12)

    @given(theta=st.floats(-6, 6, allow_nan=False))
    def test_rotation_composition_adds_angles(self, theta):
        np.testing.assert_allclose(rz_matrix(theta) @ rz_matrix(-theta), np.eye(2),
                                   atol=1e-10)


class TestGateClassification:
    def test_clifford_angle_detection(self):
        assert is_clifford_angle(0.0)
        assert is_clifford_angle(math.pi / 2)
        assert is_clifford_angle(-3 * math.pi / 2)
        assert not is_clifford_angle(math.pi / 4)

    def test_rz_gate_cliffordness_depends_on_angle(self):
        assert Gate("rz", (math.pi,)).is_clifford
        assert not Gate("rz", (math.pi / 3,)).is_clifford

    def test_t_gate_is_not_clifford(self):
        assert not Gate("t").is_clifford

    def test_parameterized_gate_is_not_clifford(self):
        theta = Parameter("theta")
        assert not Gate("rz", (theta,)).is_clifford
        assert Gate("rz", (theta,)).is_parameterized

    def test_gate_arity(self):
        assert gate_arity("h") == 1
        assert gate_arity("cx") == 2
        with pytest.raises(ValueError):
            gate_arity("toffoli")

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(ValueError):
            Gate("rz", ())
        with pytest.raises(ValueError):
            Gate("h", (1.0,))

    def test_gate_inverse_roundtrip(self):
        for name in ("h", "s", "t", "x", "cx"):
            gate = Gate(name)
            product = gate.inverse().matrix() @ gate.matrix()
            np.testing.assert_allclose(product, np.eye(product.shape[0]), atol=1e-12)

    def test_rotation_inverse_negates_angle(self):
        gate = Gate("rz", (0.3,))
        np.testing.assert_allclose(gate.inverse().matrix() @ gate.matrix(),
                                   np.eye(2), atol=1e-12)

    def test_bind_resolves_symbolic_parameter(self):
        theta = Parameter("theta")
        gate = Gate("rz", (theta,)).bind({theta: math.pi})
        assert gate.is_clifford


class TestGateFidelity:
    def test_identical_unitaries_have_unit_fidelity(self):
        assert gate_fidelity(H_MATRIX, H_MATRIX) == pytest.approx(1.0)

    def test_orthogonal_unitaries_have_low_fidelity(self):
        value = gate_fidelity(X_MATRIX, Z_MATRIX)
        assert value == pytest.approx(1.0 / 3.0, abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gate_fidelity(H_MATRIX, CX_MATRIX)
