"""Tests for the unified execution-backend API (repro.execution)."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.execution import (Backend, BackendCapabilities,
                             BackendCapabilityError, BackendRegistry,
                             DensityMatrixBackend, ExecutionError,
                             ExecutionTask, Executor, ExpectationCache,
                             MAX_DENSITY_MATRIX_QUBITS,
                             PauliPropagationBackend, RoutingError,
                             StabilizerBackend, StatevectorBackend,
                             UnknownBackendError, available_backends, execute,
                             get_backend, observable_fingerprint, route_task)
from repro.operators import PauliSum, ising_hamiltonian
from repro.simulators import (DensityMatrixSimulator, NoiseModel,
                              StatevectorSimulator, depolarizing_channel,
                              expectation_value)


def clifford_circuit(num_qubits=4):
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def nonclifford_circuit(num_qubits=3):
    qc = clifford_circuit(num_qubits)
    qc.rz(0.37, 0)
    qc.ry(1.1, num_qubits - 1)
    return qc


def cx_noise():
    return NoiseModel().add_gate_error(depolarizing_channel(0.02, 2), ["cx"])


def fresh_executor(**kwargs):
    return Executor(**kwargs)


class TestTask:
    def test_needs_observable_xor_shots(self):
        qc = clifford_circuit(2)
        with pytest.raises(ExecutionError):
            ExecutionTask(qc)
        with pytest.raises(ExecutionError):
            ExecutionTask(qc, observable=ising_hamiltonian(2, 1.0), shots=10)

    def test_qubit_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionTask(clifford_circuit(3),
                          observable=ising_hamiltonian(4, 1.0))

    def test_cache_key_ignores_metadata(self):
        hamiltonian = ising_hamiltonian(2, 1.0)
        a = ExecutionTask(clifford_circuit(2), observable=hamiltonian,
                          metadata={"tag": "a"})
        b = ExecutionTask(clifford_circuit(2), observable=hamiltonian,
                          metadata={"tag": "b"})
        assert a.cache_key("statevector") == b.cache_key("statevector")

    def test_cache_key_separates_backends_and_noise(self):
        hamiltonian = ising_hamiltonian(2, 1.0)
        task = ExecutionTask(clifford_circuit(2), observable=hamiltonian)
        noisy = ExecutionTask(clifford_circuit(2), observable=hamiltonian,
                              noise_model=cx_noise())
        assert task.cache_key("statevector") != task.cache_key("stabilizer")
        assert task.cache_key("stabilizer") != noisy.cache_key("stabilizer")

    def test_observable_fingerprint_order_independent(self):
        a = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.5})
        b = PauliSum.from_label_dict({"XI": 0.5, "ZZ": 1.0})
        c = PauliSum.from_label_dict({"XI": 0.5, "ZZ": 1.1})
        assert observable_fingerprint(a) == observable_fingerprint(b)
        assert observable_fingerprint(a) != observable_fingerprint(c)


class TestRegistry:
    def test_all_four_simulators_reachable(self):
        assert set(available_backends()) >= {"statevector", "density_matrix",
                                             "stabilizer", "pauli_propagation"}
        for name in available_backends():
            backend = get_backend(name)
            assert isinstance(backend, Backend)
            assert backend.capabilities().name == name

    def test_aliases_resolve_to_shared_instance(self):
        assert get_backend("sv") is get_backend("statevector")
        assert get_backend("dm") is get_backend("density_matrix")
        assert get_backend("pp") is get_backend("pauli_propagation")

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("quantum_teleporter")
        message = str(excinfo.value)
        assert "quantum_teleporter" in message
        assert "statevector" in message

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        registry.register("custom", StatevectorBackend)
        with pytest.raises(ExecutionError):
            registry.register("custom", StatevectorBackend)
        registry.register("custom", DensityMatrixBackend, overwrite=True)
        assert registry.get("custom").name == "density_matrix"

    def test_create_returns_fresh_instances(self):
        registry = BackendRegistry()
        registry.register("statevector", StatevectorBackend)
        assert registry.create("statevector") is not registry.get("statevector")


class TestRouting:
    def test_clifford_noiseless_goes_to_stabilizer(self):
        task = ExecutionTask(clifford_circuit(4),
                             observable=ising_hamiltonian(4, 1.0))
        assert route_task(task) == "stabilizer"

    def test_clifford_noisy_goes_to_pauli_propagation(self):
        task = ExecutionTask(clifford_circuit(4),
                             observable=ising_hamiltonian(4, 1.0),
                             noise_model=cx_noise())
        assert route_task(task) == "pauli_propagation"

    def test_nonclifford_noiseless_goes_to_statevector(self):
        task = ExecutionTask(nonclifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0))
        assert route_task(task) == "statevector"

    def test_small_noisy_nonclifford_goes_to_density_matrix(self):
        task = ExecutionTask(nonclifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0),
                             noise_model=cx_noise())
        assert route_task(task) == "density_matrix"

    def test_large_noisy_nonclifford_is_unroutable(self):
        n = MAX_DENSITY_MATRIX_QUBITS + 1
        task = ExecutionTask(nonclifford_circuit(n),
                             observable=ising_hamiltonian(n, 1.0),
                             noise_model=cx_noise())
        with pytest.raises(RoutingError):
            route_task(task)

    def test_task_backend_overrides_routing(self):
        task = ExecutionTask(clifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0),
                             backend="sv")
        assert route_task(task) == "statevector"

    def test_noisy_clifford_sampling_goes_to_stabilizer(self):
        task = ExecutionTask(clifford_circuit(3), shots=10,
                             noise_model=cx_noise())
        assert route_task(task) == "stabilizer"

    def test_trivial_noise_model_counts_as_noiseless(self):
        task = ExecutionTask(clifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0),
                             noise_model=NoiseModel())
        assert route_task(task) == "stabilizer"


class TestBackendCapabilities:
    def test_statevector_rejects_noisy_tasks(self):
        backend = StatevectorBackend()
        task = ExecutionTask(clifford_circuit(2),
                             observable=ising_hamiltonian(2, 1.0),
                             noise_model=cx_noise())
        assert not backend.supports(task)
        with pytest.raises(BackendCapabilityError):
            backend.run_batch([task])

    def test_clifford_backends_reject_nonclifford_circuits(self):
        task = ExecutionTask(nonclifford_circuit(2),
                             observable=ising_hamiltonian(2, 1.0))
        for backend in (StabilizerBackend(), PauliPropagationBackend()):
            assert not backend.supports(task)

    def test_pauli_propagation_cannot_sample(self):
        task = ExecutionTask(clifford_circuit(2), shots=16)
        assert not PauliPropagationBackend().supports(task)

    def test_density_matrix_qubit_ceiling(self):
        n = MAX_DENSITY_MATRIX_QUBITS + 1
        task = ExecutionTask(clifford_circuit(n),
                             observable=ising_hamiltonian(n, 1.0))
        assert not DensityMatrixBackend().supports(task)


class TestCorrectness:
    def test_backends_agree_with_direct_simulators(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        noise = cx_noise()
        clifford = clifford_circuit(3)
        smooth = nonclifford_circuit(3)

        executor = fresh_executor()
        sv = executor.run(ExecutionTask(smooth, observable=hamiltonian),
                          backend="statevector")[0]
        assert sv.value == pytest.approx(
            StatevectorSimulator().expectation(smooth, hamiltonian))

        dm = executor.run(ExecutionTask(smooth, observable=hamiltonian,
                                        noise_model=noise),
                          backend="density_matrix")[0]
        assert dm.value == pytest.approx(
            DensityMatrixSimulator(noise).expectation(smooth, hamiltonian))

        pp = executor.run(ExecutionTask(clifford, observable=hamiltonian,
                                        noise_model=noise),
                          backend="pauli_propagation")[0]
        assert pp.value == pytest.approx(
            expectation_value(clifford, hamiltonian, noise))

        stab = executor.run(ExecutionTask(clifford, observable=hamiltonian),
                            backend="stabilizer")[0]
        assert stab.value == pytest.approx(
            StatevectorSimulator().expectation(clifford, hamiltonian))

    def test_auto_routing_executes_end_to_end(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        results = execute([
            ExecutionTask(clifford_circuit(3), observable=hamiltonian),
            ExecutionTask(clifford_circuit(3), observable=hamiltonian,
                          noise_model=cx_noise()),
            ExecutionTask(nonclifford_circuit(3), observable=hamiltonian),
        ])
        assert [r.backend_name for r in results] == \
            ["stabilizer", "pauli_propagation", "statevector"]
        for result in results:
            assert math.isfinite(result.value)

    def test_sampling_task_returns_counts(self):
        executor = fresh_executor()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result = executor.run(ExecutionTask(qc, shots=64),
                              backend="statevector")[0]
        assert result.counts is not None and result.value is None
        assert sum(result.counts.values()) == 64
        assert set(result.counts) <= {"00", "11"}


class TestDedupAndCache:
    def test_duplicates_collapse_to_one_invocation(self):
        """Acceptance: batched execute() with duplicates beats the naive loop."""
        hamiltonian = ising_hamiltonian(4, 1.0)
        executor = fresh_executor()
        backend = StatevectorBackend()
        tasks = [ExecutionTask(nonclifford_circuit(4), observable=hamiltonian)
                 for _ in range(8)]
        results = executor.run(tasks, backend=backend)
        assert backend.invocations == 1  # naive loop would spend 8
        assert len({r.value for r in results}) == 1
        assert [r.source for r in results] == ["backend"] + ["dedup"] * 7
        assert executor.stats.dedup_hits == 7

    def test_cache_hits_across_calls(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        executor = fresh_executor()
        backend = StatevectorBackend()
        task = ExecutionTask(nonclifford_circuit(3), observable=hamiltonian)
        first = executor.run(task, backend=backend)[0]
        second = executor.run(ExecutionTask(nonclifford_circuit(3),
                                            observable=hamiltonian),
                              backend=backend)[0]
        assert backend.invocations == 1
        assert second.source == "cache"
        assert second.value == first.value
        assert executor.cache_stats.hits == 1

    def test_use_cache_false_still_dedups_within_call(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        executor = fresh_executor(use_cache=False)
        backend = StatevectorBackend()
        tasks = [ExecutionTask(clifford_circuit(3), observable=hamiltonian)
                 for _ in range(4)]
        executor.run(tasks, backend=backend)
        assert backend.invocations == 1
        # A second call re-runs the simulator: nothing was cached.
        executor.run(tasks, backend=backend)
        assert backend.invocations == 2

    def test_stochastic_tasks_are_never_shared(self):
        executor = fresh_executor()
        backend = StabilizerBackend()  # unseeded: genuinely stochastic
        noisy = cx_noise()
        hamiltonian = ising_hamiltonian(3, 1.0)
        tasks = [ExecutionTask(clifford_circuit(3), observable=hamiltonian,
                               noise_model=noisy, trajectories=20)
                 for _ in range(3)]
        results = executor.run(tasks, backend=backend)
        assert backend.invocations == 3
        assert all(r.source == "backend" for r in results)

    def test_seeded_monte_carlo_tasks_dedup_and_cache(self):
        # A *seeded* stabilizer backend derives every trajectory's generator
        # from the task + seed (SeedSequence spawning), so equal noisy tasks
        # are reproducible — and therefore shareable and cacheable.
        executor = fresh_executor()
        backend = StabilizerBackend(seed=7)
        noisy = cx_noise()
        hamiltonian = ising_hamiltonian(3, 1.0)
        tasks = [ExecutionTask(clifford_circuit(3), observable=hamiltonian,
                               noise_model=noisy, trajectories=20)
                 for _ in range(3)]
        results = executor.run(tasks, backend=backend)
        assert backend.invocations == 1
        assert [r.source for r in results] == ["backend", "dedup", "dedup"]
        assert len({r.value for r in results}) == 1
        repeat = executor.run(tasks[0], backend=backend)[0]
        assert repeat.source == "cache"
        assert repeat.value == results[0].value
        # A differently seeded backend must not share those entries.
        other = executor.run(tasks[0], backend=StabilizerBackend(seed=8))[0]
        assert other.source == "backend"

    def test_different_observables_do_not_collide(self):
        executor = fresh_executor()
        circuit = clifford_circuit(2)
        za = executor.run(ExecutionTask(
            circuit, observable=PauliSum.from_label_dict({"ZZ": 1.0})),
            backend="statevector")[0]
        xa = executor.run(ExecutionTask(
            circuit, observable=PauliSum.from_label_dict({"XX": 1.0})),
            backend="statevector")[0]
        assert za.value != pytest.approx(xa.value)

    def test_lru_eviction(self):
        cache = ExpectationCache(max_size=2)
        cache.put(("a",), 1.0)
        cache.put(("b",), 2.0)
        assert cache.get(("a",)) == 1.0  # refresh 'a'
        cache.put(("c",), 3.0)  # evicts 'b'
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1.0
        assert cache.stats.evictions == 1


class TestExecutorDispatch:
    def test_threaded_matches_sequential(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        rng = np.random.default_rng(5)
        circuits = []
        for _ in range(12):
            qc = clifford_circuit(3)
            qc.rz(float(rng.uniform(0, math.pi)), 0)
            circuits.append(qc)
        tasks = [ExecutionTask(qc, observable=hamiltonian) for qc in circuits]
        sequential = fresh_executor().run(tasks, backend="statevector",
                                          max_workers=1)
        threaded = fresh_executor().run(tasks, backend="statevector",
                                        max_workers=4)
        assert [r.value for r in threaded] == \
            pytest.approx([r.value for r in sequential])

    def test_results_align_with_input_order_across_backends(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        tasks = [
            ExecutionTask(nonclifford_circuit(3), observable=hamiltonian),
            ExecutionTask(clifford_circuit(3), observable=hamiltonian,
                          noise_model=cx_noise()),
            ExecutionTask(clifford_circuit(3), observable=hamiltonian),
        ]
        results = fresh_executor().run(tasks)
        assert [r.backend_name for r in results] == \
            ["statevector", "pauli_propagation", "stabilizer"]
        assert results[0].task is tasks[0]

    def test_empty_task_list(self):
        assert fresh_executor().run([]) == []

    def test_worker_exception_propagates(self):
        hamiltonian = ising_hamiltonian(2, 1.0)
        task = ExecutionTask(nonclifford_circuit(2), observable=hamiltonian,
                             noise_model=cx_noise())
        with pytest.raises(BackendCapabilityError):
            fresh_executor().run(task, backend="statevector")

    def test_custom_backend_through_registry(self):
        calls = []

        class RecordingBackend(Backend):
            def capabilities(self):
                return BackendCapabilities(name="recording",
                                           supports_noise=False)

            def _run_task(self, task):
                calls.append(task)
                return 42.0

        registry = BackendRegistry()
        registry.register("recording", RecordingBackend)
        executor = Executor(registry=registry)
        result = executor.run(ExecutionTask(
            clifford_circuit(2),
            observable=ising_hamiltonian(2, 1.0)), backend="recording")[0]
        assert result.value == 42.0
        assert len(calls) == 1


class TestEvaluatorIntegration:
    def test_all_four_evaluators_match_seed_semantics(self):
        from repro.vqe.energy import BackendEnergyEvaluator
        from repro.circuits.transpile import (decompose_to_clifford_rz,
                                              merge_rz_runs)
        hamiltonian = ising_hamiltonian(3, 1.0)
        noise = cx_noise()
        circuit = clifford_circuit(3)

        exact = BackendEnergyEvaluator.exact(hamiltonian)
        assert exact(circuit) == pytest.approx(
            StatevectorSimulator().expectation(circuit, hamiltonian))
        assert exact.num_evaluations == 1

        canonical = merge_rz_runs(decompose_to_clifford_rz(circuit))
        dm = BackendEnergyEvaluator.density_matrix(hamiltonian, noise)
        assert dm(circuit) == pytest.approx(
            DensityMatrixSimulator(noise).expectation(canonical, hamiltonian))

        clifford = BackendEnergyEvaluator.clifford(hamiltonian, noise)
        assert clifford(circuit) == pytest.approx(
            expectation_value(canonical, hamiltonian, noise))

    def test_monte_carlo_evaluator_is_reproducible(self):
        from repro.vqe.energy import BackendEnergyEvaluator
        hamiltonian = ising_hamiltonian(3, 1.0)
        noise = cx_noise()
        circuit = clifford_circuit(3)
        a = BackendEnergyEvaluator.monte_carlo_stabilizer(
            hamiltonian, noise, trajectories=50, seed=3)(circuit)
        b = BackendEnergyEvaluator.monte_carlo_stabilizer(
            hamiltonian, noise, trajectories=50, seed=3)(circuit)
        assert a == pytest.approx(b)

    def test_legacy_evaluator_shims_are_gone(self):
        """The deprecated constructor shims were removed after their one
        release of grace (PR 9 migrated every call site to the
        BackendEnergyEvaluator classmethod presets); importing them must
        fail so stale call sites surface as ImportError, not behavior."""
        import repro.vqe
        import repro.vqe.energy
        for name in ("ExactEnergyEvaluator", "DensityMatrixEnergyEvaluator",
                     "CliffordEnergyEvaluator",
                     "MonteCarloStabilizerEvaluator"):
            assert not hasattr(repro.vqe, name), name
            assert not hasattr(repro.vqe.energy, name), name
            assert name not in repro.vqe.__all__


class TestReviewRegressions:
    def test_mutated_noise_model_invalidates_cache(self):
        """In-place add_* edits must not serve stale cached expectations."""
        hamiltonian = PauliSum.from_label_dict({"ZZ": 1.0})
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.05, 2),
                                            ["cx"])
        executor = fresh_executor()
        first = executor.run(ExecutionTask(qc, observable=hamiltonian,
                                           noise_model=noise),
                             backend="pauli_propagation")[0]
        noise.add_gate_error(depolarizing_channel(0.4, 2), ["cx"])
        second = executor.run(ExecutionTask(qc, observable=hamiltonian,
                                            noise_model=noise),
                              backend="pauli_propagation")[0]
        assert second.source == "backend"
        assert second.value != pytest.approx(first.value)
        assert second.value == pytest.approx(
            expectation_value(qc, hamiltonian, noise))

    def test_explicit_backend_may_exceed_advisory_qubit_cap(self):
        """Naming a backend bypasses max_qubits, like calling the simulator."""

        class TinyBackend(Backend):
            def capabilities(self):
                return BackendCapabilities(name="tiny", supports_noise=False,
                                           max_qubits=2)

            def _run_task(self, task):
                return 0.5

        backend = TinyBackend()
        task = ExecutionTask(clifford_circuit(3),
                             observable=ising_hamiltonian(3, 1.0))
        # Advisory: supports() (used by routing) still says no ...
        assert not backend.supports(task)
        # ... but explicit dispatch runs, both via instance and via name.
        assert fresh_executor().run(task, backend=backend)[0].value == 0.5
        registry = BackendRegistry()
        registry.register("tiny", lambda: backend)
        assert Executor(registry=registry).run(
            task, backend="tiny")[0].value == 0.5
