"""Chaos tests for the fault-tolerance layer (PR 8).

Everything here leans on one property the repo already guarantees: results
are bitwise deterministic under any dispatch mode, so recovery is testable
by *exact equality* instead of statistics.  The suite covers:

* the deterministic fault injector (spec parsing, replayable schedules,
  per-rule limits, site independence, ``REPRO_FAULTS`` env config);
* the shard supervisor — a SIGKILLed pool worker mid-batch, an injected
  wall-clock stall past the shard timeout, transient exceptions, inline
  degradation after the retry budget, and the pool-poisoning regression
  (a later dispatch after a ``BrokenProcessPool`` must just work);
* the executor surfaces — a killed worker during an expectation sweep and
  during QEC sampling recovers bitwise and is visible in ``Executor.stats``;
* streamed QEC chunk checkpoints — a run that dies mid-stream resumes from
  the disk cache and decodes only the remaining chunks;
* disk-cache corruption injection — a truncated entry is quarantined and
  recomputed, never served;
* the service layer end-to-end over the unix socket — a restarted server
  requeues queued jobs and retries a lease-expired running job with the
  attempt count recorded, a transient job fault is retried with zero
  re-decodes of checkpointed chunks, and a per-job deadline dead-letters.
"""

import contextlib
import os
import shutil
import tempfile
import time

import numpy as np
import pytest

from repro.ansatz import FullyConnectedAnsatz
from repro.execution import Executor
from repro.execution.disk_cache import DiskExpectationCache
from repro.execution.faults import (FAULTS_ENV, FaultInjector, FaultRule,
                                    active_injector, clear_injector,
                                    inject_faults, parse_fault_spec)
from repro.execution.sharding import (ShardPlanner, ShardRetryPolicy,
                                      run_sharded)
from repro.operators import ising_hamiltonian
from repro.qec.decoders import MWPMDecoder
from repro.qec.decoders.graph import (repetition_code_graph,
                                      rotated_surface_code_graph)
from repro.qec.sampling import (SHOT_BLOCK, reset_sampling_stats,
                                run_memory_sampling, sampling_stats,
                                stream_memory_sampling)
from repro.service import (RunRegistry, ServiceClient, ServiceConfig,
                           qec_memory_payload, start_in_thread,
                           sweep_payload)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"deterministic failure for {value}")


def _process_plan(workers, items):
    return ShardPlanner(max_workers=workers).plan(items, hints=("process",),
                                                  parallel="process")


def _fast_policy(**overrides):
    defaults = dict(max_retries=2, backoff_base=0.0)
    defaults.update(overrides)
    return ShardRetryPolicy(**defaults)


def sweep_fixture(points=4):
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.parameters import Parameter
    from repro.operators.pauli import PauliSum
    theta = Parameter("theta")
    template = QuantumCircuit(2)
    template.h(0)
    template.rz(theta, 0)
    template.cx(0, 1)
    observable = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.5})
    parameter_sets = [[0.1 * k] for k in range(points)]
    return template, parameter_sets, observable


@contextlib.contextmanager
def service(**overrides):
    """A live in-thread server on a short unix-socket path."""
    tmp = tempfile.mkdtemp(dir="/tmp", prefix="rchaos")
    defaults = dict(socket_path=os.path.join(tmp, "s.sock"),
                    db_path=os.path.join(tmp, "registry.db"), workers=2)
    defaults.update(overrides)
    handle = start_in_thread(ServiceConfig(**defaults))
    try:
        yield handle
    finally:
        handle.stop()
        shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# the injector itself
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_parse_full_spec(self):
        injector = parse_fault_spec(
            "seed=7,shard.kill=1/1,shard.delay=0.5/2:0.2")
        assert injector.seed == 7
        kill, delay = injector.rules
        assert (kill.site, kill.kind, kill.rate, kill.limit) \
            == ("shard", "kill", 1.0, 1)
        assert (delay.site, delay.kind, delay.rate, delay.limit,
                delay.seconds) == ("shard", "delay", 0.5, 2, 0.2)

    def test_parse_rejects_unknown_site_kind_and_rate(self):
        with pytest.raises(ValueError, match="site"):
            parse_fault_spec("warp.kill=1")
        with pytest.raises(ValueError, match="kind"):
            parse_fault_spec("shard.explode=1")
        with pytest.raises(ValueError, match="rate"):
            parse_fault_spec("shard.kill=1.5")
        with pytest.raises(ValueError, match="malformed"):
            parse_fault_spec("shard.kill")

    def test_schedule_replays_exactly(self):
        injector = parse_fault_spec("seed=3,shard.raise=0.4")
        first = [injector.directive("shard") is not None for _ in range(50)]
        counts = injector.fired_counts()
        assert counts.get("shard.raise", 0) == sum(first)
        assert 0 < sum(first) < 50  # a genuine Bernoulli schedule
        injector.reset()
        replay = [injector.directive("shard") is not None for _ in range(50)]
        assert replay == first
        assert injector.fired_counts() == counts

    def test_limit_caps_firings(self):
        injector = FaultInjector(
            rules=(FaultRule("shard", "raise", rate=1.0, limit=2),), seed=0)
        fired = [injector.directive("shard") for _ in range(5)]
        assert [d is not None for d in fired] \
            == [True, True, False, False, False]
        assert injector.fired_counts() == {"shard.raise": 2}

    def test_sites_do_not_perturb_each_other(self):
        spec = "seed=9,shard.raise=0.5,job.raise=0.5"
        injector = parse_fault_spec(spec)
        alone = [injector.directive("job") is not None for _ in range(20)]
        injector.reset()
        interleaved = []
        for _ in range(20):
            injector.directive("shard")  # foreign-site traffic
            interleaved.append(injector.directive("job") is not None)
        assert interleaved == alone

    def test_seed_changes_the_schedule(self):
        draws = {}
        for seed in (1, 2):
            with inject_faults("shard.raise=0.5", seed=seed) as injector:
                draws[seed] = [injector.directive("shard") is not None
                               for _ in range(40)]
        assert draws[1] != draws[2]

    def test_inject_faults_scopes_installation(self):
        assert active_injector() is None
        with inject_faults("seed=4,shard.raise=1/1") as injector:
            assert active_injector() is injector
            assert injector.directive("shard").kind == "raise"
        assert active_injector() is None

    def test_env_spec_is_parsed_and_cached(self, monkeypatch):
        clear_injector()
        monkeypatch.setenv(FAULTS_ENV, "seed=31,job.raise=1/3")
        first = active_injector()
        assert first is active_injector()  # cached per spec value
        assert first.seed == 31
        assert first.directive("job") is not None
        monkeypatch.delenv(FAULTS_ENV)
        assert active_injector() is None

    def test_retry_policy_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "5")
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_SHARD_BACKOFF", "0.01")
        policy = ShardRetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.timeout == 1.5
        assert policy.backoff_base == 0.01


# ---------------------------------------------------------------------------
# the shard supervisor
# ---------------------------------------------------------------------------


class TestSupervisedSharding:
    def test_sigkilled_worker_recovers_bitwise(self):
        payloads = [(i,) for i in range(6)]
        plan = _process_plan(2, len(payloads))
        baseline = run_sharded(plan, _square, payloads)
        assert baseline == [i * i for i in range(6)]
        reports = []
        with inject_faults("shard.kill=1/1") as injector:
            chaotic = run_sharded(plan, _square, payloads,
                                  policy=_fast_policy(),
                                  on_fault=reports.append)
        assert chaotic == baseline
        assert injector.fired_counts() == {"shard.kill": 1}
        report = reports[0]
        assert report.respawns >= 1
        assert report.retried
        assert report.inline_shards == 0
        # Pool-poisoning regression: the broken pool was reset, so a later
        # uninjected dispatch lazily rebuilds a healthy one and just works.
        assert run_sharded(plan, _square, payloads) == baseline

    def test_transient_faults_retried_per_shard(self):
        payloads = [(i,) for i in range(6)]
        plan = _process_plan(2, len(payloads))
        reports = []
        with inject_faults("shard.raise=1/2"):
            results = run_sharded(plan, _square, payloads,
                                  policy=_fast_policy(),
                                  on_fault=reports.append)
        assert results == [i * i for i in range(6)]
        report = reports[0]
        assert sum("TransientFault" in cause for cause in report.causes) == 2
        assert report.attempts == 2
        assert report.respawns == 0  # a raise never breaks the pool

    def test_stalled_shard_times_out_and_retries(self):
        payloads = [(i,) for i in range(4)]
        plan = _process_plan(2, len(payloads))
        reports = []
        with inject_faults("shard.delay=1/1:1.5"):
            results = run_sharded(plan, _square, payloads,
                                  policy=_fast_policy(timeout=0.25),
                                  on_fault=reports.append)
        assert results == [i * i for i in range(4)]
        report = reports[0]
        assert report.timeouts >= 1
        assert report.respawns >= 1  # the wedged pool was retired
        assert "timeout" in report.causes

    def test_budget_exhaustion_degrades_to_inline(self):
        payloads = [(i,) for i in range(4)]
        plan = _process_plan(2, len(payloads))
        reports = []
        with inject_faults("shard.raise=1"):  # no limit: every round fails
            results = run_sharded(plan, _square, payloads,
                                  policy=_fast_policy(max_retries=1),
                                  on_fault=reports.append)
        # The inline fallback runs the RAW payloads (no injection) in the
        # parent, so results are still complete and correct.
        assert results == [i * i for i in range(4)]
        report = reports[0]
        assert report.attempts == 2
        assert report.inline_shards == 4
        assert sorted(report.inline_indices) == [0, 1, 2, 3]

    def test_deterministic_errors_propagate_immediately(self):
        plan = _process_plan(2, 4)
        with pytest.raises(ValueError, match="deterministic"):
            run_sharded(plan, _boom, [(i,) for i in range(4)],
                        policy=_fast_policy())

    def test_env_spec_drives_injection(self, monkeypatch):
        clear_injector()
        monkeypatch.setenv(FAULTS_ENV, "seed=12,shard.raise=1/1")
        payloads = [(i,) for i in range(6)]
        plan = _process_plan(2, len(payloads))
        reports = []
        results = run_sharded(plan, _square, payloads,
                              policy=_fast_policy(),
                              on_fault=reports.append)
        assert results == [i * i for i in range(6)]
        assert reports and any("TransientFault" in cause
                               for cause in reports[0].causes)


# ---------------------------------------------------------------------------
# executor surfaces: sweep + QEC sampling under SIGKILL
# ---------------------------------------------------------------------------


class TestExecutorChaos:
    def test_sweep_sigkill_recovers_bitwise_and_is_counted(self):
        template = FullyConnectedAnsatz(4, depth=1).build()
        rng = np.random.default_rng(5)
        points = rng.standard_normal(
            (24, len(template.ordered_parameters()))).tolist()
        hamiltonian = ising_hamiltonian(4, 1.0)
        clean = Executor(use_cache=False).evaluate_sweep(
            template, points, hamiltonian, backend="statevector",
            parallel="process", max_workers=2)
        executor = Executor(use_cache=False)
        with inject_faults("shard.kill=1/1"):
            chaotic = executor.evaluate_sweep(
                template, points, hamiltonian, backend="statevector",
                parallel="process", max_workers=2)
        assert np.array_equal(chaotic, clean)
        assert executor.stats.pool_respawns >= 1
        assert executor.stats.shard_retries >= 1
        assert executor.fault_reports
        assert executor.fault_reports[-1].respawns >= 1

    def test_qec_sampling_sigkill_recovers_bitwise(self):
        graph = rotated_surface_code_graph(3, 2, 0.01)
        shots = 2 * SHOT_BLOCK + 17
        clean = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                    seed=321,
                                    executor=Executor(use_cache=False),
                                    parallel="process", max_workers=2)
        executor = Executor(use_cache=False)
        with inject_faults("shard.kill=1/1"):
            chaotic = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                          seed=321, executor=executor,
                                          parallel="process", max_workers=2)
        assert (chaotic.failures, chaotic.total_defects) \
            == (clean.failures, clean.total_defects)
        assert chaotic.fault_report is not None
        assert chaotic.fault_report.respawns >= 1
        assert executor.stats.pool_respawns >= 1

    def test_stream_checkpoints_resume_with_partial_decodes(self, tmp_path):
        graph = rotated_surface_code_graph(3, 2, 0.01)
        shots = 6 * SHOT_BLOCK + 13
        reference = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                        seed=101,
                                        executor=Executor(use_cache=False))
        # First attempt dies after two chunks — both already flushed to the
        # disk tier as chunk checkpoints.
        stream = stream_memory_sampling(graph, MWPMDecoder(graph), shots,
                                        seed=101,
                                        executor=Executor(cache_dir=tmp_path),
                                        chunk_blocks=2)
        next(stream)
        next(stream)
        stream.close()
        # The resumed attempt (fresh executor, cold memory tier) folds the
        # checkpointed chunks from disk and decodes only the remainder.
        reset_sampling_stats()
        resumed = list(stream_memory_sampling(
            graph, MWPMDecoder(graph), shots, seed=101,
            executor=Executor(cache_dir=tmp_path), chunk_blocks=2))
        final = resumed[-1]
        assert final.shots == shots
        assert (final.failures, final.total_defects) \
            == (reference.failures, reference.total_defects)
        checkpointed = 2 * 2 * SHOT_BLOCK  # two chunks of two blocks
        assert sampling_stats().shots_decoded == shots - checkpointed


# ---------------------------------------------------------------------------
# disk-cache corruption injection
# ---------------------------------------------------------------------------


class TestDiskCacheChaos:
    def test_injected_corruption_quarantined_and_recomputed(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        key = ("chaos", "entry", 1)
        with inject_faults("disk-cache.corrupt=1/1"):
            cache.put(key, 0.75)
        # The truncated entry reads as a miss and is quarantined, never
        # served.
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert len(list(tmp_path.glob("*/.corrupt-*"))) == 1
        cache.put(key, 0.75)  # the recompute path repopulates cleanly
        assert cache.get(key) == 0.75

    def test_seeded_run_survives_corrupted_checkpoint(self, tmp_path):
        graph = repetition_code_graph(3, 2, 0.02)
        shots = 2 * SHOT_BLOCK
        reference = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                        seed=23,
                                        executor=Executor(use_cache=False))
        with inject_faults("disk-cache.corrupt=1/1"):
            first = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                        seed=23,
                                        executor=Executor(cache_dir=tmp_path))
        # One of the two result entries on disk is torn; a fresh process
        # over the same cache directory must recompute, not mis-serve.
        second = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                     seed=23,
                                     executor=Executor(cache_dir=tmp_path))
        assert (first.failures, first.total_defects) \
            == (reference.failures, reference.total_defects)
        assert (second.failures, second.total_defects) \
            == (reference.failures, reference.total_defects)


# ---------------------------------------------------------------------------
# service layer end-to-end over the unix socket
# ---------------------------------------------------------------------------


class TestServiceChaos:
    def test_restart_requeues_and_retries_through_socket(self):
        """The PR acceptance path: a server restart over an existing
        registry requeues queued jobs (no attempt spent) and retries a
        lease-expired running job (crashed attempt still counted), and both
        complete with correct results — all observed through the client."""
        template, points, observable = sweep_fixture(points=4)
        payload = sweep_payload(template, points, observable)
        reference = Executor(use_cache=False).evaluate_sweep(
            template, points, observable)
        tmp = tempfile.mkdtemp(dir="/tmp", prefix="rchaos")
        try:
            db_path = os.path.join(tmp, "registry.db")
            seeded = RunRegistry(db_path)
            # Queued when the old server died: it never ran.
            seeded.create_job("q1", "default", "sweep", None, 0, payload,
                              max_attempts=1)
            # Mid-run when the old server died: its lease has expired.
            seeded.create_job("r1", "default", "sweep", None, 0, payload,
                              max_attempts=3)
            assert seeded.claim("r1", "dead-server", lease_seconds=0.0) == 1
            seeded.close()
            time.sleep(0.01)  # the lease is now strictly in the past
            handle = start_in_thread(ServiceConfig(
                socket_path=os.path.join(tmp, "s.sock"), db_path=db_path,
                workers=2))
            try:
                with ServiceClient(handle.socket_path) as client:
                    for job_id in ("q1", "r1"):
                        result = client.result(job_id, wait=True)
                        assert result.state == "done"
                        assert np.array_equal(result.result["energies"],
                                              reference)
                    assert client.status("q1")["attempts"] == 1
                    assert client.status("r1")["attempts"] == 2
            finally:
                handle.stop()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_transient_job_fault_retried_with_zero_redecodes(self):
        """A transient fault at a job checkpoint consumes one attempt; the
        retry resumes from the chunk checkpoints and decodes each shot
        exactly once across both attempts."""
        shots = 3 * SHOT_BLOCK
        payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                     shots=shots, seed=17, chunk_blocks=1)
        graph = repetition_code_graph(3, 2, 0.02)
        reference = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                        seed=17,
                                        executor=Executor(use_cache=False))
        with service() as handle:
            with ServiceClient(handle.socket_path) as client:
                reset_sampling_stats()
                with inject_faults("job.raise=1/1"):
                    submitted = client.submit("qec_memory", payload,
                                              max_attempts=3)
                    result = client.result(submitted.job_id, wait=True)
                assert result.state == "done"
                assert result.result["failures"] == reference.failures
                entry = client.status(submitted.job_id)
                assert entry["attempts"] == 2
                retries = [event for event
                           in client.iter_events(submitted.job_id)
                           if event["data"].get("retry")]
                assert retries
                assert retries[0]["data"]["cause"] == "TransientFault"
                # Chunks checkpointed by attempt #1 were not re-decoded by
                # attempt #2: total decode work equals one clean run.
                assert sampling_stats().shots_decoded == shots
                assert "faults" in client.stats()

    def test_deadline_dead_letters_when_budget_exhausted(self):
        payload = qec_memory_payload(distance=3, rounds=2, error_rate=0.02,
                                     shots=262144, chunk_blocks=4)
        with service() as handle:
            with ServiceClient(handle.socket_path) as client:
                submitted = client.submit("qec_memory", payload,
                                          deadline=0.3)
                result = client.result(submitted.job_id, wait=True)
                assert result.state == "failed"
                assert "deadline" in (result.error or "")
                assert client.status(submitted.job_id)["attempts"] == 1
