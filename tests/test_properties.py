"""Property-based differential harness for every bitwise-equivalence contract.

The repo's core invariant is that every fast path is *bitwise* identical to
its reference path.  PRs 3–6 asserted this with hand-picked spot checks;
this module turns each contract into a hypothesis property so shrinking
finds minimal counterexamples and CI (``--hypothesis-profile=ci``, see
``conftest.py``) explores ≥200 examples per contract deterministically.

Contracts covered, one test class per contract family:

* pack/unpack round-trips and popcount native-vs-LUT
  (:mod:`repro.qec.bitops`)
* packed mod-2 matmul / matvec / gather-plan vs dense integer matmul
* packed-vs-byte stabilizer tableau evolution, including the measurement
  RNG draw stream (:class:`StabilizerState` vs :class:`DenseStabilizerState`)
* ``decode_batch`` vs per-shot ``decode`` — and ``decode_batch_packed`` vs
  ``decode_batch`` — for all five decoder configurations
* packed vs dense vs streaming Monte-Carlo memory sampling
* compiled vs interpreted statevector programs (≤ 1e-12)
* grouped vs per-term observable readout (≤ 1e-12)

Everything numeric that is *discrete* is compared exactly; only genuinely
floating-point contracts get the 1e-12 tolerance.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro._bitops import _POPCOUNT_LUT, _WORD_BYTES
from repro.circuits.circuit import QuantumCircuit
from repro.operators.pauli import PauliString, PauliSum
from repro.qec.bitops import (Mod2GatherPlan, mod2_matmul_packed,
                              mod2_matvec_packed, pack_rows, packed_words,
                              parity, popcount, popcount_words, row_parity,
                              unpack_rows)
from repro.qec.decoders import (CliquePredecoder, LookupDecoder, MWPMDecoder,
                                UnionFindDecoder, batch_decode,
                                batch_decode_packed)
from repro.qec.decoders.graph import repetition_code_graph
from repro.qec.rare_event import (_conditional_include_table,
                                  _log_weight_terms, _sample_fixed_weight,
                                  stratum_probabilities,
                                  tilted_probabilities)
from repro.qec.sampling import (packed_syndromes_and_flips, sample_errors,
                                sampling_arrays, syndromes_and_flips)
from repro.simulators.program import compile_circuit, run_interpreted
from repro.simulators.stabilizer import (DenseStabilizerState,
                                         StabilizerSimulator, StabilizerState)
from repro.simulators.statevector import StatevectorSimulator


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def bit_matrices(max_rows: int = 12, max_cols: int = 200):
    """Random 0/1 uint8 matrices spanning word-boundary edge cases."""
    # Sprinkle exact word-boundary widths in with the uniform draw: off-by-
    # one bugs live at 63/64/65, not at random widths.
    cols = st.one_of(st.integers(1, max_cols),
                     st.sampled_from([1, 7, 8, 63, 64, 65, 127, 128, 129]))
    return st.tuples(st.integers(1, max_rows), cols, st.integers(0, 2**31)) \
        .map(lambda args: np.random.default_rng(args[2])
             .integers(0, 2, size=(args[0], args[1]), dtype=np.uint8))


@st.composite
def clifford_programs(draw, max_qubits: int = 6, max_ops: int = 30):
    """``(num_qubits, [op codes])`` describing a random Clifford+measure run."""
    n = draw(st.integers(1, max_qubits))
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["h", "s", "sdg", "x", "y", "z", "cx",
                                   "cz", "swap", "measure", "reset"]),
                  st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_ops))
    return n, ops


def _apply_ops(state, ops, rng):
    """Replay a clifford_programs op list onto either tableau implementation."""
    outcomes = []
    for name, q, q2 in ops:
        if name == "cx" or name == "cz" or name == "swap":
            if q == q2:
                continue
            getattr(state, f"apply_{name}")(q, q2)
        elif name == "measure":
            outcomes.append(state.measure(q, rng))
        elif name == "reset":
            state.reset(q, rng)
        else:
            getattr(state, f"apply_{name}")(q)
    return outcomes


@st.composite
def statevector_circuits(draw, max_qubits: int = 4, max_ops: int = 20):
    """Random (non-Clifford) circuits for the compiled-vs-interpreted contract."""
    n = draw(st.integers(1, max_qubits))
    circuit = QuantumCircuit(n)
    count = draw(st.integers(0, max_ops))
    for _ in range(count):
        kind = draw(st.sampled_from(["h", "x", "s", "t", "rz", "rx", "ry",
                                     "cx", "cz", "rzz"]))
        q = draw(st.integers(0, n - 1))
        if kind in ("rz", "rx", "ry"):
            angle = draw(st.floats(-2 * math.pi, 2 * math.pi,
                                   allow_nan=False, allow_infinity=False))
            getattr(circuit, kind)(angle, q)
        elif kind in ("cx", "cz", "rzz"):
            q2 = draw(st.integers(0, n - 1))
            if q2 == q:
                continue
            if kind == "rzz":
                angle = draw(st.floats(-math.pi, math.pi, allow_nan=False))
                circuit.rzz(angle, q, q2)
            else:
                getattr(circuit, kind)(q, q2)
        else:
            getattr(circuit, kind)(q)
    return circuit


@st.composite
def pauli_sums(draw, max_qubits: int = 5, max_terms: int = 6):
    """Random Hermitian Pauli sums with real coefficients."""
    n = draw(st.integers(1, max_qubits))
    observable = PauliSum(n)
    for _ in range(draw(st.integers(1, max_terms))):
        label = "".join(draw(st.sampled_from("IXYZ")) for _ in range(n))
        coeff = draw(st.floats(-2.0, 2.0, allow_nan=False))
        observable.add_label(label, coeff)
    return observable


@st.composite
def decoding_setups(draw):
    """``(graph, syndromes, detectors)`` with decodable syndrome batches.

    Syndromes are generated from random error subsets of the graph's edges,
    so every row is reachable by a physical error pattern (what the
    decoders' contracts are defined over).
    """
    distance = draw(st.sampled_from([3, 5]))
    rounds = draw(st.integers(1, 3))
    graph = repetition_code_graph(distance, rounds, 0.05)
    arrays = sampling_arrays(graph)
    shots = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    errors = (rng.random((shots, arrays.num_edges)) < 0.08).astype(np.uint8)
    syndromes, _ = syndromes_and_flips(arrays, errors)
    return graph, syndromes


def _decoder_suite(graph):
    """The five in-repo decoder configurations under contract."""
    return [
        MWPMDecoder(graph),
        UnionFindDecoder(graph),
        LookupDecoder(graph, max_error_weight=1),
        LookupDecoder(graph, max_error_weight=2),
        CliquePredecoder(graph, MWPMDecoder(graph)),
    ]


# ---------------------------------------------------------------------------
# bitops: packing, popcount, parity
# ---------------------------------------------------------------------------

class TestBitopsProperties:
    @given(rows=bit_matrices())
    def test_pack_unpack_roundtrip(self, rows):
        words = pack_rows(rows)
        assert words.dtype == np.uint64
        assert words.shape == (rows.shape[0], packed_words(rows.shape[1]))
        assert np.array_equal(unpack_rows(words, rows.shape[1]), rows)

    @given(rows=bit_matrices())
    def test_packed_tail_bits_are_zero(self, rows):
        words = pack_rows(rows)
        tail = rows.shape[1] % 64
        if tail:
            assert not np.any(words[:, -1] >> np.uint64(tail))

    @given(rows=bit_matrices())
    def test_popcount_matches_dense_sum(self, rows):
        words = pack_rows(rows)
        assert np.array_equal(popcount_words(words).sum(axis=1),
                              rows.sum(axis=1, dtype=np.int64))
        assert popcount(words) == int(rows.sum())

    @given(rows=bit_matrices())
    def test_popcount_native_equals_lut(self, rows):
        words = pack_rows(rows)
        native = popcount_words(words)
        byte_view = np.ascontiguousarray(words).view(np.uint8)
        lut = _POPCOUNT_LUT[byte_view] \
            .reshape(words.shape + (_WORD_BYTES,)).sum(axis=-1, dtype=np.uint8)
        assert np.array_equal(native, lut)

    @given(rows=bit_matrices())
    def test_parity_matches_mod2_sum(self, rows):
        words = pack_rows(rows)
        assert np.array_equal(row_parity(words),
                              (rows.sum(axis=1) % 2).astype(np.uint8))
        # axis=0 folds the shot rows first: word w's parity is the mod-2
        # sum of ALL bits landing in columns [64w, 64w+64).
        n_words = words.shape[1]
        padded = np.zeros(n_words * 64, dtype=np.int64)
        padded[:rows.shape[1]] = rows.sum(axis=0)
        expected = (padded.reshape(n_words, 64).sum(axis=1) % 2)
        assert np.array_equal(parity(words, axis=0),
                              expected.astype(np.uint8))


# ---------------------------------------------------------------------------
# bitops: mod-2 matmul contracts
# ---------------------------------------------------------------------------

class TestMod2MatmulProperties:
    @given(data=st.data())
    def test_matmul_packed_vs_dense(self, data):
        left = data.draw(bit_matrices(max_rows=8, max_cols=150), label="left")
        n_cols = left.shape[1]
        seed = data.draw(st.integers(0, 2**31), label="seed")
        right = np.random.default_rng(seed).integers(
            0, 2, size=(data.draw(st.integers(1, 8), label="rb"), n_cols),
            dtype=np.uint8)
        expected = (left.astype(np.int64) @ right.T.astype(np.int64)) % 2
        got = mod2_matmul_packed(pack_rows(left), pack_rows(right))
        assert np.array_equal(got, expected.astype(np.uint8))

    @given(data=st.data())
    def test_matvec_packed_vs_dense(self, data):
        rows = data.draw(bit_matrices(max_rows=10, max_cols=150))
        seed = data.draw(st.integers(0, 2**31))
        vector = np.random.default_rng(seed).integers(
            0, 2, size=rows.shape[1], dtype=np.uint8)
        expected = ((rows.astype(np.int64) @ vector.astype(np.int64)) % 2)
        got = mod2_matvec_packed(pack_rows(rows), pack_rows(vector))
        assert np.array_equal(got, expected.astype(np.uint8))

    @given(data=st.data())
    def test_gather_plan_vs_dense(self, data):
        rows = data.draw(bit_matrices(max_rows=10, max_cols=100))
        seed = data.draw(st.integers(0, 2**31))
        n_out = data.draw(st.integers(1, 100))
        matrix = np.random.default_rng(seed).integers(
            0, 2, size=(rows.shape[1], n_out), dtype=np.uint8)
        expected = ((rows.astype(np.int64) @ matrix.astype(np.int64)) % 2)
        plan = Mod2GatherPlan(matrix)
        packed_out = plan.matmul_rows(rows)
        assert np.array_equal(unpack_rows(packed_out, n_out),
                              expected.astype(np.uint8))
        assert np.array_equal(plan.matmul_packed(pack_rows(rows)), packed_out)


# ---------------------------------------------------------------------------
# Tableau: packed vs byte reference
# ---------------------------------------------------------------------------

class TestTableauProperties:
    @given(program=clifford_programs(), seed=st.integers(0, 2**31))
    def test_packed_vs_dense_evolution(self, program, seed):
        n, ops = program
        packed = StabilizerState(n)
        dense = DenseStabilizerState(n)
        packed_outcomes = _apply_ops(packed, ops, np.random.default_rng(seed))
        dense_outcomes = _apply_ops(dense, ops, np.random.default_rng(seed))
        # Identical measurement outcomes (same draw stream) and identical
        # final tableaus, bit for bit, sign for sign.
        assert packed_outcomes == dense_outcomes
        assert np.array_equal(packed.x, dense.x)
        assert np.array_equal(packed.z, dense.z)
        assert np.array_equal(packed.r, dense.r)

    @given(program=clifford_programs(max_qubits=5), seed=st.integers(0, 2**31),
           data=st.data())
    def test_packed_vs_dense_expectations(self, program, seed, data):
        n, ops = program
        packed = StabilizerState(n)
        dense = DenseStabilizerState(n)
        _apply_ops(packed, ops, np.random.default_rng(seed))
        _apply_ops(dense, ops, np.random.default_rng(seed))
        label = "".join(data.draw(st.sampled_from("IXYZ")) for _ in range(n))
        pauli = PauliString(label)
        assert packed.expectation_pauli(pauli) == dense.expectation_pauli(pauli)
        assert [str(s) for s in packed.stabilizer_strings()] \
            == [str(s) for s in dense.stabilizer_strings()]

    @given(st.integers(1, 80))
    def test_fresh_tableau_matches(self, n):
        packed = StabilizerState(n)
        dense = DenseStabilizerState(n)
        assert np.array_equal(packed.x, dense.x)
        assert np.array_equal(packed.z, dense.z)


# ---------------------------------------------------------------------------
# Decoders: batch vs per-shot, packed vs dense
# ---------------------------------------------------------------------------

class TestDecoderProperties:
    @given(setup=decoding_setups())
    @settings(max_examples=20)
    def test_decode_batch_vs_decode_all_decoders(self, setup):
        graph, syndromes = setup
        detectors = graph.detector_order()
        for decoder in _decoder_suite(graph):
            batched = decoder.decode_batch(syndromes, detectors)
            for row in range(syndromes.shape[0]):
                defects = [detectors[col]
                           for col in np.flatnonzero(syndromes[row])]
                single = bool(decoder.decode(defects).flips_logical)
                assert bool(batched[row]) == single, type(decoder).__name__

    @given(setup=decoding_setups())
    @settings(max_examples=20)
    def test_decode_batch_packed_vs_dense_all_decoders(self, setup):
        graph, syndromes = setup
        detectors = graph.detector_order()
        words = pack_rows(syndromes, len(detectors))
        for decoder in _decoder_suite(graph):
            dense_flips = decoder.decode_batch(syndromes, detectors)
            packed_flips = decoder.decode_batch_packed(words, detectors)
            assert np.array_equal(dense_flips, packed_flips), \
                type(decoder).__name__

    @given(setup=decoding_setups())
    @settings(max_examples=15)
    def test_non_contiguous_syndromes_decode_identically(self, setup):
        graph, syndromes = setup
        detectors = graph.detector_order()
        decoder = MWPMDecoder(graph)
        baseline = batch_decode(decoder, syndromes, detectors)
        # A Fortran-ordered copy and a doubled-then-strided view exercise
        # the one-normalization contract in _prepare_syndromes.
        fortran = np.asfortranarray(syndromes)
        strided = np.repeat(syndromes, 2, axis=0)[::2]
        assert not strided.flags.c_contiguous or syndromes.shape[0] == 1
        assert np.array_equal(batch_decode(decoder, fortran, detectors),
                              baseline)
        assert np.array_equal(batch_decode(decoder, strided, detectors),
                              baseline)

    @given(setup=decoding_setups())
    @settings(max_examples=15)
    def test_module_level_packed_shell_matches(self, setup):
        graph, syndromes = setup
        detectors = graph.detector_order()

        class PlainDecoder:
            """decode()-only decoder: exercises the generic packed shell."""

            def __init__(self):
                self._inner = MWPMDecoder(graph)

            def decode(self, defects):
                return self._inner.decode(defects)

        words = pack_rows(syndromes, len(detectors))
        dense_flips = batch_decode(PlainDecoder(), syndromes, detectors)
        packed_flips = batch_decode_packed(PlainDecoder(), words, detectors)
        assert np.array_equal(dense_flips, packed_flips)


# ---------------------------------------------------------------------------
# Sampling: packed vs dense vs streaming
# ---------------------------------------------------------------------------

class TestSamplingKernelProperties:
    @given(seed=st.integers(0, 2**31), shots=st.integers(1, 64),
           distance=st.sampled_from([3, 5]), rounds=st.integers(1, 3))
    def test_packed_syndromes_match_dense(self, seed, shots, distance, rounds):
        graph = repetition_code_graph(distance, rounds, 0.02)
        arrays = sampling_arrays(graph)
        errors = sample_errors(arrays, shots, np.random.default_rng(seed))
        dense_syndromes, dense_flips = syndromes_and_flips(arrays, errors)
        words, packed_flips = packed_syndromes_and_flips(arrays, errors)
        assert np.array_equal(unpack_rows(words, arrays.num_detectors),
                              dense_syndromes)
        assert np.array_equal(packed_flips, dense_flips)

    @given(seed=st.integers(0, 2**31), shots=st.integers(1, 700))
    @settings(max_examples=15)
    def test_run_memory_sampling_kernel_equivalence(self, seed, shots):
        from repro.execution.executor import Executor
        from repro.qec.sampling import run_memory_sampling
        graph = repetition_code_graph(3, 2, 0.05)
        executor = Executor(use_cache=False)
        results = [
            run_memory_sampling(graph, MWPMDecoder(graph), shots, seed=seed,
                                executor=executor, kernel=kernel,
                                streaming=streaming)
            for kernel, streaming in (("dense", False), ("packed", False),
                                      ("packed", True))
        ]
        failures = {r.failures for r in results}
        defects = {r.total_defects for r in results}
        assert len(failures) == 1 and len(defects) == 1


# ---------------------------------------------------------------------------
# Programs: compiled vs interpreted
# ---------------------------------------------------------------------------

class TestProgramProperties:
    @given(circuit=statevector_circuits())
    def test_compiled_matches_interpreted(self, circuit):
        compiled_state = compile_circuit(circuit).run_statevector()
        interpreted_state = run_interpreted(circuit)
        np.testing.assert_allclose(compiled_state, interpreted_state,
                                   atol=1e-12, rtol=0)


# ---------------------------------------------------------------------------
# Observables: grouped vs per-term readout
# ---------------------------------------------------------------------------

class TestGroupedReadoutProperties:
    @given(data=st.data())
    def test_statevector_grouped_vs_per_term(self, data):
        observable = data.draw(pauli_sums())
        circuit = data.draw(statevector_circuits(
            max_qubits=observable.num_qubits, max_ops=12))
        assume(circuit.num_qubits == observable.num_qubits)
        simulator = StatevectorSimulator()
        grouped = simulator.expectation_many(circuit, observable)
        state = simulator.run(circuit)
        for index, (pauli, _) in enumerate(observable.terms()):
            single = PauliSum(observable.num_qubits).add_term(pauli, 1.0)
            assert abs(grouped[index] - state.expectation(single)) <= 1e-12

    @given(program=clifford_programs(max_qubits=4, max_ops=15),
           data=st.data())
    def test_stabilizer_grouped_vs_per_term(self, program, data):
        n, ops = program
        circuit = QuantumCircuit(n)
        for name, q, q2 in ops:
            if name in ("cx", "cz", "swap"):
                if q != q2:
                    getattr(circuit, name)(q, q2)
            elif name not in ("measure", "reset"):
                getattr(circuit, name)(q)
        observable = data.draw(pauli_sums(max_qubits=n))
        assume(observable.num_qubits == n)
        simulator = StabilizerSimulator()
        grouped = simulator.expectation_many(circuit, observable)
        state = simulator.run(circuit, inject_noise=False)
        for index, (pauli, _) in enumerate(observable.terms()):
            expected = (1.0 if pauli.is_identity()
                        else state.expectation_pauli(pauli))
            assert abs(grouped[index] - expected) <= 1e-12


class TestRareEventProperties:
    """Contracts of the PR 10 rare-event estimators: log-weights stay
    finite at any tilt, the identity tilt is an exact no-op, and the
    Poisson-binomial stratum math is exact."""

    @given(data=st.data())
    def test_log_weights_finite_at_extreme_rates(self, data):
        n = data.draw(st.integers(min_value=1, max_value=64))
        seed = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
        rng = np.random.default_rng(seed)
        # rates spanning ~300 orders of magnitude downward and as close to
        # 1 as float64 can represent while staying strictly below it (the
        # estimator's contract is rates strictly inside (0, 1))
        p = 10.0 ** rng.uniform(-300, -0.001, size=n)
        q = 1.0 - 10.0 ** rng.uniform(-15, -0.001, size=n)
        base_log, log_ratio = _log_weight_terms(p, q)
        assert math.isfinite(base_log)
        assert np.all(np.isfinite(log_ratio))
        # the heaviest possible shot (every edge flipped) still yields a
        # finite log-weight — only exp() may round it to 0.0 or overflow
        assert math.isfinite(base_log + float(log_ratio.sum()))

    @given(data=st.data())
    def test_identity_tilt_weights_are_exactly_one(self, data):
        n = data.draw(st.integers(min_value=1, max_value=64))
        seed = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
        rng = np.random.default_rng(seed)
        p = rng.uniform(1e-12, 1.0 - 1e-12, size=n)
        q = tilted_probabilities(p, 0.0)
        assert np.array_equal(q, p)
        base_log, log_ratio = _log_weight_terms(p, q)
        # exact zeros, not merely small: identical arrays subtract to 0.0
        assert base_log == 0.0
        assert np.all(log_ratio == 0.0)
        errors = (rng.random((16, n)) < p).view(np.uint8)
        assert np.all(np.exp(base_log + errors @ log_ratio) == 1.0)

    @given(data=st.data())
    def test_tilted_rates_stay_in_unit_interval(self, data):
        n = data.draw(st.integers(min_value=1, max_value=64))
        seed = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
        theta = data.draw(st.floats(min_value=-700, max_value=700,
                                    allow_nan=False))
        p = np.random.default_rng(seed).uniform(1e-9, 1 - 1e-9, size=n)
        q = tilted_probabilities(p, theta)
        # extreme tilts may saturate to an exact 0.0/1.0 in float64 (the
        # estimator's (0,1) validation rejects those) but never overflow
        assert np.all(np.isfinite(q))
        assert np.all((q >= 0.0) & (q <= 1.0))
        # moderate tilts keep every rate strictly inside the interval
        moderate = tilted_probabilities(
            np.clip(p, 1e-6, 1 - 1e-6), max(-20.0, min(20.0, theta)))
        assert np.all((moderate > 0.0) & (moderate < 1.0))

    @given(data=st.data())
    def test_stratum_probabilities_normalize(self, data):
        n = data.draw(st.integers(min_value=1, max_value=40))
        max_weight = data.draw(st.integers(min_value=0, max_value=n))
        seed = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
        p = np.random.default_rng(seed).uniform(1e-8, 0.5, size=n)
        dist, tail = stratum_probabilities(p, max_weight)
        assert dist.shape == (max_weight + 1,)
        assert np.all(dist >= 0.0) and tail >= 0.0
        assert math.fsum(dist.tolist()) + tail == pytest.approx(1.0,
                                                                abs=1e-12)
        # truncation is exact for the kept bins: widening the window must
        # not change them (probability only ever flows upward in weight)
        wider, _ = stratum_probabilities(p, min(n, max_weight + 3))
        assert np.array_equal(dist, wider[:max_weight + 1])

    @given(data=st.data())
    def test_homogeneous_strata_match_binomial(self, data):
        n = data.draw(st.integers(min_value=1, max_value=30))
        rate = data.draw(st.floats(min_value=1e-6, max_value=0.5))
        dist, _ = stratum_probabilities(np.full(n, rate), n)
        for w in range(n + 1):
            exact = math.comb(n, w) * rate ** w * (1 - rate) ** (n - w)
            assert dist[w] == pytest.approx(exact, rel=1e-9, abs=1e-300)

    @given(data=st.data())
    @settings(deadline=None)
    def test_conditional_samples_carry_exact_weight(self, data):
        n = data.draw(st.integers(min_value=2, max_value=24))
        weight = data.draw(st.integers(min_value=1, max_value=n))
        seed = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
        rng = np.random.default_rng(seed)
        p = rng.uniform(1e-6, 0.5, size=n)
        include = _conditional_include_table(p, weight)
        assert np.all((include >= 0.0) & (include <= 1.0))
        graph = repetition_code_graph(3, 2, 0.1)
        arrays = sampling_arrays(graph)
        table = _conditional_include_table(arrays.probabilities,
                                           min(weight, arrays.num_edges))
        errors = _sample_fixed_weight(arrays, min(weight, arrays.num_edges),
                                      32, rng, table)
        assert np.all(errors.sum(axis=1) == min(weight, arrays.num_edges))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
