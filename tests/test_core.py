"""Tests for the core package: injection, patch shuffling, regimes, fidelity,
resources and metrics."""

import pytest

from repro.ansatz import BlockedAllToAllAnsatz, FullyConnectedAnsatz
from repro.core import (CircuitProfile, EFTDevice, InjectionStatistics,
                        NISQRegime, PQECRegime, QECConventionalRegime,
                        QECCultivationRegime, RegimeComparison,
                        compare_strategies, effective_rotation_error,
                        estimate_fidelity, expected_consumptions_per_rotation,
                        injection_error_rate, naive_rotation_estimate,
                        nisq_fidelity, pqec_fidelity, provision_cultivation,
                        provision_distillation, qec_conventional_fidelity,
                        relative_improvement,
                        shuffling_rotation_estimate, stall_free_probability,
                        summarize_gammas, win_fraction)
from repro.core.resources import best_distillation_provision
from repro.qec import get_factory


class TestInjection:
    def test_injection_error_matches_paper_constant(self):
        assert injection_error_rate(1e-3) == pytest.approx(0.7667e-3, rel=1e-3)

    def test_expected_consumptions_is_two(self):
        assert expected_consumptions_per_rotation() == pytest.approx(2.0)

    def test_effective_rotation_error(self):
        assert effective_rotation_error(1e-3) == pytest.approx(2 * 23e-3 / 30, rel=1e-9)

    def test_stall_free_probability_of_four_backups(self):
        assert stall_free_probability(4) == pytest.approx(0.9375)

    def test_sec9_numbers_at_paper_operating_point(self):
        stats = InjectionStatistics(physical_error_rate=1e-3, distance=11)
        assert stats.pass_probability == pytest.approx(1 - 2e-3 * 0.999 * 120, rel=1e-9)
        assert stats.high_probability_attempts == pytest.approx(1.959, abs=0.01)
        assert stats.probability_within_high_probability_bound() == pytest.approx(
            0.9391, abs=0.002)
        assert stats.consumption_cycles == 22

    def test_sec9_shuffling_threshold_alpha(self):
        stats = InjectionStatistics(physical_error_rate=1e-3, distance=11)
        alpha, beta = stats.shuffling_thresholds()
        assert alpha == pytest.approx(0.003811, abs=2e-5)
        assert stats.supports_stall_free_shuffling()

    def test_shuffling_fails_above_alpha(self):
        stats = InjectionStatistics(physical_error_rate=5e-3, distance=11)
        assert not stats.supports_stall_free_shuffling()


class TestPatchShuffling:
    def test_shuffling_uses_two_patches_and_no_stalls(self):
        estimate = shuffling_rotation_estimate()
        assert estimate.magic_patches == 2
        assert estimate.expected_stall_cycles < 0.5

    def test_naive_volume_grows_with_backups(self):
        volumes = [naive_rotation_estimate(b).spacetime_volume_patch_cycles
                   for b in (1, 2, 3, 4)]
        assert all(a < b for a, b in zip(volumes, volumes[1:]))

    def test_naive_stalls_shrink_with_backups(self):
        stalls = [naive_rotation_estimate(b).expected_stall_cycles
                  for b in (1, 2, 3, 4)]
        assert all(a > b for a, b in zip(stalls, stalls[1:]))

    def test_fig8_shuffling_always_cheapest(self):
        for point in compare_strategies(range(20, 80, 8)):
            assert point.shuffling_volume < point.best_naive()

    def test_fig8_volume_grows_with_qubits(self):
        points = compare_strategies([20, 44, 76])
        volumes = [point.shuffling_volume for point in points]
        assert volumes[0] < volumes[1] < volumes[2]

    def test_naive_needs_at_least_one_state(self):
        with pytest.raises(ValueError):
            naive_rotation_estimate(0)


class TestRegimes:
    def test_nisq_error_rates_match_paper(self):
        regime = NISQRegime()
        rates = regime.error_rates()
        assert rates["cnot"] == pytest.approx(1e-3)
        assert rates["single_qubit"] == pytest.approx(1e-4)
        assert rates["rz"] == 0.0
        assert rates["measurement"] == pytest.approx(1e-2)

    def test_pqec_error_rates_match_paper(self):
        regime = PQECRegime()
        rates = regime.error_rates()
        assert rates["cnot"] == pytest.approx(4e-7, rel=1e-6)
        assert rates["rz_per_injection"] == pytest.approx(0.7667e-3, rel=1e-3)
        assert rates["idle"] == pytest.approx(1e-7, rel=1e-6)

    def test_simulable_regimes_produce_noise_models(self):
        assert NISQRegime().noise_model().has_noise()
        assert PQECRegime().noise_model().has_noise()

    def test_analytic_regimes_have_no_noise_model(self):
        with pytest.raises(NotImplementedError):
            QECConventionalRegime().noise_model()

    def test_conventional_t_error_tracks_factory(self):
        regime = QECConventionalRegime(factory=get_factory("15-to-1_7,3,3"))
        assert regime.t_state_error == pytest.approx(5.4e-4)


class TestResources:
    def test_program_feasibility(self):
        device = EFTDevice(10_000)
        assert device.fits_program(24)
        assert not device.fits_program(100)
        assert device.max_logical_qubits() == 41

    def test_distillation_provisioning(self):
        device = EFTDevice(10_000)
        provision = provision_distillation(device, 12, get_factory("15-to-1_7,3,3"))
        assert provision.feasible
        assert provision.source_count >= 1
        big = provision_distillation(device, 24, get_factory("15-to-1_17,7,7"))
        assert not big.feasible  # the paper's "exceeds the limit by 400 qubits" case

    def test_cultivation_provisioning(self):
        device = EFTDevice(20_000)
        provision = provision_cultivation(device, 40)
        assert provision.feasible
        assert provision.t_state_error == pytest.approx(2e-9)

    def test_best_provision_prefers_larger_factory_on_big_device(self):
        small_device = best_distillation_provision(EFTDevice(10_000), 24)
        big_device = best_distillation_provision(EFTDevice(60_000), 24)
        assert big_device.t_state_error <= small_device.t_state_error

    def test_infeasible_returns_none(self):
        assert best_distillation_provision(EFTDevice(6_000), 24) is None


class TestFidelityModel:
    def make_profile(self, n, depth=1):
        return CircuitProfile.from_ansatz(FullyConnectedAnsatz(n, depth))

    def test_fig4_pqec_beats_every_factory(self):
        device = EFTDevice(10_000)
        for n in (12, 16, 20):
            profile = self.make_profile(n)
            pqec = pqec_fidelity(profile, PQECRegime(), device).fidelity
            for name in ("15-to-1_7,3,3", "15-to-1_9,3,3", "15-to-1_11,5,5"):
                conv = qec_conventional_fidelity(
                    profile, QECConventionalRegime(factory=get_factory(name)),
                    device).fidelity
                assert pqec >= conv * 0.999

    def test_fig4_advantage_grows_with_qubits(self):
        device = EFTDevice(10_000)
        factory = QECConventionalRegime(factory=get_factory("15-to-1_7,3,3"))
        ratios = []
        for n in (12, 16, 20, 24):
            profile = self.make_profile(n)
            pqec = pqec_fidelity(profile, PQECRegime(), device).fidelity
            conv = qec_conventional_fidelity(profile, factory, device).fidelity
            ratios.append(pqec / conv)
        assert all(a < b for a, b in zip(ratios, ratios[1:]))

    def test_small_factory_dominated_by_t_error(self):
        breakdown = qec_conventional_fidelity(
            self.make_profile(16),
            QECConventionalRegime(factory=get_factory("15-to-1_7,3,3")),
            EFTDevice(10_000))
        assert breakdown.dominant_error_source() == "rotation"

    def test_pqec_dominated_by_injection_error(self):
        breakdown = pqec_fidelity(self.make_profile(16), PQECRegime(), EFTDevice())
        assert breakdown.dominant_error_source() == "rotation"

    def test_nisq_dominated_by_cnot_error_at_scale(self):
        profile = CircuitProfile.from_ansatz(FullyConnectedAnsatz(20, 3))
        breakdown = nisq_fidelity(profile)
        assert breakdown.dominant_error_source() == "entangling"

    def test_fig11_crossover_with_depth(self):
        """At 8 qubits NISQ eventually wins with depth; at 16 it never does."""
        def fidelities(n, depth):
            profile = CircuitProfile.from_ansatz(BlockedAllToAllAnsatz(n, depth))
            return (nisq_fidelity(profile, NISQRegime()).fidelity,
                    pqec_fidelity(profile, PQECRegime()).fidelity)

        nisq_8, pqec_8 = fidelities(8, 25)
        assert nisq_8 > pqec_8
        nisq_16, pqec_16 = fidelities(16, 25)
        assert pqec_16 > nisq_16

    def test_infeasible_program_has_zero_fidelity(self):
        profile = self.make_profile(24)
        breakdown = qec_conventional_fidelity(
            profile, QECConventionalRegime(factory=get_factory("15-to-1_17,7,7")),
            EFTDevice(10_000))
        assert not breakdown.feasible
        assert breakdown.fidelity == 0.0

    def test_estimate_fidelity_dispatch(self):
        profile = self.make_profile(12)
        for regime in (NISQRegime(), PQECRegime(), QECConventionalRegime(),
                       QECCultivationRegime()):
            breakdown = estimate_fidelity(profile, regime, EFTDevice())
            assert 0.0 <= breakdown.fidelity <= 1.0

    def test_profile_from_circuit(self):
        circuit = FullyConnectedAnsatz(6).bound_circuit([0.1] * 12)
        profile = CircuitProfile.from_circuit(circuit)
        assert profile.cnot_count == 15
        assert profile.rotation_count == 12


class TestMetrics:
    def test_relative_improvement_definition(self):
        assert relative_improvement(-10.0, -9.0, -6.0) == pytest.approx(4.0)

    def test_gamma_clamps_below_reference(self):
        assert relative_improvement(-10.0, -10.5, -9.0) >= 1.0

    def test_regime_comparison_gamma(self):
        comparison = RegimeComparison("bench", -4.0, -3.8, -3.0)
        assert comparison.gamma == pytest.approx(5.0)
        assert comparison.energy_gap_a == pytest.approx(0.2)

    def test_summary_statistics(self):
        comparisons = [RegimeComparison("a", -1.0, -0.9, -0.8),
                       RegimeComparison("b", -1.0, -0.5, -0.25)]
        summary = summarize_gammas(comparisons)
        assert summary["max"] >= summary["mean"] >= summary["min"]
        assert summary["count"] == 2

    def test_win_fraction(self):
        assert win_fraction([0.9, 0.8, 0.2], [0.5, 0.9, 0.1]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            win_fraction([], [])
