"""Tests for graph problem instances and measurement grouping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.graphs import (GraphInstance, complete_graph, cut_value,
                                    erdos_renyi_graph, exact_maxcut,
                                    goemans_williamson_bound,
                                    graph_benchmark_suite,
                                    maxcut_cost_hamiltonian,
                                    random_regular_graph, ring_graph,
                                    weighted_edges)
from repro.operators.grouping import (MeasurementGroup, group_commuting,
                                      grouped_measurement_overhead,
                                      num_measurement_circuits, shot_budget)
from repro.operators.hamiltonians import (heisenberg_hamiltonian,
                                          ising_hamiltonian)
from repro.operators.pauli import PauliString, PauliSum
from repro.simulators.statevector import StatevectorSimulator
from repro.circuits.circuit import QuantumCircuit


# ---------------------------------------------------------------------------
# Graph instances and MaxCut
# ---------------------------------------------------------------------------

class TestGraphGenerators:
    def test_ring_graph_edge_count(self):
        graph = ring_graph(8)
        assert graph.number_of_edges() == 8

    def test_ring_graph_minimum_size(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_complete_graph_edge_count(self):
        graph = complete_graph(6)
        assert graph.number_of_edges() == 15

    def test_regular_graph_degrees(self):
        graph = random_regular_graph(10, 3, seed=3)
        assert all(degree == 3 for _, degree in graph.degree())

    def test_regular_graph_parity_check(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_regular_graph_degree_bound(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    def test_erdos_renyi_connected(self):
        import networkx as nx
        graph = erdos_renyi_graph(10, 0.4, seed=2)
        assert nx.is_connected(graph)

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(6, 0.0)

    def test_weighted_edges_default_weight(self):
        edges = weighted_edges(ring_graph(4))
        assert all(weight == 1.0 for _, _, weight in edges)


class TestMaxCut:
    def test_cost_hamiltonian_term_count(self):
        graph = ring_graph(6)
        hamiltonian = maxcut_cost_hamiltonian(graph)
        # One ZZ term per edge plus the identity offset.
        assert hamiltonian.num_terms == graph.number_of_edges() + 1

    def test_cut_value_ring(self):
        graph = ring_graph(4)
        assert cut_value(graph, [0, 1, 0, 1]) == 4.0
        assert cut_value(graph, [0, 0, 0, 0]) == 0.0

    def test_cut_value_length_validation(self):
        with pytest.raises(ValueError):
            cut_value(ring_graph(4), [0, 1])

    def test_exact_maxcut_even_ring_is_fully_cut(self):
        value, assignment = exact_maxcut(ring_graph(6))
        assert value == 6.0
        assert cut_value(ring_graph(6), assignment) == 6.0

    def test_exact_maxcut_odd_ring(self):
        value, _ = exact_maxcut(ring_graph(5))
        assert value == 4.0

    def test_exact_maxcut_size_guard(self):
        with pytest.raises(ValueError):
            exact_maxcut(ring_graph(30))

    def test_bound_exceeds_optimum(self):
        graph = random_regular_graph(10, 3, seed=5)
        optimum, _ = exact_maxcut(graph)
        assert goemans_williamson_bound(graph) >= optimum

    def test_ground_state_energy_matches_negative_maxcut(self):
        """The cost Hamiltonian's ground energy equals −(max cut)."""
        graph = random_regular_graph(8, 3, seed=9)
        hamiltonian = maxcut_cost_hamiltonian(graph)
        optimum, _ = exact_maxcut(graph)
        assert hamiltonian.ground_state_energy() == pytest.approx(-optimum,
                                                                  abs=1e-8)

    def test_computational_state_energy_matches_cut(self):
        """⟨z|C|z⟩ = −cut(z) for every computational basis state."""
        graph = ring_graph(4)
        hamiltonian = maxcut_cost_hamiltonian(graph)
        for assignment in ([0, 0, 1, 1], [0, 1, 1, 0], [1, 0, 1, 0]):
            circuit = QuantumCircuit(4)
            for qubit, bit in enumerate(assignment):
                if bit:
                    circuit.x(qubit)
            state = StatevectorSimulator().run(circuit)
            energy = state.expectation(hamiltonian)
            assert energy == pytest.approx(-cut_value(graph, assignment),
                                           abs=1e-10)

    def test_benchmark_suite_registry(self):
        instances = graph_benchmark_suite(num_nodes_list=(6, 8),
                                          families=("ring", "regular3"))
        assert len(instances) == 4
        for instance in instances:
            assert isinstance(instance, GraphInstance)
            assert instance.hamiltonian.num_qubits == instance.num_qubits
            assert instance.reference_energy == pytest.approx(
                -instance.optimal_cut)

    def test_benchmark_suite_unknown_family(self):
        with pytest.raises(ValueError):
            graph_benchmark_suite(families=("petersen",))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=4, max_value=9),
       st.integers(min_value=0, max_value=1000))
def test_property_random_assignment_never_beats_exact_maxcut(num_nodes, seed):
    graph = ring_graph(num_nodes)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, 2, size=num_nodes)
    optimum, _ = exact_maxcut(graph)
    assert cut_value(graph, assignment) <= optimum


# ---------------------------------------------------------------------------
# Measurement grouping
# ---------------------------------------------------------------------------

class TestMeasurementGrouping:
    def test_groups_cover_all_non_identity_terms(self):
        hamiltonian = heisenberg_hamiltonian(6, coupling=0.5)
        groups = group_commuting(hamiltonian, qubitwise=True)
        grouped_terms = sum(group.num_terms for group in groups)
        non_identity = sum(1 for pauli, _ in hamiltonian.terms()
                           if not pauli.is_identity())
        assert grouped_terms == non_identity

    def test_qubitwise_groups_are_internally_compatible(self):
        hamiltonian = heisenberg_hamiltonian(5)
        for group in group_commuting(hamiltonian, qubitwise=True):
            paulis = group.paulis
            for i in range(len(paulis)):
                for j in range(i + 1, len(paulis)):
                    assert paulis[i].qubitwise_commutes_with(paulis[j])

    def test_commuting_groups_are_internally_compatible(self):
        hamiltonian = heisenberg_hamiltonian(5)
        for group in group_commuting(hamiltonian, qubitwise=False):
            paulis = group.paulis
            for i in range(len(paulis)):
                for j in range(i + 1, len(paulis)):
                    assert paulis[i].commutes_with(paulis[j])

    def test_general_commuting_needs_no_more_groups_than_qwc(self):
        hamiltonian = heisenberg_hamiltonian(6)
        assert (num_measurement_circuits(hamiltonian, qubitwise=False)
                <= num_measurement_circuits(hamiltonian, qubitwise=True))

    def test_ising_model_groups_into_two_qwc_families(self):
        """XX bonds all QW-commute with each other, as do the Z fields."""
        hamiltonian = ising_hamiltonian(8, coupling=1.0)
        assert num_measurement_circuits(hamiltonian, qubitwise=True) == 2

    def test_empty_hamiltonian_has_no_groups(self):
        assert group_commuting(PauliSum(3)) == []

    def test_measurement_basis_for_qwc_group(self):
        group = MeasurementGroup(terms=(
            (PauliString("XIZ"), 1.0),
            (PauliString("XZI"), 0.5),
        ), qubitwise=True)
        basis = group.measurement_basis()
        assert basis == {0: "X", 1: "Z", 2: "Z"}

    def test_measurement_basis_conflict_detection(self):
        group = MeasurementGroup(terms=(
            (PauliString("XI"), 1.0),
            (PauliString("ZI"), 1.0),
        ), qubitwise=True)
        with pytest.raises(ValueError):
            group.measurement_basis()

    def test_non_qwc_group_has_no_single_qubit_basis(self):
        group = MeasurementGroup(terms=((PauliString("XX"), 1.0),),
                                 qubitwise=False)
        with pytest.raises(ValueError):
            group.measurement_basis()

    def test_basis_change_circuit_diagonalizes_group(self):
        """After the basis rotation every group member acts diagonally."""
        hamiltonian = heisenberg_hamiltonian(4)
        for group in group_commuting(hamiltonian, qubitwise=True):
            rotation = group.basis_change_circuit(4)
            for pauli, _ in group.terms:
                # Conjugate |0...0⟩⟨0...0| basis check: rotated operator is
                # diagonal in the computational basis.
                from repro.simulators.statevector import circuit_unitary
                unitary = circuit_unitary(rotation)
                rotated = unitary @ pauli.to_matrix() @ unitary.conj().T
                off_diagonal = rotated - np.diag(np.diag(rotated))
                assert np.max(np.abs(off_diagonal)) < 1e-10


class TestShotBudget:
    def test_budget_scales_inverse_square_with_precision(self):
        hamiltonian = ising_hamiltonian(6)
        loose = shot_budget(hamiltonian, target_standard_error=1e-1)
        tight = shot_budget(hamiltonian, target_standard_error=1e-2)
        assert tight.total_shots == pytest.approx(100 * loose.total_shots,
                                                  rel=0.05)

    def test_budget_positive_precision_required(self):
        with pytest.raises(ValueError):
            shot_budget(ising_hamiltonian(4), target_standard_error=0.0)

    def test_empty_hamiltonian_budget(self):
        budget = shot_budget(PauliSum(2))
        assert budget.total_shots == 0
        assert budget.circuits_per_iteration == 0

    def test_overhead_report_keys(self):
        report = grouped_measurement_overhead(heisenberg_hamiltonian(5))
        assert report["qwc_groups"] <= report["num_terms"]
        assert report["commuting_groups"] <= report["qwc_groups"]
        assert report["qwc_savings"] >= 1.0
