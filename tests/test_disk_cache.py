"""Persistent disk cache: hits, misses, eviction, corruption, tiering.

Covers the PR-4 cache satellite: `DiskExpectationCache` basics (atomic
writes, LRU byte-bounded eviction, corrupt-entry recovery, cross-"process"
persistence via fresh instances), `TieredExpectationCache` promotion, the
content-addressed noise tokens that make keys disk-stable, and the
executor-level cold-vs-warm contract: a warm re-run of a deterministic
workload spends **zero** simulator invocations, proven by the cache-hit
counters.
"""

import os
import pickle

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.execution import (DiskExpectationCache, Executor, ExpectationCache,
                             StabilizerBackend, TieredExpectationCache,
                             noise_token)
from repro.execution.disk_cache import key_digest
from repro.operators import ising_hamiltonian
from repro.simulators.noise import NoiseModel, depolarizing_channel


def make_key(tag):
    return ("fingerprint", ("term", b"\x01", b"\x02"), None,
            "statevector", tag, True)


def clifford_circuit(num_qubits):
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def cx_noise():
    return NoiseModel().add_gate_error(depolarizing_channel(0.05, 2),
                                       ["cx", "cnot"]).add_readout_error(0.01)


class TestKeyDigest:
    def test_digest_is_stable_and_distinct(self):
        assert key_digest(make_key(1)) == key_digest(make_key(1))
        assert key_digest(make_key(1)) != key_digest(make_key(2))
        # Type tags matter: 1 and 1.0 and True are distinct keys.
        assert len({key_digest((1,)), key_digest((1.0,)),
                    key_digest((True,))}) == 3
        # bytes vs str with the same content are distinct.
        assert key_digest((b"ab",)) != key_digest(("ab",))

    def test_rejects_unhashable_content(self):
        with pytest.raises(TypeError):
            key_digest((object(),))


class TestDiskExpectationCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        assert cache.get(make_key(1)) is None
        cache.put(make_key(1), 0.25)
        assert cache.get(make_key(1)) == 0.25
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.writes == 1

    def test_persists_across_instances(self, tmp_path):
        DiskExpectationCache(tmp_path).put(make_key(1), -1.5)
        fresh = DiskExpectationCache(tmp_path)  # a "new process"
        assert fresh.get(make_key(1)) == -1.5

    def test_get_many_put_many(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        cache.put_many([(make_key(i), float(i)) for i in range(4)])
        values = cache.get_many([make_key(i) for i in range(6)])
        assert values == [0.0, 1.0, 2.0, 3.0, None, None]

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        for i in range(16):
            cache.put(make_key(i), float(i))
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()
                     and p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_corrupt_entry_recovers_as_miss(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(1), 0.5)
        [entry] = [p for p in tmp_path.rglob("*.expv")]
        entry.write_bytes(b"not a pickle")
        assert cache.get(make_key(1)) is None
        assert cache.stats.corrupt == 1
        assert not entry.exists()  # bad entry no longer serveable...
        quarantined = entry.with_name(".corrupt-" + entry.name)
        assert quarantined.exists()  # ...but preserved for post-mortem
        cache.put(make_key(1), 0.5)  # and the slot is writable again
        assert cache.get(make_key(1)) == 0.5
        # The quarantined file is invisible to entry scans and is purged by
        # clear() along with everything else.
        assert len(cache) == 1
        cache.clear()
        assert not quarantined.exists()

    def test_truncated_entry_recovers_as_miss(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(1), 0.5)
        [entry] = [p for p in tmp_path.rglob("*.expv")]
        entry.write_bytes(entry.read_bytes()[:5])
        assert cache.get(make_key(1)) is None
        assert cache.stats.corrupt == 1

    def test_key_mismatch_treated_as_corrupt(self, tmp_path):
        # A digest collision must not serve a wrong value: plant a valid
        # entry for key 2 at key 1's path.
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(1), 0.5)
        cache.put(make_key(2), 9.0)
        cache._path_for(make_key(1)).write_bytes(
            cache._path_for(make_key(2)).read_bytes())
        assert cache.get(make_key(1)) is None
        assert cache.stats.corrupt == 1
        assert cache.get(make_key(2)) == 9.0

    def test_foreign_pickle_bytes_are_inert(self, tmp_path):
        # Entries are a plain binary format, never unpickled: a planted
        # pickle payload (the classic shared-volume attack) reads as
        # corrupt and is deleted without ever being deserialized.
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(1), 0.5)
        [entry] = [p for p in tmp_path.rglob("*.expv")]
        entry.write_bytes(pickle.dumps((make_key(1), 9.0)))
        assert cache.get(make_key(1)) is None
        assert cache.stats.corrupt == 1
        assert not entry.exists()
        assert entry.with_name(".corrupt-" + entry.name).exists()

    def test_lru_eviction_respects_touch_order(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        now = 1_000_000_000
        for i in range(6):
            cache.put(make_key(i), float(i))
            os.utime(cache._path_for(make_key(i)), (now + i, now + i))
        # Touch key 0 so it becomes the newest.
        path0 = cache._path_for(make_key(0))
        os.utime(path0, (now + 100, now + 100))
        evicted = cache.evict_to_size(max_bytes=path0.stat().st_size * 2)
        assert evicted == 4
        assert cache.get(make_key(0)) == 0.0  # survived: most recently used
        assert cache.get(make_key(1)) is None  # oldest were evicted
        assert cache.stats.evictions == 4

    def test_numpy_scalar_key_components(self, tmp_path):
        # Sweep configs hand numpy scalars into task fields; keys must be
        # canonical (np.int64(5) addresses the same entry as 5).
        import numpy as np
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(np.int64(5)), 1.5)
        assert cache.get(make_key(5)) == 1.5
        assert key_digest((np.float64(0.5),)) == key_digest((0.5,))

    def test_write_failure_is_swallowed_and_counted(self, tmp_path,
                                                    monkeypatch):
        # A full/read-only cache volume must never crash a finished run.
        import errno
        import tempfile as _tempfile
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(1), 1.0)

        def disk_full(*args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(_tempfile, "mkstemp", disk_full)
        cache.put(make_key(2), 2.0)  # must not raise
        cache.put_many([(make_key(3), 3.0)])  # must not raise either
        monkeypatch.undo()
        assert cache.stats.write_errors == 2
        assert cache.get(make_key(1)) == 1.0  # earlier entries still served
        assert cache.get(make_key(2)) is None

    def test_stale_temp_files_reaped_by_eviction(self, tmp_path):
        # A writer killed between mkstemp and os.replace leaves an orphaned
        # temp file; eviction scans reap it (valid entries untouched).
        cache = DiskExpectationCache(tmp_path)
        cache.put(make_key(1), 1.0)
        bucket = cache._path_for(make_key(1)).parent
        orphan = bucket / ".tmp-orphan.expv"
        orphan.write_bytes(b"junk")
        os.utime(orphan, (1, 1))  # ancient mtime: clearly abandoned
        fresh = bucket / ".tmp-live.expv"
        fresh.write_bytes(b"junk")  # recent: may be an in-flight write
        cache.evict_to_size()
        assert not orphan.exists()
        assert fresh.exists()
        assert cache.get(make_key(1)) == 1.0

    def test_clear_and_len(self, tmp_path):
        cache = DiskExpectationCache(tmp_path)
        cache.put_many([(make_key(i), float(i)) for i in range(3)])
        assert len(cache) == 3
        assert make_key(0) in cache
        cache.clear()
        assert len(cache) == 0
        assert cache.get(make_key(0)) is None


class TestTieredCache:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = DiskExpectationCache(tmp_path)
        disk.put(make_key(1), 0.75)
        tiered = TieredExpectationCache(memory=ExpectationCache(max_size=8),
                                        disk=disk)
        assert tiered.get(make_key(1)) == 0.75  # served from disk
        assert tiered.memory.get(make_key(1)) == 0.75  # now promoted

    def test_get_many_mixes_tiers(self, tmp_path):
        disk = DiskExpectationCache(tmp_path)
        disk.put(make_key(1), 1.0)
        tiered = TieredExpectationCache(disk=disk)
        tiered.memory.put(make_key(0), 0.0)
        assert tiered.get_many([make_key(0), make_key(1), make_key(2)]) \
            == [0.0, 1.0, None]

    def test_put_writes_both_tiers(self, tmp_path):
        tiered = TieredExpectationCache(disk=DiskExpectationCache(tmp_path))
        tiered.put(make_key(1), 2.0)
        assert tiered.memory.get(make_key(1)) == 2.0
        assert tiered.disk.get(make_key(1)) == 2.0

    def test_clear_keeps_disk(self, tmp_path):
        tiered = TieredExpectationCache(disk=DiskExpectationCache(tmp_path))
        tiered.put(make_key(1), 2.0)
        tiered.clear()
        assert tiered.memory.get(make_key(1)) is None
        assert tiered.get(make_key(1)) == 2.0  # re-served from disk


class TestNoiseTokens:
    def test_token_is_content_addressed(self):
        a = cx_noise()
        b = cx_noise()
        assert a is not b
        assert noise_token(a) == noise_token(b)  # equal content, equal token
        b.add_readout_error(0.2)
        assert noise_token(a) != noise_token(b)

    def test_token_stable_under_equal_readdition(self):
        model = cx_noise()
        before = noise_token(model)
        version_before = model.version
        model.add_readout_error(0.01)  # same value re-set: content unchanged
        assert model.version > version_before  # version still bumps
        assert noise_token(model) == before  # but entries remain valid

    def test_equal_content_models_share_cache_entries(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        circuit = clifford_circuit(3)
        executor = Executor(parallel="none")
        first = executor.evaluate_observable(
            circuit, hamiltonian, noise_model=cx_noise(),
            backend="pauli_propagation")[0]
        invocations = executor.stats.simulator_invocations
        second = executor.evaluate_observable(
            circuit, hamiltonian, noise_model=cx_noise(),  # a fresh object
            backend="pauli_propagation")[0]
        assert second == first
        assert executor.stats.simulator_invocations == invocations


class TestExecutorDiskCache:
    def test_cache_dir_attaches_tiered_cache(self, tmp_path):
        executor = Executor(cache_dir=tmp_path)
        assert executor.disk_cache is not None
        assert isinstance(executor.cache, TieredExpectationCache)

    def test_env_var_attaches_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        executor = Executor()
        assert executor.disk_cache is not None
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert Executor().disk_cache is None

    def test_warm_rerun_does_zero_evolutions(self, tmp_path):
        """The PR-4 acceptance shape: cold run fills the disk; a fresh
        executor (fresh memory cache — a "new process") serves everything
        from disk and never invokes a simulator."""
        hamiltonian = ising_hamiltonian(4, 1.0)
        circuits = [clifford_circuit(4), clifford_circuit(4).x(0)]

        cold = Executor(cache_dir=tmp_path)
        energies = cold.evaluate_observable(circuits, hamiltonian,
                                            backend="statevector")
        assert cold.stats.simulator_invocations > 0
        assert cold.disk_cache_stats.writes > 0

        warm = Executor(cache_dir=tmp_path)
        warm_energies = warm.evaluate_observable(circuits, hamiltonian,
                                                 backend="statevector")
        assert warm_energies == energies
        assert warm.stats.simulator_invocations == 0
        assert warm.stats.term_cache_hits \
            == len(circuits) * hamiltonian.num_terms
        assert warm.disk_cache_stats.hits >= hamiltonian.num_terms

    def test_warm_rerun_monte_carlo_seeded(self, tmp_path):
        """Seeded Monte-Carlo ensembles are disk-cacheable: a warm re-run of
        the trajectory workload does zero evolutions and returns the exact
        same value."""
        hamiltonian = ising_hamiltonian(3, 1.0)
        circuit = clifford_circuit(3)
        noise = cx_noise()

        cold = Executor(cache_dir=tmp_path, use_cache=True)
        value = cold.evaluate_observable(
            circuit, hamiltonian, noise_model=noise,
            backend=StabilizerBackend(seed=11), trajectories=40)[0]
        assert cold.stats.simulator_invocations == 1

        warm = Executor(cache_dir=tmp_path, use_cache=True)
        warm_value = warm.evaluate_observable(
            circuit, hamiltonian, noise_model=noise,
            backend=StabilizerBackend(seed=11), trajectories=40)[0]
        assert warm_value == value
        assert warm.stats.simulator_invocations == 0
        # A different seed misses (its token differs) and re-evolves.
        other = Executor(cache_dir=tmp_path, use_cache=True)
        other.evaluate_observable(
            circuit, hamiltonian, noise_model=noise,
            backend=StabilizerBackend(seed=12), trajectories=40)
        assert other.stats.simulator_invocations == 1

    def test_sweep_values_persist(self, tmp_path):
        from repro.circuits.parameters import Parameter
        hamiltonian = ising_hamiltonian(3, 1.0)
        theta = Parameter("t")
        template = QuantumCircuit(3)
        template.h(0).cx(0, 1).cx(1, 2).rz(theta, 2)
        points = [[0.1 * i] for i in range(4)]

        cold = Executor(cache_dir=tmp_path)
        energies = cold.evaluate_sweep(template, points, hamiltonian,
                                       backend="statevector")
        warm = Executor(cache_dir=tmp_path)
        assert warm.evaluate_sweep(template, points, hamiltonian,
                                   backend="statevector") == energies
        assert warm.stats.simulator_invocations == 0

    def test_corrupt_disk_entry_recomputes(self, tmp_path):
        hamiltonian = ising_hamiltonian(3, 1.0)
        circuit = clifford_circuit(3)
        cold = Executor(cache_dir=tmp_path)
        [energy] = cold.evaluate_observable(circuit, hamiltonian,
                                            backend="statevector")
        for path in tmp_path.rglob("*.expv"):
            path.write_bytes(b"garbage")
        warm = Executor(cache_dir=tmp_path)
        [recomputed] = warm.evaluate_observable(circuit, hamiltonian,
                                                backend="statevector")
        assert recomputed == pytest.approx(energy, abs=1e-12)
        assert warm.stats.simulator_invocations == 1
        assert warm.disk_cache_stats.corrupt > 0
