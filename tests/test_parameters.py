"""Tests for the affine parameter-expression system."""


import pytest
from hypothesis import given, strategies as st

from repro.circuits.parameters import (Parameter, ParameterVector, bind_value,
                                       free_parameters)


class TestParameter:
    def test_distinct_parameters_with_same_name_differ(self):
        a1 = Parameter("a")
        a2 = Parameter("a")
        assert a1 != a2
        assert hash(a1) != hash(a2)

    def test_parameter_reports_itself_as_free(self):
        theta = Parameter("theta")
        assert theta.parameters == frozenset({theta})
        assert not theta.is_bound

    def test_parameter_vector_indexing_and_length(self):
        vec = ParameterVector("theta", 5)
        assert len(vec) == 5
        assert vec[2].name == "theta[2]"
        assert list(vec)[-1].name == "theta[4]"

    def test_parameter_vector_rejects_negative_length(self):
        with pytest.raises(ValueError):
            ParameterVector("x", -1)


class TestExpressionArithmetic:
    def test_addition_and_scaling(self):
        theta = Parameter("theta")
        expr = 2.0 * theta + 1.0
        assert expr.coefficient(theta) == pytest.approx(2.0)
        assert expr.offset == pytest.approx(1.0)

    def test_negation_and_subtraction(self):
        theta = Parameter("theta")
        expr = -(theta - 3.0)
        assert expr.coefficient(theta) == pytest.approx(-1.0)
        assert expr.offset == pytest.approx(3.0)

    def test_two_parameter_combination(self):
        a, b = Parameter("a"), Parameter("b")
        expr = 0.5 * a - 2.0 * b + 1.0
        assert expr.evaluate({a: 2.0, b: 0.25}) == pytest.approx(1.5)

    def test_division_by_scalar(self):
        a = Parameter("a")
        expr = (4.0 * a) / 2.0
        assert expr.coefficient(a) == pytest.approx(2.0)

    def test_division_by_zero_raises(self):
        a = Parameter("a")
        with pytest.raises(ZeroDivisionError):
            _ = a / 0.0

    def test_float_conversion_requires_bound_expression(self):
        a = Parameter("a")
        with pytest.raises(TypeError):
            float(a)
        assert float(a.bind({a: 1.25})) == pytest.approx(1.25)

    def test_partial_binding_keeps_remaining_parameters(self):
        a, b = Parameter("a"), Parameter("b")
        expr = a + 2.0 * b
        partial = expr.bind({a: 1.0})
        assert partial.parameters == frozenset({b})
        assert partial.offset == pytest.approx(1.0)

    def test_evaluate_with_missing_binding_raises(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(ValueError):
            (a + b).evaluate({a: 1.0})

    def test_cancellation_produces_bound_expression(self):
        a = Parameter("a")
        expr = a - a
        assert expr.is_bound
        assert float(expr) == pytest.approx(0.0)


class TestHelpers:
    def test_bind_value_passthrough_for_numbers(self):
        assert bind_value(1.5, {}) == pytest.approx(1.5)

    def test_bind_value_resolves_expression(self):
        a = Parameter("a")
        assert bind_value(2 * a, {a: 0.5}) == pytest.approx(1.0)

    def test_free_parameters_collects_across_values(self):
        a, b = Parameter("a"), Parameter("b")
        assert free_parameters([a + 1.0, 3.0, 2 * b]) == frozenset({a, b})


@given(coeff=st.floats(-10, 10, allow_nan=False),
       offset=st.floats(-10, 10, allow_nan=False),
       value=st.floats(-10, 10, allow_nan=False))
def test_affine_expression_evaluates_like_python(coeff, offset, value):
    theta = Parameter("theta")
    expr = coeff * theta + offset
    assert expr.evaluate({theta: value}) == pytest.approx(coeff * value + offset)


@given(values=st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=6))
def test_sum_of_parameters_evaluates_to_sum_of_values(values):
    params = [Parameter(f"p{i}") for i in range(len(values))]
    expr = params[0]
    for param in params[1:]:
        expr = expr + param
    bindings = dict(zip(params, values))
    assert expr.evaluate(bindings) == pytest.approx(sum(values))
