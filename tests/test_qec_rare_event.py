"""Rare-event estimation (PR 10): tilted importance sampling + stratified
subset sampling over the edge-Bernoulli error model.

The load-bearing contracts:

* **The determinism anchor** — importance sampling with the identity tilt
  (``q == p``) consumes the same Bernoulli stream as the direct sampler and
  carries weights that are *exactly* 1.0, so its raw failure counts,
  defect totals and estimate reproduce :func:`run_memory_sampling`
  bitwise.
* **Fan-out independence** — both estimators return bitwise-identical
  results for any worker count, inline vs pooled vs spool-brokered.
* **Exactness of the stratum math** — stratum probabilities match the
  binomial/Poisson-binomial exactly, conditional samples carry exactly
  their stratum's weight, and strata below the minimum fault weight are
  never decoded.
* **Caching** — seeded runs warm the expectation cache (zero decodes on
  repeat), and killed streaming runs resume from chunk checkpoints with
  bitwise-identical snapshots.
* **Consumers** — ``method="rare-event"`` on the memory-experiment
  drivers and the ``qec_rare_event`` service job kind return the
  variance-reduced estimate end to end.
"""

import math

import numpy as np
import pytest

from repro.execution import ExecutionPolicy, Executor
from repro.qec import (RareEventMemoryOutcome, RareEventResult,
                       logical_error_rate_curve, run_rare_event_sampling,
                       stream_rare_event_sampling,
                       surface_code_memory_experiment)
from repro.qec.decoders import LookupDecoder, MWPMDecoder
from repro.qec.decoders.base import batch_decode_stats
from repro.qec.decoders.graph import (repetition_code_graph,
                                      rotated_surface_code_graph)
from repro.qec.rare_event import (_allocate_main_shots,
                                  _conditional_include_table,
                                  _RareEventSpec, _sample_fixed_weight,
                                  effective_wilson_interval,
                                  minimum_fault_weight,
                                  stratum_probabilities,
                                  tilt_for_mean_weight,
                                  tilted_probabilities)
from repro.qec.sampling import run_memory_sampling, sampling_arrays


def _executor():
    return Executor(use_cache=False)


def small_graph(p=0.08):
    return repetition_code_graph(3, 2, p)


# ---------------------------------------------------------------------------
# tilting / stratum math
# ---------------------------------------------------------------------------


class TestTiltMath:
    def test_identity_tilt_is_bitwise_p(self):
        p = np.array([0.01, 0.3, 1e-6, 0.499])
        q = tilted_probabilities(p, 0.0)
        assert np.array_equal(q, p)
        assert q is not p  # a copy: callers may mutate

    def test_tilt_monotone_and_bounded(self):
        p = np.full(50, 1e-4)
        up = tilted_probabilities(p, 3.0)
        down = tilted_probabilities(p, -3.0)
        assert np.all(up > p) and np.all(down < p)
        assert np.all((up > 0) & (up < 1))
        # extreme tilts saturate without overflow
        assert np.all(np.isfinite(tilted_probabilities(p, 500.0)))
        assert np.all(np.isfinite(tilted_probabilities(p, -500.0)))

    def test_tilt_for_mean_weight_hits_target(self):
        p = np.full(200, 1e-4)
        theta = tilt_for_mean_weight(p, 3.0)
        assert float(tilted_probabilities(p, theta).sum()) == \
            pytest.approx(3.0, abs=1e-9)
        with pytest.raises(ValueError):
            tilt_for_mean_weight(p, 0.0)
        with pytest.raises(ValueError):
            tilt_for_mean_weight(p, 200.0)

    def test_stratum_probabilities_binomial(self):
        p = np.full(12, 0.03)
        dist, tail = stratum_probabilities(p, 5)
        for w in range(6):
            assert dist[w] == pytest.approx(
                math.comb(12, w) * 0.03 ** w * 0.97 ** (12 - w), rel=1e-12)
        assert math.fsum(dist.tolist()) + tail == pytest.approx(1.0)

    def test_stratum_probabilities_heterogeneous(self):
        rng = np.random.default_rng(4)
        p = rng.uniform(0.001, 0.3, size=9)
        dist, tail = stratum_probabilities(p, 9)
        # brute force over all 2^9 subsets
        exact = np.zeros(10)
        for mask in range(2 ** 9):
            bits = [(mask >> i) & 1 for i in range(9)]
            prob = math.prod(p[i] if bits[i] else 1 - p[i] for i in range(9))
            exact[sum(bits)] += prob
        assert np.allclose(dist, exact, rtol=1e-10)
        assert tail == pytest.approx(0.0, abs=1e-12)

    def test_minimum_fault_weight(self):
        assert minimum_fault_weight(small_graph()) == 2          # d=3
        assert minimum_fault_weight(
            repetition_code_graph(5, 2, 0.01)) == 3              # d=5
        assert minimum_fault_weight(
            rotated_surface_code_graph(7, 2, 0.01)) == 4         # d=7


class TestConditionalSampling:
    def test_fixed_weight_rows(self):
        graph = small_graph(0.05)
        arrays = sampling_arrays(graph)
        for weight in (1, 2, 4):
            include = _conditional_include_table(arrays.probabilities,
                                                 weight)
            errors = _sample_fixed_weight(arrays, weight, 300,
                                          np.random.default_rng(7), include)
            assert errors.shape == (300, arrays.num_edges)
            assert np.all(errors.sum(axis=1) == weight)

    def test_suffix_table_matches_forward_dp(self):
        rng = np.random.default_rng(11)
        p = rng.uniform(1e-4, 0.4, size=17)
        dist, _ = stratum_probabilities(p, 6)
        for weight in range(1, 7):
            include = _conditional_include_table(p, weight)
            # the include table's underlying suffix entry T[0, w] is the
            # stratum probability; recover it by chaining the first-edge
            # split: P(W=w) = p_0·T[1,w−1] + (1−p_0)·T[1,w].  Instead of
            # reaching into internals, just re-derive via sampling-free
            # identity: include[0, w] = p_0·T[1,w−1]/T[0,w].
            assert np.all((include >= 0.0) & (include <= 1.0))
        assert dist[0] == pytest.approx(np.prod(1 - p), rel=1e-12)

    def test_full_weight_forces_every_edge(self):
        p = np.array([0.2, 0.01, 0.4])
        include = _conditional_include_table(p, 3)
        errors = _sample_fixed_weight(
            sampling_arrays(small_graph()), 3, 8,
            np.random.default_rng(0),
            _conditional_include_table(
                sampling_arrays(small_graph()).probabilities, 3))
        assert np.all(errors.sum(axis=1) == 3)
        # with as many errors left as edges, inclusion is certain
        assert include[0, 3] == 1.0


# ---------------------------------------------------------------------------
# the determinism anchor (q == p reproduces the direct sampler bitwise)
# ---------------------------------------------------------------------------


class TestIdentityTiltAnchor:
    def test_bitwise_match_with_direct_sampler(self):
        graph = small_graph()
        direct = run_memory_sampling(graph, MWPMDecoder(graph), 1024,
                                     seed=31, executor=_executor())
        anchored = run_rare_event_sampling(
            graph, MWPMDecoder(graph), 1024, method="importance", tilt=0.0,
            seed=31, executor=_executor())
        assert anchored.raw_failures == direct.failures
        assert anchored.total_defects == direct.total_defects
        # weights are exactly 1.0: the estimate is exactly failures/shots
        # and the effective sample size is exactly the shot count
        assert anchored.estimate == direct.failures / 1024
        assert anchored.ess == 1024.0

    def test_anchor_holds_on_dense_kernel(self):
        graph = small_graph()
        direct = run_memory_sampling(graph, MWPMDecoder(graph), 512,
                                     seed=8, executor=_executor(),
                                     kernel="dense")
        anchored = run_rare_event_sampling(
            graph, MWPMDecoder(graph), 512, method="importance", tilt=0.0,
            seed=8, executor=_executor(), kernel="dense")
        assert anchored.raw_failures == direct.failures
        assert anchored.total_defects == direct.total_defects

    def test_kernels_agree_bitwise(self):
        graph = small_graph()
        packed = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                         method="stratified", seed=13,
                                         executor=_executor())
        dense = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                        method="stratified", seed=13,
                                        executor=_executor(),
                                        kernel="dense")
        assert packed.estimate == dense.estimate
        assert packed.strata == dense.strata


# ---------------------------------------------------------------------------
# statistical agreement with the direct sampler
# ---------------------------------------------------------------------------


class TestAgreement:
    @pytest.fixture(scope="class")
    def direct_reference(self):
        graph = small_graph()
        run = run_memory_sampling(graph, MWPMDecoder(graph), 120_000,
                                  seed=404, executor=_executor())
        return run.failures / run.shots

    def test_importance_estimate_agrees(self, direct_reference):
        graph = small_graph()
        result = run_rare_event_sampling(graph, MWPMDecoder(graph), 8192,
                                         method="importance", seed=51,
                                         executor=_executor())
        low, high = result.wilson_interval(z=3.3)
        assert low <= direct_reference <= high, (result.estimate,
                                                 direct_reference)
        assert 0 < result.ess <= result.shots

    def test_stratified_estimate_agrees(self, direct_reference):
        graph = small_graph()
        result = run_rare_event_sampling(graph, MWPMDecoder(graph), 8192,
                                         method="stratified", seed=52,
                                         executor=_executor())
        low, high = result.wilson_interval(z=3.3)
        # the skipped tail biases down by at most tail_probability, which
        # wilson_interval already folds into the upper edge
        assert low <= direct_reference <= high, (result.estimate,
                                                 direct_reference)
        # every stratum below the minimum fault weight was skipped
        assert min(s.weight for s in result.strata) == \
            minimum_fault_weight(graph)
        assert sum(s.shots for s in result.strata) == 8192

    def test_strata_below_min_fault_weight_never_fail(self):
        """Empirical justification of the exact-zero skip: decoding every
        below-threshold stratum directly yields zero failures."""
        graph = small_graph()
        result = run_rare_event_sampling(
            graph, MWPMDecoder(graph), 2048, method="stratified",
            min_fault_weight=1, seed=77, executor=_executor())
        below = [s for s in result.strata
                 if s.weight < minimum_fault_weight(graph)]
        assert below and all(s.failures == 0 for s in below)


# ---------------------------------------------------------------------------
# fan-out independence (workers, brokers)
# ---------------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("method", ["importance", "stratified"])
    def test_bitwise_across_worker_counts(self, method):
        graph = small_graph()
        results = [
            run_rare_event_sampling(graph, MWPMDecoder(graph), 2048,
                                    method=method, seed=71,
                                    executor=_executor(),
                                    parallel=mode, max_workers=workers)
            for mode, workers in (("none", None), ("thread", 2),
                                  ("process", 2), ("process", 4))]
        first = results[0]
        for other in results[1:]:
            assert other.estimate == first.estimate
            assert other.variance == first.variance
            assert other.ess == first.ess
            assert other.raw_failures == first.raw_failures
            assert other.total_defects == first.total_defects
            assert other.strata == first.strata

    @pytest.mark.parametrize("method", ["importance", "stratified"])
    def test_bitwise_on_spool_broker(self, method, tmp_path):
        """A FilesystemBroker spool (drained by the parent's work-stealing
        path — no worker subprocess needed) produces the same bits as the
        local fork pool."""
        graph = small_graph()
        pooled = run_rare_event_sampling(
            graph, MWPMDecoder(graph), 1536, method=method, seed=72,
            executor=_executor(),
            policy=ExecutionPolicy(parallel="process", max_workers=2))
        spooled = run_rare_event_sampling(
            graph, MWPMDecoder(graph), 1536, method=method, seed=72,
            executor=_executor(),
            policy=ExecutionPolicy(parallel="process", max_workers=2,
                                   broker=str(tmp_path / "spool")))
        assert spooled.estimate == pooled.estimate
        assert spooled.variance == pooled.variance
        assert spooled.strata == pooled.strata

    def test_streaming_final_matches_batch_stratified(self):
        graph = small_graph()
        batch = run_rare_event_sampling(graph, MWPMDecoder(graph), 2048,
                                        method="stratified", seed=73,
                                        executor=_executor())
        *_, final = stream_rare_event_sampling(graph, MWPMDecoder(graph),
                                               2048, method="stratified",
                                               seed=73,
                                               executor=_executor())
        assert final.estimate == batch.estimate
        assert final.strata == batch.strata

    def test_streaming_chunking_invariant_stratified(self):
        graph = small_graph()
        finals = []
        for chunk_blocks in (1, 3, 16):
            *_, final = stream_rare_event_sampling(
                graph, MWPMDecoder(graph), 2048, method="stratified",
                seed=74, chunk_blocks=chunk_blocks, executor=_executor())
            finals.append(final)
        assert finals[0].estimate == finals[1].estimate == finals[2].estimate
        assert finals[0].strata == finals[1].strata == finals[2].strata


# ---------------------------------------------------------------------------
# caching + resume
# ---------------------------------------------------------------------------


class TestCaching:
    @pytest.mark.parametrize("method", ["importance", "stratified"])
    def test_warm_run_decodes_nothing(self, method, tmp_path):
        graph = small_graph()
        executor = Executor(cache_dir=tmp_path / "cache")
        cold = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                       method=method, seed=81,
                                       executor=executor)
        before = batch_decode_stats().shots_decoded
        warm = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                       method=method, seed=81,
                                       executor=executor)
        assert batch_decode_stats().shots_decoded == before
        assert warm.from_cache and not cold.from_cache
        assert warm.estimate == cold.estimate
        assert warm.variance == cold.variance
        assert warm.ess == cold.ess
        assert warm.strata == cold.strata

    def test_disk_tier_warms_new_executor(self, tmp_path):
        graph = small_graph()
        cold = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                       method="stratified", seed=82,
                                       executor=Executor(
                                           cache_dir=tmp_path / "c"))
        warm = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                       method="stratified", seed=82,
                                       executor=Executor(
                                           cache_dir=tmp_path / "c"))
        assert warm.from_cache and warm.estimate == cold.estimate

    def test_unseeded_runs_never_cache(self):
        graph = small_graph()
        a = run_rare_event_sampling(graph, MWPMDecoder(graph), 512,
                                    method="stratified", seed=None,
                                    executor=Executor())
        assert not a.from_cache

    def test_method_knobs_key_separately(self, tmp_path):
        graph = small_graph()
        executor = Executor(cache_dir=tmp_path / "cache")
        base = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                       method="stratified", seed=83,
                                       executor=executor)
        widened = run_rare_event_sampling(graph, MWPMDecoder(graph), 1024,
                                          method="stratified", seed=83,
                                          max_weight=7, executor=executor)
        assert not widened.from_cache  # different truncation, different key
        assert widened.strata != base.strata

    @pytest.mark.parametrize("method", ["importance", "stratified"])
    def test_killed_stream_resumes_bitwise(self, method, tmp_path):
        graph = small_graph()
        clean = list(stream_rare_event_sampling(
            graph, MWPMDecoder(graph), 2048, method=method, seed=84,
            chunk_blocks=1, executor=Executor(cache_dir=tmp_path / "a")))
        # take a few chunks, then "die"
        interrupted = stream_rare_event_sampling(
            graph, MWPMDecoder(graph), 2048, method=method, seed=84,
            chunk_blocks=1, executor=Executor(cache_dir=tmp_path / "b"))
        for _ in range(3):
            next(interrupted)
        interrupted.close()
        before = batch_decode_stats().shots_decoded
        resumed = list(stream_rare_event_sampling(
            graph, MWPMDecoder(graph), 2048, method=method, seed=84,
            chunk_blocks=1, executor=Executor(cache_dir=tmp_path / "b")))
        redecoded = batch_decode_stats().shots_decoded - before
        assert redecoded < 2048  # flushed chunks replay from the cache
        assert [(s.shots, s.estimate, s.variance, s.ess, s.strata)
                for s in resumed] == \
               [(s.shots, s.estimate, s.variance, s.ess, s.strata)
                for s in clean]


# ---------------------------------------------------------------------------
# estimator plumbing
# ---------------------------------------------------------------------------


class TestPlumbing:
    def test_validation_errors(self):
        graph = small_graph()
        decoder = MWPMDecoder(graph)
        with pytest.raises(ValueError, match="unknown rare-event method"):
            run_rare_event_sampling(graph, decoder, 64, method="nope",
                                    executor=_executor())
        with pytest.raises(ValueError, match="at least one shot"):
            run_rare_event_sampling(graph, decoder, 0, executor=_executor())
        with pytest.raises(ValueError, match="one rate per edge"):
            run_rare_event_sampling(graph, decoder, 64, method="importance",
                                    tilt=np.array([0.1, 0.2]),
                                    executor=_executor())
        with pytest.raises(ValueError, match="strictly in"):
            arrays = sampling_arrays(graph)
            bad = np.zeros(arrays.num_edges)
            run_rare_event_sampling(graph, decoder, 64, method="importance",
                                    tilt=bad, executor=_executor())
        with pytest.raises(ValueError, match="must be >= the minimum"):
            run_rare_event_sampling(graph, decoder, 64, method="stratified",
                                    min_fault_weight=3, max_weight=2,
                                    executor=_executor())

    def test_allocation_spends_exact_budget(self):
        spec = _RareEventSpec(
            method="stratified", q=None, strata=(2, 3, 4),
            stratum_probability={2: 0.1, 3: 0.01, 4: 0.001}, tail=0.0,
            pilot_shots=8, method_token=("stratified", 2, 4, 8))
        pilot = {2: (8, 3), 3: (8, 2), 4: (8, 1)}
        for budget in (0, 1, 7, 100, 1001):
            allocation = _allocate_main_shots(spec, pilot, budget)
            assert sum(allocation.values()) == budget
            assert all(v >= 0 for v in allocation.values())

    def test_effective_wilson_interval(self):
        low, high = effective_wilson_interval(0.001, 1e-8)
        assert 0.0 <= low < 0.001 < high <= 1.0
        # more information -> tighter interval
        low2, high2 = effective_wilson_interval(0.001, 1e-10)
        assert (high2 - low2) < (high - low)
        # tail widens only the top
        low3, high3 = effective_wilson_interval(0.001, 1e-8, tail=0.5)
        assert low3 == low and high3 == pytest.approx(high + 0.5)
        # degenerate variance collapses to the point (plus tail)
        assert effective_wilson_interval(0.25, 0.0) == (0.25, 0.25)

    def test_result_shape(self):
        graph = small_graph()
        result = run_rare_event_sampling(graph, MWPMDecoder(graph), 768,
                                         method="stratified", seed=85,
                                         executor=_executor())
        assert isinstance(result, RareEventResult)
        assert result.logical_error_rate == result.estimate
        assert result.standard_error == math.sqrt(result.variance)
        assert result.shots == 768
        for stratum in result.strata:
            assert stratum.contribution == pytest.approx(
                stratum.probability * stratum.conditional_failure_rate)

    def test_lookup_decoder_rides_too(self):
        graph = small_graph(0.03)
        result = run_rare_event_sampling(
            graph, LookupDecoder(graph, max_error_weight=2), 1024,
            method="stratified", seed=86, executor=_executor())
        assert result.shots == 1024


# ---------------------------------------------------------------------------
# consumers: memory-experiment drivers
# ---------------------------------------------------------------------------


class TestConsumers:
    def test_surface_memory_rare_event(self):
        out = surface_code_memory_experiment(
            3, 1e-3, shots=1024, seed=5, method="rare-event",
            executor=_executor())
        assert isinstance(out, RareEventMemoryOutcome)
        assert out.logical_error_rate == out.rare.estimate
        assert out.logical_error_rate > 0  # direct would read 0 here
        low, high = out.wilson_interval()
        assert low <= out.logical_error_rate <= high
        assert out.standard_error == out.rare.standard_error

    def test_direct_method_unchanged(self):
        out = surface_code_memory_experiment(3, 1e-3, shots=256, seed=5,
                                             executor=_executor())
        assert not isinstance(out, RareEventMemoryOutcome)
        with pytest.raises(TypeError, match="takes no estimator options"):
            surface_code_memory_experiment(3, 1e-3, shots=256, seed=5,
                                           method="direct", tilt=1.0,
                                           executor=_executor())
        with pytest.raises(ValueError, match="unknown method"):
            surface_code_memory_experiment(3, 1e-3, shots=256, seed=5,
                                           method="bogus",
                                           executor=_executor())

    def test_curve_with_rare_event_method(self):
        curve = logical_error_rate_curve(
            [3], [1e-3, 3e-3], shots=768, seed=3, method="rare-event",
            executor=_executor())
        assert set(curve) == {(3, 1e-3), (3, 3e-3)}
        assert all(value > 0 for value in curve.values())
        assert curve[(3, 1e-3)] < curve[(3, 3e-3)]


# ---------------------------------------------------------------------------
# consumers: the qec_rare_event service job kind
# ---------------------------------------------------------------------------


class TestServiceJobKind:
    def _run_prepared(self, payload, tmp_path):
        import threading
        from repro.service.jobs import JobContext, prepare_job
        prepared = prepare_job("qec_rare_event", payload)
        events = []
        context = JobContext(
            executor=Executor(cache_dir=tmp_path / "cache"),
            emit=lambda kind, data: events.append((kind, data)),
            cancelled=threading.Event())
        return prepared, prepared.run(context), events

    def test_prepare_run_and_partials(self, tmp_path):
        from repro.service import qec_rare_event_payload
        payload = qec_rare_event_payload(
            code="surface", distance=3, rounds=3, error_rate=1e-3,
            shots=1024, seed=21)
        prepared, result, events = self._run_prepared(payload, tmp_path)
        assert prepared.kind == "qec_rare_event"
        assert prepared.key is not None  # seeded + mwpm: coalesceable
        assert result["method"] == "stratified"
        assert result["shots"] == 1024
        assert result["estimate"] > 0
        assert result["logical_error_rate"] == result["estimate"]
        assert result["wilson"][0] <= result["estimate"] <= \
            result["wilson"][1]
        assert result["strata"]  # per-stratum breakdown on the wire
        partials = [data for kind, data in events if kind == "partial"]
        assert partials
        assert all("strata" in partial for partial in partials)
        assert partials[-1]["shots"] == 1024

    def test_importance_job(self, tmp_path):
        from repro.service import qec_rare_event_payload
        payload = qec_rare_event_payload(
            distance=3, rounds=2, error_rate=0.02, shots=1024, seed=22,
            method="importance")
        _, result, _ = self._run_prepared(payload, tmp_path)
        assert result["method"] == "importance"
        assert result["strata"] == []
        assert result["ess"] > 0

    def test_key_separates_methods_and_coalesces_duplicates(self):
        from repro.service import qec_rare_event_payload
        from repro.service.jobs import prepare_job
        base = dict(distance=3, rounds=2, error_rate=0.02, shots=512,
                    seed=9)
        a = prepare_job("qec_rare_event",
                        qec_rare_event_payload(**base)).key
        b = prepare_job("qec_rare_event",
                        qec_rare_event_payload(**base)).key
        c = prepare_job("qec_rare_event",
                        qec_rare_event_payload(method="importance",
                                               **base)).key
        unseeded = prepare_job(
            "qec_rare_event",
            qec_rare_event_payload(distance=3, rounds=2, error_rate=0.02,
                                   shots=512)).key
        assert a == b
        assert c != a
        assert unseeded is None

    def test_malformed_payloads_rejected(self):
        from repro.service import ProtocolError
        from repro.service.jobs import prepare_job
        with pytest.raises(ProtocolError, match="unknown rare-event"):
            prepare_job("qec_rare_event",
                        {"distance": 3, "rounds": 2, "error_rate": 0.02,
                         "shots": 64, "method": "bogus"})
        with pytest.raises(ProtocolError, match="shots"):
            prepare_job("qec_rare_event",
                        {"distance": 3, "rounds": 2, "error_rate": 0.02,
                         "shots": 0})
        with pytest.raises(ProtocolError, match="unknown code family"):
            prepare_job("qec_rare_event",
                        {"code": "toric", "distance": 3, "rounds": 2,
                         "error_rate": 0.02, "shots": 64})

    def test_end_to_end_over_socket(self, tmp_path):
        from repro.service import (ServiceClient, ServiceConfig,
                                   start_in_thread)
        sock = tmp_path / "svc.sock"
        handle = start_in_thread(ServiceConfig(
            socket_path=str(sock), db_path=str(tmp_path / "svc.db"),
            workers=1))
        try:
            with ServiceClient(str(sock)) as client:
                job_id = client.submit_qec_rare_event(
                    distance=3, rounds=2, error_rate=0.02, shots=512,
                    seed=33)
                result = client.fetch(job_id)
                assert result["method"] == "stratified"
                assert result["shots"] == 512
                assert result["strata"]
        finally:
            handle.stop()
