"""Grouped-observable engine: correctness, caching and single-evolution tests.

The contract under test: for any many-term Hamiltonian,
``Executor.evaluate_observable`` / ``term_expectations`` must reproduce the
legacy per-term submission path (one single-term ``ExecutionTask`` per Pauli
term through ``execute()``) to 1e-10 on every deterministic backend, while
evolving each unique circuit exactly once and serving overlapping
Hamiltonians from the per-(circuit, term) cache.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.execution import (Backend, BackendCapabilities, ExecutionTask,
                             Executor, evaluate_observable, term_expectations)
from repro.operators.grouping import group_commuting
from repro.operators.pauli import PauliString, PauliSum
from repro.simulators.kernels import (density_matrix_term_expectations,
                                      observable_bit_matrices,
                                      statevector_term_expectations)
from repro.simulators.noise import (NoiseModel, depolarizing_channel)
from repro.simulators.statevector import StatevectorSimulator
from repro.simulators.stabilizer import StabilizerSimulator


def random_hamiltonian(num_qubits, num_terms, seed, include_identity=True):
    rng = np.random.default_rng(seed)
    hamiltonian = PauliSum(num_qubits)
    if include_identity:
        hamiltonian.add_term(PauliString.identity(num_qubits), rng.normal())
    while hamiltonian.num_terms < num_terms:
        label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
        hamiltonian.add_label(label, rng.normal())
    return hamiltonian


def random_rotation_circuit(num_qubits, seed):
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(0, np.pi)), qubit)
        circuit.rz(float(rng.uniform(0, np.pi)), qubit)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.rx(float(rng.uniform(0, np.pi)), qubit)
    return circuit


def random_clifford_circuit(num_qubits, seed):
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(3 * num_qubits):
        choice = rng.integers(0, 5)
        qubit = int(rng.integers(0, num_qubits))
        if choice == 0:
            circuit.h(qubit)
        elif choice == 1:
            circuit.s(qubit)
        elif choice == 2:
            circuit.rz(float(rng.integers(0, 4)) * np.pi / 2.0, qubit)
        elif choice == 3:
            circuit.x(qubit)
        else:
            other = int(rng.integers(0, num_qubits))
            if other != qubit:
                circuit.cx(qubit, other)
    return circuit


def per_term_energy(executor, circuit, hamiltonian, backend,
                    noise_model=None):
    """The legacy path: one single-term ExecutionTask per Pauli term."""
    task = ExecutionTask(circuit, observable=hamiltonian,
                         noise_model=noise_model)
    results = executor.run(task.split_terms(), backend=backend)
    coefficients = [float(np.real(c)) for _, c in hamiltonian.terms()]
    return sum(c * r.value for c, r in zip(coefficients, results))


def pauli_noise_model(readout=0.02):
    noise = NoiseModel("test")
    noise.add_gate_error(depolarizing_channel(0.01, 1), ["h", "s", "x", "rz"])
    noise.add_gate_error(depolarizing_channel(0.02, 2), ["cx"])
    noise.add_readout_error(readout)
    return noise


class TestKernels:
    def test_statevector_kernel_matches_matrix_reference(self):
        hamiltonian = random_hamiltonian(4, 12, seed=1)
        rng = np.random.default_rng(2)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        state /= np.linalg.norm(state)
        values = statevector_term_expectations(state, observable=hamiltonian)
        reference = [np.real(np.vdot(state, pauli.to_matrix() @ state))
                     for pauli, _ in hamiltonian.terms()]
        assert np.allclose(values, reference, atol=1e-12)

    def test_density_matrix_kernel_matches_matrix_reference(self):
        hamiltonian = random_hamiltonian(3, 10, seed=3)
        rng = np.random.default_rng(4)
        # A random valid density matrix (mixture of two pure states).
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        phi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        phi /= np.linalg.norm(phi)
        rho = 0.7 * np.outer(psi, psi.conj()) + 0.3 * np.outer(phi, phi.conj())
        values = density_matrix_term_expectations(rho, observable=hamiltonian)
        reference = [np.real(np.trace(rho @ pauli.to_matrix()))
                     for pauli, _ in hamiltonian.terms()]
        assert np.allclose(values, reference, atol=1e-12)

    def test_bit_matrices_roundtrip(self):
        hamiltonian = random_hamiltonian(4, 8, seed=5)
        coefficients, x_bits, z_bits = observable_bit_matrices(hamiltonian)
        for index, (pauli, coeff) in enumerate(hamiltonian.terms()):
            assert np.array_equal(x_bits[index], pauli.x)
            assert np.array_equal(z_bits[index], pauli.z)
            assert coefficients[index] == complex(coeff)

    def test_pauli_sum_expectation_uses_kernel_consistently(self):
        hamiltonian = random_hamiltonian(4, 10, seed=6)
        rng = np.random.default_rng(7)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        state /= np.linalg.norm(state)
        dense = np.real(np.vdot(state, hamiltonian.to_matrix() @ state))
        assert abs(hamiltonian.expectation(state) - dense) < 1e-10


class TestGroupedVersusPerTerm:
    """Grouped and term-by-term energies agree to 1e-10 on every backend."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_statevector(self, seed):
        hamiltonian = random_hamiltonian(4, 10, seed=seed)
        circuit = random_rotation_circuit(4, seed=seed + 100)
        executor = Executor()
        grouped = executor.evaluate_observable(circuit, hamiltonian,
                                               backend="statevector")[0]
        reference = per_term_energy(executor, circuit, hamiltonian,
                                    "statevector")
        assert abs(grouped - reference) < 1e-10

    @pytest.mark.parametrize("seed", [21, 22])
    def test_density_matrix(self, seed):
        hamiltonian = random_hamiltonian(3, 8, seed=seed)
        circuit = random_rotation_circuit(3, seed=seed + 100)
        noise = pauli_noise_model()
        executor = Executor()
        grouped = executor.evaluate_observable(
            circuit, hamiltonian, noise_model=noise,
            backend="density_matrix")[0]
        reference = per_term_energy(executor, circuit, hamiltonian,
                                    "density_matrix", noise_model=noise)
        assert abs(grouped - reference) < 1e-10

    @pytest.mark.parametrize("seed", [31, 32])
    def test_stabilizer_noiseless(self, seed):
        hamiltonian = random_hamiltonian(4, 10, seed=seed)
        circuit = random_clifford_circuit(4, seed=seed + 100)
        executor = Executor()
        grouped = executor.evaluate_observable(circuit, hamiltonian,
                                               backend="stabilizer")[0]
        reference = per_term_energy(executor, circuit, hamiltonian,
                                    "stabilizer")
        assert abs(grouped - reference) < 1e-10

    @pytest.mark.parametrize("seed", [41, 42])
    def test_pauli_propagation_noisy(self, seed):
        hamiltonian = random_hamiltonian(4, 10, seed=seed)
        circuit = random_clifford_circuit(4, seed=seed + 100)
        noise = pauli_noise_model(readout=0.0)
        executor = Executor()
        grouped = executor.evaluate_observable(
            circuit, hamiltonian, noise_model=noise,
            backend="pauli_propagation")[0]
        reference = per_term_energy(executor, circuit, hamiltonian,
                                    "pauli_propagation", noise_model=noise)
        assert abs(grouped - reference) < 1e-10

    def test_auto_routing_matches_per_term(self):
        hamiltonian = random_hamiltonian(4, 10, seed=51)
        circuit = random_rotation_circuit(4, seed=151)
        executor = Executor()
        grouped = executor.evaluate_observable(circuit, hamiltonian)[0]
        reference = per_term_energy(executor, circuit, hamiltonian, "auto")
        assert abs(grouped - reference) < 1e-10

    def test_grouped_matches_whole_observable_execute(self):
        hamiltonian = random_hamiltonian(4, 12, seed=61)
        circuit = random_rotation_circuit(4, seed=161)
        executor = Executor()
        grouped = executor.evaluate_observable(circuit, hamiltonian,
                                               backend="statevector")[0]
        whole = executor.run(ExecutionTask(circuit, observable=hamiltonian),
                             backend="statevector")[0].value
        assert abs(grouped - whole) < 1e-10


class TestStabilizerGroupedMeasurement:
    def test_qwc_basis_rotation_matches_direct_tableau(self):
        hamiltonian = random_hamiltonian(5, 14, seed=71,
                                         include_identity=False)
        circuit = random_clifford_circuit(5, seed=171)
        simulator = StabilizerSimulator()
        state = simulator.run(circuit, inject_noise=False)
        direct = np.array([state.expectation_pauli(pauli)
                           for pauli, _ in hamiltonian.terms()])
        grouped = simulator.expectation_many(circuit, hamiltonian)
        assert np.allclose(grouped, direct, atol=1e-12)

    def test_groups_cover_all_terms_once(self):
        hamiltonian = random_hamiltonian(4, 12, seed=81,
                                         include_identity=False)
        groups = group_commuting(hamiltonian, qubitwise=True)
        seen = [pauli.key() for group in groups for pauli, _ in group.terms]
        expected = [pauli.key() for pauli, _ in hamiltonian.terms()]
        assert sorted(seen) == sorted(expected)

    def test_noisy_stabilizer_grouped_runs_and_is_bounded(self):
        hamiltonian = random_hamiltonian(3, 6, seed=91)
        circuit = random_clifford_circuit(3, seed=191)
        simulator = StabilizerSimulator(pauli_noise_model(), seed=5)
        values = simulator.expectation_many(circuit, hamiltonian,
                                            trajectories=20)
        assert values.shape == (hamiltonian.num_terms,)
        assert np.all(np.abs(values) <= 1.0 + 1e-12)


class TestSingleEvolutionAndCaching:
    def test_one_evolution_per_unique_circuit(self):
        hamiltonian = random_hamiltonian(4, 10, seed=101)
        circuits = [random_rotation_circuit(4, seed=s) for s in (1, 2, 3)]
        executor = Executor()
        executor.evaluate_observable(circuits + [circuits[0]], hamiltonian,
                                     backend="statevector")
        # Three unique circuits, four task slots: exactly three evolutions.
        assert executor.stats.simulator_invocations == 3
        assert executor.stats.grouped_tasks == 4

    def test_repeat_evaluation_is_fully_cached(self):
        hamiltonian = random_hamiltonian(4, 10, seed=111)
        circuit = random_rotation_circuit(4, seed=211)
        executor = Executor()
        first = executor.evaluate_observable(circuit, hamiltonian,
                                             backend="statevector")[0]
        assert executor.stats.simulator_invocations == 1
        second = executor.evaluate_observable(circuit, hamiltonian,
                                              backend="statevector")[0]
        assert executor.stats.simulator_invocations == 1  # no new evolution
        assert executor.stats.term_cache_hits == hamiltonian.num_terms
        assert first == second

    def test_overlapping_hamiltonian_hits_term_cache(self):
        full = random_hamiltonian(4, 12, seed=121)
        circuit = random_rotation_circuit(4, seed=221)
        subset = PauliSum(4)
        for pauli, coeff in list(full.terms())[:5]:
            subset.add_term(pauli, coeff)
        executor = Executor()
        executor.evaluate_observable(circuit, full, backend="statevector")
        invocations = executor.stats.simulator_invocations
        energy = executor.evaluate_observable(circuit, subset,
                                              backend="statevector")[0]
        # Every subset term was already cached: no new evolution at all.
        assert executor.stats.simulator_invocations == invocations
        assert executor.stats.term_cache_hits == subset.num_terms
        reference = per_term_energy(executor, circuit, subset, "statevector")
        assert abs(energy - reference) < 1e-10

    def test_partial_overlap_runs_one_more_evolution(self):
        base = random_hamiltonian(4, 8, seed=131)
        extended = base + random_hamiltonian(4, 4, seed=132)
        circuit = random_rotation_circuit(4, seed=231)
        executor = Executor()
        executor.evaluate_observable(circuit, base, backend="statevector")
        executor.evaluate_observable(circuit, extended,
                                     backend="statevector")
        # The second call may only re-evolve once for the genuinely new terms.
        assert executor.stats.simulator_invocations == 2
        assert executor.stats.term_cache_hits > 0

    def test_use_cache_false_skips_cache(self):
        hamiltonian = random_hamiltonian(4, 8, seed=141)
        circuit = random_rotation_circuit(4, seed=241)
        executor = Executor()
        executor.evaluate_observable(circuit, hamiltonian,
                                     backend="statevector", use_cache=False)
        executor.evaluate_observable(circuit, hamiltonian,
                                     backend="statevector", use_cache=False)
        assert executor.stats.simulator_invocations == 2
        assert executor.stats.term_cache_hits == 0

    def test_stochastic_tasks_are_not_shared_or_cached(self):
        hamiltonian = random_hamiltonian(3, 6, seed=151)
        circuit = random_clifford_circuit(3, seed=251)
        noise = pauli_noise_model()
        executor = Executor()
        executor.evaluate_observable([circuit, circuit], hamiltonian,
                                     noise_model=noise, backend="stabilizer",
                                     trajectories=10)
        # Monte-Carlo estimates must never collapse across tasks.
        assert executor.stats.simulator_invocations == 2
        assert executor.stats.term_cache_hits == 0

    def test_threaded_matches_sequential(self):
        hamiltonian = random_hamiltonian(4, 10, seed=161)
        circuits = [random_rotation_circuit(4, seed=s)
                    for s in range(10)]
        sequential = Executor().evaluate_observable(
            circuits, hamiltonian, backend="statevector", max_workers=1)
        threaded = Executor().evaluate_observable(
            circuits, hamiltonian, backend="statevector", max_workers=4)
        assert np.allclose(sequential, threaded, atol=1e-12)


class TestTermExpectations:
    def test_values_align_with_terms_order(self):
        hamiltonian = random_hamiltonian(4, 10, seed=171)
        circuit = random_rotation_circuit(4, seed=271)
        executor = Executor()
        values = executor.term_expectations(circuit, hamiltonian,
                                            backend="statevector")
        state = StatevectorSimulator().run(circuit)
        for (pauli, _), value in zip(hamiltonian.terms(), values):
            single = PauliSum(4, [(pauli, 1.0)])
            assert abs(value - state.expectation(single)) < 1e-10

    def test_identity_term_reports_one(self):
        hamiltonian = PauliSum(3)
        hamiltonian.add_term(PauliString.identity(3), 2.5)
        hamiltonian.add_label("ZZI", 1.0)
        circuit = random_clifford_circuit(3, seed=281)
        for backend in ("statevector", "stabilizer", "pauli_propagation"):
            values = term_expectations(circuit, hamiltonian, backend=backend)
            assert abs(values[0] - 1.0) < 1e-12

    def test_module_level_entry_points_share_default_executor(self):
        hamiltonian = random_hamiltonian(4, 8, seed=181)
        circuit = random_rotation_circuit(4, seed=281)
        values = term_expectations(circuit, hamiltonian,
                                   backend="statevector")
        [energy] = evaluate_observable(circuit, hamiltonian,
                                       backend="statevector")
        coefficients = np.array([float(np.real(c))
                                 for _, c in hamiltonian.terms()])
        assert abs(energy - float(np.dot(coefficients, values))) < 1e-10


class TestCustomBackendFallback:
    def test_default_term_expectations_splits_terms(self):
        class MinimalBackend(Backend):
            """A backend that only knows single-task execution."""

            def capabilities(self):
                return BackendCapabilities(name="minimal",
                                           supports_noise=False)

            def _run_task(self, task):
                simulator = StatevectorSimulator()
                if task.is_expectation:
                    return simulator.expectation(task.circuit,
                                                 task.observable)
                return simulator.sample(task.circuit, task.shots)

        hamiltonian = random_hamiltonian(3, 6, seed=191)
        circuit = random_rotation_circuit(3, seed=291)
        backend = MinimalBackend()
        task = ExecutionTask(circuit, observable=hamiltonian)
        values = backend.term_expectations(task)
        # The fallback spends one invocation per term (what adapters avoid).
        assert backend.invocations == hamiltonian.num_terms
        reference = Executor().term_expectations(circuit, hamiltonian,
                                                 backend="statevector")
        assert np.allclose(values, reference, atol=1e-10)

    def test_custom_backend_through_grouped_engine(self):
        class MinimalBackend(Backend):
            def capabilities(self):
                return BackendCapabilities(name="minimal",
                                           supports_noise=False)

            def _run_task(self, task):
                return StatevectorSimulator().expectation(task.circuit,
                                                          task.observable)

        hamiltonian = random_hamiltonian(3, 6, seed=201)
        circuit = random_rotation_circuit(3, seed=301)
        executor = Executor()
        grouped = executor.evaluate_observable(circuit, hamiltonian,
                                               backend=MinimalBackend())[0]
        # The fallback spends one evolution per term and the executor's
        # accounting must say so (adapters with overrides report 1).
        assert (executor.stats.backend_invocations["minimal"]
                == hamiltonian.num_terms)
        reference = per_term_energy(executor, circuit, hamiltonian,
                                    "statevector")
        assert abs(grouped - reference) < 1e-10
