"""Tests for layouts, lattice-surgery costs and the spacetime scheduler."""


import pytest

from repro.ansatz import (BlockedAllToAllAnsatz, FullyConnectedAnsatz,
                          LinearAnsatz)
from repro.architecture import (LAYOUT_FAMILIES, LatticeSurgeryScheduler,
                                ProposedLayout, layout_volume_ratios,
                                make_layout, rotation_layer_cycles,
                                schedule_on_layout)


class TestProposedLayout:
    def test_packing_efficiency_formula(self):
        for k in (1, 4, 10, 100):
            layout = ProposedLayout(k=k)
            expected = 4 * (k + 1) / (6 * (k + 2))
            assert layout.packing_efficiency() == pytest.approx(expected)

    def test_packing_efficiency_approaches_two_thirds(self):
        assert ProposedLayout(k=200).packing_efficiency() == pytest.approx(2 / 3, abs=0.01)

    def test_tile_and_qubit_counts(self):
        layout = ProposedLayout(k=4)
        assert layout.num_data_qubits == 20
        assert layout.total_tiles() == 36
        assert layout.physical_qubits(11) == 36 * 241

    def test_regions(self):
        layout = ProposedLayout(k=4)
        assert layout.region_of(0) == 0
        assert layout.region_of(8) == 1
        assert layout.region_of(16) == 2

    def test_cluster_cost_rules(self):
        layout = ProposedLayout(k=4)
        # Intra-half multi-target cluster: fast.
        assert layout.cluster_cycles(1, (0, 2, 3)) == 4
        # Cross-half multi-target cluster: slow (Fig. 9B).
        assert layout.cluster_cycles(1, (12, 13)) == 8
        # Single-target cross-half linking CNOT: fast (Fig. 10).
        assert layout.cluster_cycles(1, (12,)) == 4
        # Cluster reaching only the extra column stays fast.
        assert layout.cluster_cycles(16, (17, 18)) == 4

    def test_magic_state_slots(self):
        assert ProposedLayout(k=6).parallel_magic_state_slots() == 4
        assert ProposedLayout(k=1).parallel_magic_state_slots() == 1

    def test_requires_exact_size(self):
        with pytest.raises(ValueError):
            ProposedLayout(num_data_qubits=10)
        with pytest.raises(ValueError):
            ProposedLayout(num_data_qubits=20, k=4)


class TestComparisonLayouts:
    def test_all_families_construct(self):
        for name in LAYOUT_FAMILIES:
            layout = make_layout(name, 20)
            assert layout.total_tiles() >= 20
            assert 0 < layout.packing_efficiency() <= 1.0

    def test_footprint_ordering(self):
        footprints = {name: make_layout(name, 40).total_tiles()
                      for name in ("proposed", "compact", "intermediate", "fast", "grid")}
        assert footprints["compact"] <= footprints["intermediate"]
        assert footprints["intermediate"] < footprints["fast"] < footprints["grid"]

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            make_layout("hexagonal", 10)


class TestScheduler:
    def test_rotation_layer_cycles_parallel_vs_waves(self):
        assert rotation_layer_cycles(num_qubits=10, max_parallel=None) == pytest.approx(4.0)
        assert rotation_layer_cycles(num_qubits=10, max_parallel=5) == pytest.approx(8.0)

    def test_blocked_is_faster_than_fche_on_proposed_layout(self):
        # Table 2 shape: blocked_all_to_all takes roughly half the cycles.
        for n in (20, 40, 60):
            layout = make_layout("proposed", n)
            blocked = schedule_on_layout(BlockedAllToAllAnsatz(n), layout,
                                         include_measurement=False)
            fche = schedule_on_layout(FullyConnectedAnsatz(n), layout,
                                      include_measurement=False)
            assert blocked.cycles < fche.cycles
            assert 0.25 <= blocked.cycles / fche.cycles <= 0.7

    def test_cycles_grow_linearly_with_qubits(self):
        cycles = [schedule_on_layout(BlockedAllToAllAnsatz(n),
                                     make_layout("proposed", n),
                                     include_measurement=False).cycles
                  for n in (20, 40, 60)]
        increments = [b - a for a, b in zip(cycles, cycles[1:])]
        assert increments[0] == pytest.approx(increments[1], rel=0.05)

    def test_volume_metrics_consistency(self):
        result = schedule_on_layout(FullyConnectedAnsatz(12),
                                    make_layout("proposed", 12))
        assert result.spacetime_volume_tiles == pytest.approx(
            result.total_tiles * result.cycles)
        assert result.spacetime_volume_physical == pytest.approx(
            result.physical_qubits * result.cycles)
        assert result.spacetime_volume_engaged <= result.spacetime_volume_tiles
        assert result.wall_clock_rounds == pytest.approx(result.cycles * 11)

    def test_serial_layouts_are_slower(self):
        ansatz = BlockedAllToAllAnsatz(20)
        proposed = schedule_on_layout(ansatz, make_layout("proposed", 20))
        compact = schedule_on_layout(ansatz, make_layout("compact", 20))
        assert compact.cycles > proposed.cycles

    def test_ansatz_too_large_for_layout_rejected(self):
        scheduler = LatticeSurgeryScheduler(make_layout("proposed", 12))
        with pytest.raises(ValueError):
            scheduler.schedule(FullyConnectedAnsatz(16))


class TestTable1:
    def test_proposed_layout_minimizes_spacetime_volume(self):
        """Table 1 shape: every ratio relative to the proposed layout is ≥ 1."""
        sizes = [8, 20, 32, 44]
        for factory in (LinearAnsatz, FullyConnectedAnsatz, BlockedAllToAllAnsatz):
            ratios = layout_volume_ratios(factory, sizes)
            assert all(value >= 0.99 for value in ratios.values()), ratios

    def test_grid_is_the_most_expensive_layout(self):
        ratios = layout_volume_ratios(FullyConnectedAnsatz, [20, 40])
        assert ratios["grid"] == max(ratios.values())
        assert ratios["grid"] > 3.0
