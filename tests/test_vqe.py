"""Tests for the VQE engine: energy evaluators, optimizers, runners, and the
Clifford-restricted flow."""

import math

import numpy as np
import pytest

from repro.ansatz import FullyConnectedAnsatz, LinearAnsatz
from repro.core import NISQRegime, PQECRegime
from repro.operators import heisenberg_hamiltonian, ising_hamiltonian
from repro.simulators import NoiseModel, depolarizing_channel
from repro.vqe import (VQE, BackendEnergyEvaluator, CliffordVQE,
                       CobylaOptimizer, GeneticOptimizer,
                       NelderMeadOptimizer, SPSAOptimizer,
                       best_noiseless_clifford_energy, compare_regimes,
                       compare_regimes_clifford, indices_to_angles)


def quadratic(x):
    return float(np.sum((np.asarray(x) - 0.3) ** 2))


class TestOptimizers:
    @pytest.mark.parametrize("optimizer", [CobylaOptimizer(max_iterations=200),
                                           NelderMeadOptimizer(max_iterations=300),
                                           SPSAOptimizer(max_iterations=200, seed=0)])
    def test_minimizes_quadratic(self, optimizer):
        result = optimizer.minimize(quadratic, np.zeros(3))
        assert result.best_value < 0.05
        assert result.num_evaluations > 0
        assert len(result.history) == result.num_evaluations

    def test_history_best_is_monotone_in_result(self):
        result = CobylaOptimizer(max_iterations=100).minimize(quadratic, np.ones(2))
        assert result.best_value == pytest.approx(min(result.history))

    def test_genetic_optimizer_finds_discrete_optimum(self):
        target = np.array([1, 3, 0, 2, 1])

        def objective(chromosome):
            return float(np.sum(chromosome != target))

        optimizer = GeneticOptimizer(population_size=30, generations=25, seed=3)
        result = optimizer.minimize(objective, len(target))
        assert result.best_value <= 1.0

    def test_genetic_optimizer_validation(self):
        with pytest.raises(ValueError):
            GeneticOptimizer(population_size=2)
        with pytest.raises(ValueError):
            GeneticOptimizer(population_size=8, elite_count=8)


class TestEnergyEvaluators:
    def test_exact_evaluator_counts_calls(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        evaluator = BackendEnergyEvaluator.exact(hamiltonian)
        ansatz = LinearAnsatz(3)
        circuit = ansatz.bound_circuit([0.1] * ansatz.num_parameters())
        value = evaluator(circuit)
        assert evaluator.num_evaluations == 1
        assert isinstance(value, float)

    def test_density_matrix_noise_pulls_energy_toward_mixed_value(self):
        # The traceless Ising Hamiltonian has ⟨H⟩ = 0 in the maximally mixed
        # state; depolarizing noise therefore shrinks |⟨H⟩|.
        hamiltonian = ising_hamiltonian(3, 1.0)
        ansatz = LinearAnsatz(3)
        circuit = ansatz.bound_circuit(
            np.random.default_rng(0).uniform(-1, 1, ansatz.num_parameters()))
        noiseless = BackendEnergyEvaluator.exact(hamiltonian)(circuit)
        noise = NoiseModel().add_gate_error(depolarizing_channel(0.1, 2), ["cx"])
        noisy = BackendEnergyEvaluator.density_matrix(hamiltonian, noise)(circuit)
        assert abs(noisy) <= abs(noiseless) + 1e-9

    def test_clifford_evaluator_matches_exact_on_clifford_point(self):
        hamiltonian = heisenberg_hamiltonian(4, 0.5)
        ansatz = LinearAnsatz(4)
        angles = indices_to_angles([1, 0, 2, 3, 0, 1, 2, 0])
        circuit = ansatz.bound_circuit(angles)
        exact = BackendEnergyEvaluator.exact(hamiltonian)(circuit)
        clifford = BackendEnergyEvaluator.clifford(hamiltonian)(circuit)
        assert clifford == pytest.approx(exact, abs=1e-8)


class TestContinuousVQE:
    def test_vqe_improves_over_initial_point(self):
        hamiltonian = ising_hamiltonian(3, 0.5)
        ansatz = LinearAnsatz(3, depth=1)
        vqe = VQE(hamiltonian, ansatz, BackendEnergyEvaluator.exact(hamiltonian),
                  CobylaOptimizer(max_iterations=80),
                  reference_energy=hamiltonian.ground_state_energy())
        initial = vqe.energy(np.zeros(ansatz.num_parameters()))
        result = vqe.run(seed=1)
        assert result.best_energy <= initial + 1e-9
        assert result.energy_gap is not None and result.energy_gap >= -1e-6

    def test_vqe_reaches_near_ground_state_on_two_qubits(self):
        hamiltonian = ising_hamiltonian(2, 0.25)
        ansatz = LinearAnsatz(2, depth=2)
        vqe = VQE(hamiltonian, ansatz, BackendEnergyEvaluator.exact(hamiltonian),
                  CobylaOptimizer(max_iterations=250))
        result = vqe.run(num_restarts=2, seed=7)
        exact = hamiltonian.ground_state_energy()
        assert result.best_energy == pytest.approx(exact, abs=0.05)

    def test_mismatched_qubit_counts_rejected(self):
        with pytest.raises(ValueError):
            VQE(ising_hamiltonian(3, 1.0), LinearAnsatz(4),
                BackendEnergyEvaluator.exact(ising_hamiltonian(3, 1.0)))

    def test_compare_regimes_produces_gamma_at_least_one_half(self):
        hamiltonian = ising_hamiltonian(3, 1.0)
        ansatz = LinearAnsatz(3, depth=1)
        reference = hamiltonian.ground_state_energy()
        outcome = compare_regimes(
            hamiltonian, ansatz, PQECRegime(), NISQRegime(), reference,
            optimizer_factory=lambda: CobylaOptimizer(max_iterations=40),
            benchmark_name="ising3", seed=2)
        comparison = outcome["comparison"]
        assert comparison.reference_energy == reference
        assert comparison.gamma > 0.0
        assert outcome["result_a"].regime == "pqec"


class TestCliffordVQE:
    def test_reference_energy_close_to_true_ground_state_for_ising(self):
        # For the transverse-field Ising model at J=0.25 the best stabilizer
        # state is close to the computational ground state.
        hamiltonian = ising_hamiltonian(6, 0.25)
        result = best_noiseless_clifford_energy(
            hamiltonian, FullyConnectedAnsatz(6),
            GeneticOptimizer(population_size=20, generations=10, seed=5), seed=5)
        exact = hamiltonian.ground_state_energy()
        assert result.best_energy <= -5.9  # all-zeros state gives -6 + O(J)
        assert result.best_energy >= exact - 1e-6

    def test_noisy_clifford_vqe_result_is_well_formed(self):
        hamiltonian = ising_hamiltonian(6, 0.5)
        ansatz = FullyConnectedAnsatz(6)
        vqe = CliffordVQE(hamiltonian, ansatz, NISQRegime().noise_model(),
                          GeneticOptimizer(population_size=16, generations=8,
                                           seed=1), seed=1)
        result = vqe.run()
        # Elitism makes the per-generation best monotone non-increasing.
        assert all(a >= b - 1e-12 for a, b in zip(result.history, result.history[1:]))
        assert result.best_energy == pytest.approx(min(result.history))
        assert set(np.unique(result.parameter_indices)) <= {0, 1, 2, 3}
        # Re-evaluating the reported chromosome reproduces the reported energy.
        assert vqe.evaluate_indices(result.parameter_indices) == pytest.approx(
            result.best_energy)

    def test_compare_regimes_clifford_pqec_wins(self):
        hamiltonian = ising_hamiltonian(8, 1.0)
        ansatz = FullyConnectedAnsatz(8)
        outcome = compare_regimes_clifford(
            hamiltonian, ansatz, PQECRegime(), NISQRegime(),
            optimizer_factory=lambda: GeneticOptimizer(
                population_size=14, generations=6, seed=9),
            benchmark_name="ising8", seed=9)
        comparison = outcome["comparison"]
        assert comparison.gamma >= 1.0
        assert outcome["result_a"].reference_energy == pytest.approx(
            outcome["reference"].best_energy)

    def test_indices_to_angles(self):
        np.testing.assert_allclose(indices_to_angles([0, 1, 2, 3]),
                                   [0, math.pi / 2, math.pi, 3 * math.pi / 2])
