"""Tests for QASM export/import, JSON serialization, reports, ASCII plots and
the resource estimator."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import BlockedAllToAllAnsatz, FullyConnectedAnsatz
from repro.architecture.routing import ProposedLayoutGeometry
from repro.circuits.circuit import QuantumCircuit
from repro.core.regimes import (NISQRegime, PQECRegime, QECConventionalRegime,
                                QECCultivationRegime)
from repro.core.resources import EFTDevice
from repro.estimation import (ResourceEstimator, device_capacity_table,
                              format_estimate_table)
from repro.io.qasm import from_qasm, to_qasm
from repro.io.reports import ExperimentRecord, ExperimentReport, markdown_table
from repro.io.serialization import (circuit_from_dict, circuit_to_dict,
                                    load_json, pauli_sum_from_dict,
                                    pauli_sum_to_dict, result_to_dict,
                                    save_json)
from repro.operators.hamiltonians import heisenberg_hamiltonian, ising_hamiltonian
from repro.operators.molecules import molecular_hamiltonian
from repro.simulators.statevector import circuit_unitary
from repro.synthesis.verification import operator_distance
from repro.visualization import (ascii_bar_chart, ascii_heatmap,
                                 ascii_line_plot, draw_circuit, render_layout)


def _sample_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="sample")
    circuit.h(0)
    circuit.rz(math.pi / 4, 0)
    circuit.cx(0, 1)
    circuit.rx(0.37, 1)
    circuit.ry(-1.2, 2)
    circuit.rzz(0.5, 1, 2)
    circuit.s(2)
    circuit.barrier()
    circuit.measure_all()
    return circuit


# ---------------------------------------------------------------------------
# OpenQASM
# ---------------------------------------------------------------------------

class TestQASM:
    def test_export_contains_header_and_registers(self):
        text = to_qasm(_sample_circuit())
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text
        assert "creg c[3];" in text
        assert "measure q[0] -> c[0];" in text

    def test_export_uses_pi_fractions(self):
        text = to_qasm(_sample_circuit())
        assert "rz(pi/4) q[0];" in text

    def test_rzz_is_decomposed(self):
        text = to_qasm(_sample_circuit())
        assert "rzz" not in text
        assert text.count("cx q[1],q[2];") == 2

    def test_unbound_parameters_rejected(self):
        circuit = FullyConnectedAnsatz(4, 1).build()
        with pytest.raises(ValueError):
            to_qasm(circuit)

    def test_roundtrip_preserves_unitary(self):
        circuit = _sample_circuit().without_measurements()
        recovered = from_qasm(to_qasm(circuit))
        assert recovered.num_qubits == circuit.num_qubits
        assert operator_distance(circuit_unitary(recovered),
                                 circuit_unitary(circuit)) < 1e-9

    def test_roundtrip_preserves_measurements(self):
        recovered = from_qasm(to_qasm(_sample_circuit()))
        assert recovered.count_ops().get("measure", 0) == 3

    def test_import_rejects_garbage(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nthis is not qasm\n")
        with pytest.raises(ValueError):
            from_qasm("h q[0];")

    def test_import_parses_angles(self):
        text = ("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n"
                "rz(-3*pi/4) q[0];\nrx(0.25) q[0];\n")
        circuit = from_qasm(text)
        params = [inst.gate.bound_params()[0] for inst in circuit.instructions]
        assert params[0] == pytest.approx(-3 * math.pi / 4)
        assert params[1] == pytest.approx(0.25)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-math.pi, max_value=math.pi),
                    min_size=2, max_size=6))
    def test_property_rotation_circuits_roundtrip(self, angles):
        circuit = QuantumCircuit(2)
        for index, angle in enumerate(angles):
            circuit.rz(angle, index % 2)
            circuit.cx(0, 1)
        recovered = from_qasm(to_qasm(circuit))
        assert operator_distance(circuit_unitary(recovered),
                                 circuit_unitary(circuit)) < 1e-9


# ---------------------------------------------------------------------------
# JSON serialization
# ---------------------------------------------------------------------------

class TestSerialization:
    def test_circuit_roundtrip(self):
        circuit = _sample_circuit()
        payload = circuit_to_dict(circuit)
        recovered = circuit_from_dict(payload)
        assert recovered.num_qubits == circuit.num_qubits
        assert recovered.count_ops() == circuit.count_ops()
        # The payload must be JSON-serializable as is.
        json.dumps(payload)

    def test_circuit_with_unbound_parameters_rejected(self):
        with pytest.raises(ValueError):
            circuit_to_dict(FullyConnectedAnsatz(4, 1).build())

    def test_circuit_format_tag_checked(self):
        with pytest.raises(ValueError):
            circuit_from_dict({"format": "something-else"})

    def test_pauli_sum_roundtrip(self):
        hamiltonian = heisenberg_hamiltonian(5, coupling=0.5)
        recovered = pauli_sum_from_dict(pauli_sum_to_dict(hamiltonian))
        assert recovered == hamiltonian

    def test_pauli_sum_format_tag_checked(self):
        with pytest.raises(ValueError):
            pauli_sum_from_dict({"format": "nope"})

    def test_molecular_hamiltonian_roundtrip_preserves_ground_energy(self):
        hamiltonian = molecular_hamiltonian("LiH", 1.0, num_qubits=6,
                                            num_terms=40)
        recovered = pauli_sum_from_dict(pauli_sum_to_dict(hamiltonian))
        assert recovered.ground_state_energy() == pytest.approx(
            hamiltonian.ground_state_energy(), abs=1e-9)

    def test_save_and_load_json(self, tmp_path):
        payload = {"values": np.array([1.0, 2.0]), "name": "x"}
        path = save_json(payload, tmp_path / "nested" / "payload.json")
        assert path.exists()
        assert load_json(path) == {"values": [1.0, 2.0], "name": "x"}

    def test_result_to_dict_uses_summary(self):
        estimator = ResourceEstimator(optimize_qubit_placement=False)
        estimate = estimator.estimate(FullyConnectedAnsatz(8, 1), PQECRegime())
        record = result_to_dict(estimate)
        assert record["regime"] == "pqec"
        json.dumps(record)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReports:
    def test_markdown_table_shape(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert len(lines) == 4

    def test_markdown_table_validation(self):
        with pytest.raises(ValueError):
            markdown_table([], [])
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])

    def test_experiment_report_rendering(self, tmp_path):
        report = ExperimentReport(title="EFT-VQA experiments",
                                  preamble="Reproduction of the paper.")
        report.add(ExperimentRecord(
            experiment_id="Fig. 4", title="pQEC vs qec-conventional",
            paper_claim="9.27x average improvement",
            measured="8.1x average improvement",
            bench_target="benchmarks/test_fig04_pqec_vs_conventional.py",
            table_header=["config", "gamma"], table_rows=[["11,5,5", "2.1x"]]))
        markdown = report.to_markdown()
        assert "# EFT-VQA experiments" in markdown
        assert "Fig. 4" in markdown
        assert "| config | gamma |" in markdown
        path = report.write(tmp_path / "EXPERIMENTS.md")
        assert path.read_text() == markdown


# ---------------------------------------------------------------------------
# ASCII visualization
# ---------------------------------------------------------------------------

class TestVisualization:
    def test_bar_chart_scales_to_largest(self):
        chart = ascii_bar_chart({"pqec": 9.27, "nisq": 1.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") >= 1

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 1.0}, width=2)

    def test_line_plot_contains_markers_and_legend(self):
        plot = ascii_line_plot([1, 2, 3], {"nisq": [0.9, 0.8, 0.7],
                                           "pqec": [0.95, 0.93, 0.91]})
        assert "legend:" in plot
        assert "*" in plot and "o" in plot

    def test_line_plot_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], {"x": [1.0]}, height=12, width=30)
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], {}, height=12, width=30)

    def test_heatmap_renders_extremes(self):
        heatmap = ascii_heatmap([[0.0, 1.0], [0.5, 0.25]],
                                row_labels=["10k", "20k"],
                                column_labels=[10, 20])
        assert "@@" in heatmap
        assert "scale:" in heatmap

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap([])
        with pytest.raises(ValueError):
            ascii_heatmap([[1.0], [2.0, 3.0]])

    def test_render_layout_shows_every_data_qubit(self):
        geometry = ProposedLayoutGeometry(3)
        text = render_layout(geometry)
        for qubit in range(geometry.num_data_qubits):
            assert f" {qubit} " in text or f" {qubit}\n" in text or \
                text.count(str(qubit)) >= 1
        assert "MM" in text

    def test_draw_circuit_one_line_per_qubit(self):
        drawing = draw_circuit(_sample_circuit())
        lines = drawing.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0:")
        assert "●" in drawing and "⊕" in drawing


# ---------------------------------------------------------------------------
# Resource estimator
# ---------------------------------------------------------------------------

class TestResourceEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return ResourceEstimator(optimize_qubit_placement=False)

    def test_estimate_fields(self, estimator):
        estimate = estimator.estimate(FullyConnectedAnsatz(12, 1), PQECRegime(),
                                      ising_hamiltonian(12, 1.0), "ising12")
        assert estimate.workload == "ising12"
        assert estimate.fits_device
        assert 0.0 < estimate.estimated_fidelity <= 1.0
        assert estimate.data_patch_qubits > 0
        assert estimate.magic_state_qubits == 0      # injection needs no farm
        assert 0.0 < estimate.device_utilization <= 1.0

    def test_conventional_regime_reserves_factory_qubits(self, estimator):
        estimate = estimator.estimate(FullyConnectedAnsatz(12, 1),
                                      QECConventionalRegime())
        assert estimate.magic_state_qubits > 0

    def test_cultivation_regime_reserves_unit_qubits(self, estimator):
        estimate = estimator.estimate(FullyConnectedAnsatz(12, 1),
                                      QECCultivationRegime())
        assert estimate.magic_state_qubits > 0

    def test_compare_regimes_recommends_pqec_for_medium_vqa(self, estimator):
        recommendation = estimator.compare_regimes(
            FullyConnectedAnsatz(16, 1), ising_hamiltonian(16, 1.0))
        assert recommendation.recommended_regime == "pqec"
        assert len(recommendation.estimates) == 4
        assert recommendation.estimate_for("nisq").regime == "nisq"
        with pytest.raises(KeyError):
            recommendation.estimate_for("unknown")

    def test_size_sweep_monotone_utilization(self, estimator):
        estimates = estimator.size_sweep(
            lambda n: BlockedAllToAllAnsatz(n, 1), (8, 12, 16), PQECRegime())
        utilizations = [e.device_utilization for e in estimates]
        assert utilizations == sorted(utilizations)

    def test_small_device_infeasible(self):
        estimator = ResourceEstimator(device=EFTDevice(physical_qubits=1500),
                                      optimize_qubit_placement=False)
        estimate = estimator.estimate(FullyConnectedAnsatz(16, 1), PQECRegime())
        assert not estimate.fits_device

    def test_device_capacity_table(self):
        rows = device_capacity_table([10_000, 20_000, 60_000])
        capacities = [row["max_logical_qubits"] for row in rows]
        assert capacities == sorted(capacities)
        assert all(row["qubits_per_patch"] > 0 for row in rows)

    def test_format_estimate_table(self, estimator):
        estimates = [estimator.estimate(FullyConnectedAnsatz(8, 1), regime)
                     for regime in (NISQRegime(), PQECRegime())]
        table = format_estimate_table(estimates)
        assert "workload" in table.splitlines()[0]
        assert len(table.splitlines()) == 2 + len(estimates)
