"""Tests for the batched QEC Monte-Carlo engine (PR 5).

Covers the four refactor layers:

* the sampling kernel (incidence matmul syndromes, Bernoulli matrix bitwise
  equal to the legacy per-shot sampler, graph fingerprints);
* the ``decode_batch`` protocol (batch-vs-loop bitwise equivalence for all
  five decoders on randomized graphs, the lookup decoder's vectorized table
  path, counter semantics);
* the execution routing (worker-count and inline/thread/process determinism
  of failure counts, process-shard counter fold-back, expectation-cache
  keying with warm-cache zero-decode accounting);
* the consumers (memory experiments batched-vs-reference equality, the
  collision-free sweep seeding, Wilson intervals on both result classes).
"""

import numpy as np
import pytest

from repro.execution import Executor
from repro.qec.decoders import (CliquePredecoder, LookupDecoder, MWPMDecoder,
                                UnionFindDecoder, batch_decode_stats,
                                decoder_cache_token)
from repro.qec.decoders.base import (apply_decoder_counter_delta,
                                     decoder_counter_delta,
                                     decoder_counter_snapshot)
from repro.qec.decoders.graph import (repetition_code_graph,
                                      rotated_surface_code_graph)
from repro.qec.memory_experiment import (MemoryExperimentResult,
                                         RepetitionCodeMemory,
                                         RepetitionMatchingDecoder,
                                         logical_error_rate_sweep)
from repro.qec.bitops import unpack_rows
from repro.qec.sampling import (SHOT_BLOCK, as_seed_sequence,
                                binomial_standard_error,
                                logical_flips_of_errors,
                                packed_syndromes_and_flips,
                                reset_sampling_stats, resolve_kernel,
                                run_memory_sampling,
                                run_memory_sampling_reference, sample_errors,
                                sampling_arrays, sampling_stats,
                                syndromes_of_errors, wilson_interval)
from repro.qec.surface_memory import (SurfaceCodeMemory,
                                      surface_code_memory_experiment)


def _graph_decoder_factories():
    """All five decoders of the ablation set, per graph kind."""

    def lookup(graph):
        return LookupDecoder(graph, max_error_weight=2)

    common = {
        "mwpm": MWPMDecoder,
        "union_find": UnionFindDecoder,
        "lookup": lookup,
        "clique_predecoder": CliquePredecoder,
    }
    repetition_only = {"repetition_matching": RepetitionMatchingDecoder}
    return common, repetition_only


def _random_syndromes(graph, shots, seed, boost=1.0):
    arrays = sampling_arrays(graph)
    rng = np.random.default_rng(seed)
    draws = rng.random((shots, arrays.num_edges))
    errors = (draws < np.minimum(arrays.probabilities * boost, 0.5)
              ).view(np.uint8)
    return syndromes_of_errors(arrays, errors)


# ---------------------------------------------------------------------------
# Sampling kernel
# ---------------------------------------------------------------------------


class TestSamplingKernel:
    def test_arrays_shapes_and_columns(self):
        graph = rotated_surface_code_graph(3, 2, 1e-2)
        arrays = sampling_arrays(graph)
        detectors = graph.detector_order()
        assert arrays.incidence.shape == (len(graph.edges), len(detectors))
        assert detectors == sorted(graph.detectors)
        # Every non-boundary edge endpoint appears in its incidence column.
        for edge in graph.edges:
            touched = np.flatnonzero(arrays.incidence[edge.identifier])
            expected = {detectors.index(node)
                        for node in (edge.node_a, edge.node_b)
                        if node != "boundary"}
            assert set(touched.tolist()) == expected

    def test_arrays_memoized_per_graph(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        assert sampling_arrays(graph) is sampling_arrays(graph)

    def test_bernoulli_matrix_bitwise_matches_legacy_sampler(self):
        """rng.random((S, N)) consumes the stream exactly like S sequential
        rng.random(N) calls, so the kernel and the legacy per-shot sampler
        draw identical error realizations from the same seed."""
        graph = rotated_surface_code_graph(3, 2, 0.03)
        arrays = sampling_arrays(graph)
        errors = sample_errors(arrays, 20, np.random.default_rng(11))
        legacy = SurfaceCodeMemory(graph, seed=11)
        for shot in range(20):
            edge_ids = sorted(edge.identifier
                              for edge in legacy.sample_error())
            assert edge_ids == np.flatnonzero(errors[shot]).tolist()

    def test_syndrome_matmul_matches_legacy_syndromes(self):
        graph = rotated_surface_code_graph(3, 2, 0.05)
        arrays = sampling_arrays(graph)
        detectors = graph.detector_order()
        errors = sample_errors(arrays, 40, np.random.default_rng(3))
        syndromes = syndromes_of_errors(arrays, errors)
        edges = graph.edges
        for shot in range(40):
            sample = [edges[e] for e in np.flatnonzero(errors[shot])]
            expected = set(SurfaceCodeMemory.syndrome_of(sample))
            got = {detectors[c] for c in np.flatnonzero(syndromes[shot])}
            assert got == expected

    def test_logical_flips_match_graph_parity(self):
        graph = repetition_code_graph(5, 2, 0.05)
        arrays = sampling_arrays(graph)
        errors = sample_errors(arrays, 60, np.random.default_rng(8))
        flips = logical_flips_of_errors(arrays, errors)
        edges = graph.edges
        for shot in range(60):
            sample = [edges[e] for e in np.flatnonzero(errors[shot])]
            assert bool(flips[shot]) == graph.correction_flips_logical(sample)


class TestGraphFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = rotated_surface_code_graph(3, 2, 1e-3)
        b = rotated_surface_code_graph(3, 2, 1e-3)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("other", [
        lambda: rotated_surface_code_graph(3, 2, 2e-3),
        lambda: rotated_surface_code_graph(3, 3, 1e-3),
        lambda: rotated_surface_code_graph(5, 2, 1e-3),
        lambda: repetition_code_graph(3, 2, 1e-3),
        lambda: rotated_surface_code_graph(3, 2, 1e-3,
                                           measurement_error_rate=5e-3),
    ])
    def test_different_content_different_fingerprint(self, other):
        base = rotated_surface_code_graph(3, 2, 1e-3)
        assert base.fingerprint() != other().fingerprint()

    def test_fingerprint_invalidates_when_graph_grows(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        before = graph.fingerprint()
        graph.add_edge((0, 0), (1, 0), 1e-3, "space", data_qubit=1,
                       round_index=0)
        assert graph.fingerprint() != before


# ---------------------------------------------------------------------------
# decode_batch protocol
# ---------------------------------------------------------------------------


class TestDecodeBatch:
    @pytest.mark.parametrize("builder,extra", [
        (lambda: rotated_surface_code_graph(3, 2, 0.02), False),
        (lambda: repetition_code_graph(5, 2, 0.03), True),
    ])
    def test_batch_vs_loop_bitwise_for_all_decoders(self, builder, extra):
        graph = builder()
        syndromes = _random_syndromes(graph, 80, seed=5, boost=3.0)
        detectors = graph.detector_order()
        common, repetition_only = _graph_decoder_factories()
        factories = dict(common)
        if extra:
            factories.update(repetition_only)
        for name, factory in factories.items():
            batch = factory(graph).decode_batch(syndromes)
            loop_decoder = factory(graph)
            loop = [bool(loop_decoder.decode(
                [detectors[c] for c in np.flatnonzero(row)]).flips_logical)
                for row in syndromes]
            assert batch.tolist() == loop, f"{name} batch != loop"

    def test_decode_batch_validates_shape(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError):
            MWPMDecoder(graph).decode_batch(np.zeros((4, 3), dtype=np.uint8))

    def test_decode_batch_empty(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        detectors = graph.detector_order()
        out = MWPMDecoder(graph).decode_batch(
            np.zeros((0, len(detectors)), dtype=np.uint8))
        assert out.shape == (0,)

    def test_dedup_counts_unique_syndromes_only(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        detectors = graph.detector_order()
        row = np.zeros(len(detectors), dtype=np.uint8)
        row[0] = 1
        syndromes = np.stack([row] * 7 + [np.zeros_like(row)] * 3)
        before = batch_decode_stats()
        MWPMDecoder(graph).decode_batch(syndromes)
        after = batch_decode_stats()
        assert after.shots_decoded - before.shots_decoded == 10
        assert after.syndromes_decoded - before.syndromes_decoded == 2

    def test_cache_tokens_cover_configuration(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        weight2 = LookupDecoder(graph, max_error_weight=2)
        weight1 = LookupDecoder(graph, max_error_weight=1)
        assert decoder_cache_token(weight2) != decoder_cache_token(weight1)
        assert decoder_cache_token(MWPMDecoder(graph)) == ("mwpm",)
        clique = CliquePredecoder(graph)
        assert "mwpm" in decoder_cache_token(clique)


class TestLookupDecoderBatch:
    def test_vectorized_table_matches_generic_path(self):
        graph = rotated_surface_code_graph(3, 2, 0.02)
        syndromes = _random_syndromes(graph, 60, seed=13, boost=2.0)
        vectorized = LookupDecoder(graph, max_error_weight=2)
        fast = vectorized.decode_batch(syndromes)
        generic = LookupDecoder(graph, max_error_weight=2)
        slow = super(LookupDecoder, generic).decode_batch.__get__(generic)(
            syndromes)
        assert fast.tolist() == slow.tolist()

    def test_unknown_detector_rejected_via_precomputed_set(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        decoder = LookupDecoder(graph, max_error_weight=1)
        assert decoder._known_detectors == frozenset(graph.detectors)
        with pytest.raises(ValueError):
            decoder.decode([(99, 99)])

    def test_fallback_count_counts_unique_batch_misses(self):
        graph = repetition_code_graph(5, 2, 2e-2)
        decoder = LookupDecoder(graph, max_error_weight=1)
        detectors = graph.detector_order()
        # A three-error syndrome lies outside a weight-1 table.
        heavy = np.zeros(len(detectors), dtype=np.uint8)
        heavy[[0, 3, 5]] = 1
        syndromes = np.stack([heavy] * 9 + [np.zeros_like(heavy)])
        decoder.decode_batch(syndromes)
        assert decoder.fallback_count == 1  # unique miss, not per shot
        decoder.reset_counters()
        assert decoder.fallback_count == 0


# ---------------------------------------------------------------------------
# Executor routing: determinism, counters, caching
# ---------------------------------------------------------------------------


class TestShardedDeterminism:
    SHOTS = 2 * SHOT_BLOCK + 17   # three blocks, uneven tail

    def _failures(self, parallel, workers):
        graph = rotated_surface_code_graph(3, 2, 0.01)
        decoder = MWPMDecoder(graph)
        run = run_memory_sampling(graph, decoder, self.SHOTS, seed=321,
                                  executor=Executor(use_cache=False),
                                  parallel=parallel, max_workers=workers)
        return run.failures, run.total_defects

    def test_failure_counts_identical_across_modes_and_workers(self):
        inline = self._failures("none", 1)
        assert self._failures("process", 1) == inline
        assert self._failures("process", 2) == inline
        assert self._failures("process", 4) == inline
        assert self._failures("thread", 2) == inline

    def test_process_shards_recorded_and_counters_folded(self):
        graph = rotated_surface_code_graph(3, 2, 0.01)
        decoder = CliquePredecoder(graph)
        executor = Executor(use_cache=False)
        run_memory_sampling(graph, decoder, self.SHOTS, seed=55,
                            executor=executor, parallel="process",
                            max_workers=2)
        assert executor.stats.process_shards == 2
        # The workers' offload tallies came home across the pickle boundary.
        assert decoder.predecoded_defects + decoder.forwarded_defects > 0

    def test_counter_delta_roundtrip(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        decoder = CliquePredecoder(
            graph, backing_decoder=LookupDecoder(graph, max_error_weight=1))
        before = decoder_counter_snapshot(decoder)
        assert "_backing.fallback_count" in before  # nested decoders walk too
        decoder.predecoded_defects += 4
        decoder._backing.fallback_count += 2
        after = decoder_counter_snapshot(decoder)
        delta = decoder_counter_delta(before, after)
        assert delta == {"predecoded_defects": 4, "_backing.fallback_count": 2}
        apply_decoder_counter_delta(decoder, delta)
        assert decoder.predecoded_defects == 8
        assert decoder._backing.fallback_count == 4


class TestExperimentCache:
    def test_seeded_rerun_served_from_cache_with_zero_decodes(self):
        graph = rotated_surface_code_graph(3, 2, 0.01)
        executor = Executor()
        cold = run_memory_sampling(graph, MWPMDecoder(graph), 150, seed=77,
                                   executor=executor)
        assert not cold.from_cache
        reset_sampling_stats()
        warm = run_memory_sampling(graph, MWPMDecoder(graph), 150, seed=77,
                                   executor=executor)
        stats = sampling_stats()
        assert warm.from_cache
        assert (warm.failures, warm.total_defects) == \
            (cold.failures, cold.total_defects)
        assert stats.syndromes_decoded == 0
        assert stats.shots_sampled == 0
        assert stats.cached_experiments == 1

    def test_unseeded_runs_never_cache(self):
        graph = repetition_code_graph(3, 1, 0.01)
        executor = Executor()
        run_memory_sampling(graph, MWPMDecoder(graph), 50, seed=None,
                            executor=executor)
        second = run_memory_sampling(graph, MWPMDecoder(graph), 50, seed=None,
                                     executor=executor)
        assert not second.from_cache

    def test_cache_key_distinguishes_decoders(self):
        graph = rotated_surface_code_graph(3, 2, 0.02)
        executor = Executor()
        run_memory_sampling(graph, MWPMDecoder(graph), 80, seed=5,
                            executor=executor)
        other = run_memory_sampling(graph, UnionFindDecoder(graph), 80,
                                    seed=5, executor=executor)
        assert not other.from_cache

    def test_warm_disk_cache_across_executors(self, tmp_path):
        graph = rotated_surface_code_graph(3, 2, 0.01)
        cold = run_memory_sampling(graph, MWPMDecoder(graph), 120, seed=19,
                                   executor=Executor(cache_dir=tmp_path))
        warm = run_memory_sampling(graph, MWPMDecoder(graph), 120, seed=19,
                                   executor=Executor(cache_dir=tmp_path))
        assert warm.from_cache
        assert warm.failures == cold.failures

    def test_shots_validation(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError):
            run_memory_sampling(graph, MWPMDecoder(graph), 0, seed=1)
        with pytest.raises(ValueError):
            run_memory_sampling_reference(graph, MWPMDecoder(graph), 0)


# ---------------------------------------------------------------------------
# Consumers
# ---------------------------------------------------------------------------


class TestBatchedMemoryExperiments:
    def test_surface_run_matches_reference_bitwise(self):
        graph = rotated_surface_code_graph(3, 3, 0.02)
        common, _ = _graph_decoder_factories()
        for name, factory in common.items():
            batched = SurfaceCodeMemory(graph, factory, seed=31).run(
                300, use_cache=False)
            reference = SurfaceCodeMemory(graph, factory,
                                          seed=31).run_reference(300)
            assert batched.failures == reference.failures, name
            assert batched.average_defects == reference.average_defects

    def test_repetition_run_matches_reference_bitwise(self):
        graph = repetition_code_graph(5, 3, 0.03)
        batched = run_memory_sampling(graph, RepetitionMatchingDecoder(graph),
                                      280, seed=13,
                                      executor=Executor(use_cache=False))
        reference = run_memory_sampling_reference(
            graph, RepetitionMatchingDecoder(graph), 280, seed=13)
        assert batched.failures == reference.failures

    def test_repetition_memory_statistics_sane(self):
        heavy = RepetitionCodeMemory(3, physical_error_rate=0.4,
                                     seed=2).run(150, use_cache=False)
        assert heavy.logical_error_rate > 0.2
        clean = RepetitionCodeMemory(5, physical_error_rate=0.0,
                                     measurement_error_rate=0.0,
                                     seed=1).run(50, use_cache=False)
        assert clean.logical_failures == 0

    def test_repetition_matching_requires_repetition_graph(self):
        graph = rotated_surface_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError):
            RepetitionMatchingDecoder(graph)

    def test_run_reference_keeps_legacy_per_shot_loop(self):
        memory = RepetitionCodeMemory(3, physical_error_rate=0.1, seed=3)
        result = memory.run_reference(40)
        assert result.shots == 40
        assert 0 <= result.logical_failures <= 40

    def test_plain_decode_only_decoder_still_supported(self):
        """The historical 'any decoder with a decode(defects) method'
        contract survives the batch refactor: a decoder without
        decode_batch rides the generic dedup shell, is never cached (no
        cache token pins down its configuration), and matches the decoder
        it wraps bitwise."""

        class PlainDecoder:
            def __init__(self, graph):
                self._inner = MWPMDecoder(graph)

            def decode(self, defects):
                return self._inner.decode(defects)

        graph = rotated_surface_code_graph(3, 2, 0.02)
        executor = Executor()
        plain = SurfaceCodeMemory(graph, PlainDecoder, seed=21)
        first = plain.run(200, executor=executor)
        mwpm = SurfaceCodeMemory(graph, MWPMDecoder, seed=21).run(
            200, use_cache=False)
        assert first.failures == mwpm.failures
        assert decoder_cache_token(plain.decoder) is None
        repeat = run_memory_sampling(graph, PlainDecoder(graph), 200,
                                     seed=21, executor=executor)
        assert not repeat.from_cache  # unknown config is never cached


class TestSweepSeeding:
    def test_sweep_cells_get_distinct_spawned_seeds(self):
        # The historical derivation seed + d*1000 + int(rate*1e6) collides
        # e.g. for (3, 0.003) and (5, 0.001); spawn keys cannot.
        cells = [(3, 0.003), (5, 0.001)]
        old_style = {7 + d * 1000 + int(rate * 1e6) for d, rate in cells}
        assert len(old_style) == 1  # the collision this PR fixes
        children = np.random.SeedSequence(7).spawn(len(cells))
        assert children[0].spawn_key != children[1].spawn_key

    def test_sweep_deterministic_and_complete(self):
        kwargs = dict(shots=120, seed=42, use_cache=False)
        first = logical_error_rate_sweep([3, 5], [0.003, 0.001], **kwargs)
        second = logical_error_rate_sweep([3, 5], [0.003, 0.001], **kwargs)
        assert first == second
        assert set(first) == {(3, 0.003), (3, 0.001), (5, 0.003), (5, 0.001)}

    def test_warm_sweep_decodes_nothing(self, tmp_path):
        grid = dict(distances=[3, 5], physical_error_rates=[0.005, 0.02],
                    shots=150, seed=9)
        cold = logical_error_rate_sweep(
            executor=Executor(cache_dir=tmp_path), **grid)
        reset_sampling_stats()
        warm = logical_error_rate_sweep(
            executor=Executor(cache_dir=tmp_path), **grid)
        stats = sampling_stats()
        assert warm == cold
        assert stats.syndromes_decoded == 0
        assert stats.cached_experiments == 4

    def test_seed_key_encodings(self):
        _, none_key = as_seed_sequence(None)
        assert none_key is None
        _, int_key = as_seed_sequence(9)
        assert int_key == ("seed", 9)
        child = np.random.SeedSequence(9).spawn(2)[1]
        _, child_key = as_seed_sequence(child)
        assert child_key == ("seedseq", "9", (1,))

    def test_seed_sequence_reuse_is_deterministic(self):
        """A caller's SeedSequence is rebuilt, never spawned from: repeat
        runs on the same instance (and run vs run_reference) stay bitwise
        identical, and a pre-spawned sequence equals a fresh one."""
        graph = rotated_surface_code_graph(3, 2, 0.02)
        shared = np.random.SeedSequence(7)
        shared.spawn(3)  # advance the caller-side child counter
        memory = SurfaceCodeMemory(graph, MWPMDecoder, seed=shared)
        first = memory.run(200, use_cache=False)
        second = memory.run(200, use_cache=False)
        reference = memory.run_reference(200)
        fresh = SurfaceCodeMemory(
            graph, MWPMDecoder, seed=np.random.SeedSequence(7)).run(
                200, use_cache=False)
        assert (first.failures == second.failures == reference.failures
                == fresh.failures)


class TestUncertainty:
    def test_wilson_interval_properties(self):
        low, high = wilson_interval(0, 200)
        assert low == 0.0 and 0.0 < high < 0.05
        low, high = wilson_interval(200, 200)
        assert high == 1.0 and low > 0.95
        low, high = wilson_interval(30, 200)
        assert low < 30 / 200 < high
        assert wilson_interval(1, 0) == (0.0, 1.0)

    def test_standard_error_formula(self):
        assert binomial_standard_error(50, 200) == pytest.approx(
            (0.25 * 0.75 / 200) ** 0.5)
        assert binomial_standard_error(0, 0) == 0.0

    def test_both_result_classes_expose_uncertainty(self):
        result = MemoryExperimentResult(
            distance=3, rounds=3, physical_error_rate=1e-3,
            measurement_error_rate=1e-3, shots=200, logical_failures=8)
        outcome = surface_code_memory_experiment(3, 0.02, rounds=2, shots=80,
                                                 seed=5, use_cache=False)
        for stats in (result, outcome):
            assert stats.standard_error > 0
            low, high = stats.wilson_interval()
            assert 0.0 <= low <= stats.logical_error_rate <= high <= 1.0


# ---------------------------------------------------------------------------
# Bit-packed kernel (PR 7)
# ---------------------------------------------------------------------------


class TestPackedKernel:
    """The bit-packed syndrome path: selection, equivalence, cache identity."""

    def test_packed_syndromes_and_flips_match_dense(self):
        graph = rotated_surface_code_graph(3, 2, 0.05)
        arrays = sampling_arrays(graph)
        errors = sample_errors(arrays, 60, np.random.default_rng(4))
        words, flips = packed_syndromes_and_flips(arrays, errors)
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_rows(words, arrays.num_detectors),
                              syndromes_of_errors(arrays, errors))
        assert np.array_equal(flips, logical_flips_of_errors(arrays, errors))

    def test_resolve_kernel_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_QEC_KERNEL", raising=False)
        assert resolve_kernel() == "packed"          # default
        monkeypatch.setenv("REPRO_QEC_KERNEL", "dense")
        assert resolve_kernel() == "dense"           # env overrides default
        assert resolve_kernel("packed") == "packed"  # argument overrides env
        with pytest.raises(ValueError, match="unknown QEC kernel"):
            resolve_kernel("float128")
        monkeypatch.setenv("REPRO_QEC_KERNEL", "simd")
        with pytest.raises(ValueError, match="unknown QEC kernel"):
            resolve_kernel()

    def test_streaming_requires_packed_kernel(self):
        graph = repetition_code_graph(3, 1, 1e-3)
        with pytest.raises(ValueError, match="streaming"):
            run_memory_sampling(graph, MWPMDecoder(graph), 10, seed=1,
                                kernel="dense", streaming=True,
                                use_cache=False)

    def test_kernels_and_streaming_bitwise_identical_with_real_failures(self):
        graph = rotated_surface_code_graph(3, 2, 0.03)
        decoder = MWPMDecoder(graph)
        shots = 2 * SHOT_BLOCK + 17   # three blocks, uneven tail
        runs = {
            mode: run_memory_sampling(
                graph, decoder, shots, seed=321,
                executor=Executor(use_cache=False),
                kernel=kernel, streaming=streaming)
            for mode, (kernel, streaming) in {
                "dense": ("dense", False),
                "packed": ("packed", False),
                "streaming": ("packed", True),
            }.items()
        }
        reference = run_memory_sampling_reference(graph, decoder, shots,
                                                  seed=321)
        assert runs["dense"].failures > 0, "workload should produce failures"
        assert len({run.failures for run in runs.values()}) == 1
        assert len({run.total_defects for run in runs.values()}) == 1
        assert runs["dense"].failures == reference.failures
        assert runs["dense"].total_defects == reference.total_defects

    def test_worker_count_determinism_with_real_failures(self):
        """Small-shot tier-1 version of the benchmark determinism gate:
        failure counts are bitwise identical across shard modes/workers on a
        workload that actually fails, for both kernels."""
        graph = rotated_surface_code_graph(3, 2, 0.03)
        shots = 2 * SHOT_BLOCK + 17

        def failures(parallel, workers, **kwargs):
            run = run_memory_sampling(graph, MWPMDecoder(graph), shots,
                                      seed=321,
                                      executor=Executor(use_cache=False),
                                      parallel=parallel, max_workers=workers,
                                      **kwargs)
            return run.failures, run.total_defects

        inline = failures("none", 1)
        assert inline[0] > 0, "workload should produce real failures"
        assert failures("process", 2) == inline
        assert failures("thread", 2) == inline
        assert failures("process", 2, kernel="dense") == inline
        assert failures("process", 2, streaming=True) == inline

    def test_kernel_choice_not_in_cache_key(self, tmp_path):
        """Dense, packed and streaming runs are bitwise identical, so the
        kernel deliberately stays out of the cache key: a packed (or
        streaming) re-run of a dense-cached experiment is served without
        decoding a single syndrome."""
        graph = rotated_surface_code_graph(3, 2, 0.03)
        kwargs = dict(shots=200, seed=9)
        cold = run_memory_sampling(graph, MWPMDecoder(graph),
                                   executor=Executor(cache_dir=tmp_path),
                                   kernel="dense", **kwargs)
        reset_sampling_stats()
        for kernel, streaming in (("packed", False), ("packed", True)):
            warm = run_memory_sampling(graph, MWPMDecoder(graph),
                                       executor=Executor(cache_dir=tmp_path),
                                       kernel=kernel, streaming=streaming,
                                       **kwargs)
            assert (warm.failures, warm.total_defects) \
                == (cold.failures, cold.total_defects)
        stats = sampling_stats()
        assert stats.syndromes_decoded == 0
        assert stats.shots_sampled == 0
        assert stats.cached_experiments == 2


class TestSyndromeNormalization:
    """Regression tests for the decode_batch input-normalization contract."""

    def test_non_contiguous_batches_decode_identically(self):
        graph = rotated_surface_code_graph(3, 2, 0.02)
        syndromes = _random_syndromes(graph, 24, seed=13, boost=3.0)
        detectors = graph.detector_order()
        decoder = MWPMDecoder(graph)
        baseline = decoder.decode_batch(syndromes, detectors)
        fortran = np.asfortranarray(syndromes)
        strided = np.repeat(syndromes, 2, axis=0)[::2]
        assert not fortran.flags.c_contiguous
        assert not strided.flags.c_contiguous
        assert np.array_equal(decoder.decode_batch(fortran, detectors),
                              baseline)
        assert np.array_equal(decoder.decode_batch(strided, detectors),
                              baseline)

    def test_unnormalized_input_not_mutated(self):
        graph = repetition_code_graph(3, 2, 1e-3)
        detectors = graph.detector_order()
        decoder = UnionFindDecoder(graph)
        raw = (_random_syndromes(graph, 12, seed=5, boost=50.0)
               .astype(np.int64) * 3)          # values in {0, 3}: needs & 1
        snapshot = raw.copy()
        masked = decoder.decode_batch(raw, detectors)
        assert np.array_equal(raw, snapshot), "caller's array was mutated"
        assert np.array_equal(
            masked, decoder.decode_batch((raw & 1).astype(np.uint8),
                                         detectors))
