"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments that lack the ``wheel`` package (pip then falls back to the
legacy ``setup.py develop`` editable install).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "EFT-VQA: Variational Quantum Algorithms in the era of Early Fault "
        "Tolerance (ISCA 2025 reproduction)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": [
            # The job server is stdlib-only (asyncio + sqlite3 + json).
            "repro-service=repro.service.__main__:main",
            # Elastic shard worker for the filesystem (spool) broker.
            "repro-worker=repro.worker:main",
        ],
    },
)
